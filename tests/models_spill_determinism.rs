//! Golden spill-determinism test: a store-backed personalized policy
//! run under a *tiny* memory budget — forcing constant COW
//! materialization, quantized demotion, warm eviction, and spill-log
//! faulting — must be **bit-equal** to the same run with an unbounded
//! store, for every observable: the arrangement digest, the regret
//! accounting, the OPT co-simulation, the complete serialized policy
//! state, and (for Thompson Sampling) the posterior-RNG position.
//!
//! This is the `fasea-models` headline contract (residency is a cache,
//! never an approximation, on the decision path), checked through the
//! real multi-user runner across both shipped policies. The budget is
//! sized so the test is vacuous-proof: it asserts the constrained run
//! actually demoted, evicted, and faulted.

use fasea::bandit::Policy;
use fasea::datagen::{MultiUserConfig, MultiUserWorkload, SyntheticConfig};
use fasea::models::{
    EstimatorStore, PersonalizedTs, PersonalizedUcb, StoreConfig, StoreStats, UserSchedule,
};
use fasea::sim::run_multi_user_stored;
use fasea::stats::crn::mix64;
use std::path::PathBuf;

const DIM: usize = 5;
const HORIZON: u64 = 1500;
const SEED: u64 = 0x60_1DE2;

fn workload() -> MultiUserWorkload {
    MultiUserWorkload::generate(MultiUserConfig {
        base: SyntheticConfig {
            num_events: 25,
            dim: DIM,
            seed: SEED,
            ..Default::default()
        },
        population: 60,
        heterogeneity: 0.9,
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("fasea-models-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One exact d=5 model is (2·25 + 3·5)·8 = 520 bytes plus estimator
/// overhead; a hot budget of 2 KiB holds only a couple of models for a
/// population of 60, so nearly every round faults, and a warm budget of
/// 256 bytes keeps the quantized tier churning too.
fn tiny_budget(dir: &PathBuf) -> StoreConfig {
    StoreConfig::bounded(DIM, 1.0, 2048, 256, dir)
}

fn schedule() -> UserSchedule {
    let w = workload();
    UserSchedule::new(w.schedule_seed(), w.population())
}

fn open(config: StoreConfig) -> EstimatorStore {
    EstimatorStore::new(config).expect("open store")
}

/// Runs the budgeted and the unbounded instance of one policy over the
/// same workload and asserts bit-equality of everything observable,
/// plus the vacuity guards. Returns nothing: panics describe the first
/// divergence.
fn check_pair<P: Policy>(
    tag: &str,
    mut budgeted: P,
    mut unbounded: P,
    stats_of: impl Fn(&P) -> StoreStats,
) {
    let w = workload();
    let rb = run_multi_user_stored(&w, &mut budgeted, HORIZON, SEED ^ 0xFB);
    let ru = run_multi_user_stored(&w, &mut unbounded, HORIZON, SEED ^ 0xFB);

    // Bit-equality of everything observable.
    assert_eq!(
        rb.arrangement_digest, ru.arrangement_digest,
        "{tag}: arrangements diverged under the memory budget"
    );
    assert_eq!(
        rb.accounting.total_rewards(),
        ru.accounting.total_rewards(),
        "{tag}: rewards diverged"
    );
    assert_eq!(
        rb.accounting.total_arranged(),
        ru.accounting.total_arranged(),
        "{tag}: arranged totals diverged"
    );
    assert_eq!(rb.opt_rewards, ru.opt_rewards, "{tag}: OPT diverged");
    assert_eq!(
        budgeted.save_state(),
        unbounded.save_state(),
        "{tag}: serialized policy state diverged"
    );

    // Vacuity guard: the budget must have actually bound.
    let stats = stats_of(&budgeted);
    assert_eq!(stats.users, 60, "{tag}: population not fully seen");
    assert!(
        stats.demotions > 100,
        "{tag}: budget never demoted (demotions={})",
        stats.demotions
    );
    assert!(
        stats.evictions > 10,
        "{tag}: warm tier never evicted (evictions={})",
        stats.evictions
    );
    assert!(
        stats.faults > 100,
        "{tag}: spill never faulted back (faults={})",
        stats.faults
    );
    let unbounded_stats = stats_of(&unbounded);
    assert_eq!(unbounded_stats.demotions, 0);
    assert_eq!(unbounded_stats.spilled, 0);
}

#[test]
fn tiny_budget_ucb_run_is_bit_equal_to_unbounded() {
    let dir = temp_dir("ucb");
    check_pair(
        "ucb",
        PersonalizedUcb::new(open(tiny_budget(&dir)), schedule(), 2.0),
        PersonalizedUcb::new(open(StoreConfig::unbounded(DIM, 1.0)), schedule(), 2.0),
        |p| p.store().stats(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tiny_budget_ts_run_is_bit_equal_to_unbounded() {
    let seed = mix64(SEED ^ 0x75);
    let dir = temp_dir("ts");
    let budgeted = PersonalizedTs::new(open(tiny_budget(&dir)), schedule(), 0.1, seed);
    let unbounded = PersonalizedTs::new(
        open(StoreConfig::unbounded(DIM, 1.0)),
        schedule(),
        0.1,
        seed,
    );
    check_pair("ts", budgeted, unbounded, |p| p.store().stats());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ts_posterior_rng_position_is_residency_independent() {
    // The TS Gaussian stream is positional (d draws per round) — a
    // budgeted and an unbounded run end at the same RNG state even
    // though their residency histories differ completely.
    let seed = mix64(SEED ^ 0x75);
    let dir = temp_dir("ts-rng");
    let mut budgeted = PersonalizedTs::new(open(tiny_budget(&dir)), schedule(), 0.1, seed);
    let mut unbounded = PersonalizedTs::new(
        open(StoreConfig::unbounded(DIM, 1.0)),
        schedule(),
        0.1,
        seed,
    );
    let w = workload();
    let _ = run_multi_user_stored(&w, &mut budgeted, 500, SEED ^ 0xFB);
    let _ = run_multi_user_stored(&w, &mut unbounded, 500, SEED ^ 0xFB);
    assert_eq!(budgeted.rng_digest(), unbounded.rng_digest());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budgeted_state_restores_into_an_unbounded_store_and_continues_in_lockstep() {
    // Crash-safe restore across *different* budget configurations: a
    // blob saved mid-run by the tiny-budget policy restores into a
    // fresh unbounded policy losslessly.
    let seed = mix64(SEED ^ 0x75);
    let w = workload();
    let dir = temp_dir("restore");
    let mut budgeted = PersonalizedTs::new(open(tiny_budget(&dir)), schedule(), 0.1, seed);
    let _ = run_multi_user_stored(&w, &mut budgeted, 400, SEED ^ 0xFB);

    let blob = budgeted.save_state();
    let mut resumed = PersonalizedTs::new(
        open(StoreConfig::unbounded(DIM, 1.0)),
        schedule(),
        0.1,
        seed,
    );
    resumed
        .restore_state(&blob)
        .expect("restore across budget configurations");
    assert_eq!(blob, resumed.save_state(), "restore is not lossless");
    let _ = std::fs::remove_dir_all(&dir);
}

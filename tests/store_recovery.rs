//! Crash-recovery acceptance suite for the durable arrangement service.
//!
//! Three families of tests, all driven end-to-end through the `fasea`
//! facade:
//!
//! 1. **Kill matrix** — a 500-round reference run is killed at *every*
//!    record boundary of its WAL; each truncated copy is recovered and
//!    its capacities, round counter, regret accounting and full policy
//!    state (estimator + RNG position) must match the uninterrupted
//!    reference at that exact point, with no round ever re-proposed.
//! 2. **Fault matrix** — torn writes, bit flips and appended garbage
//!    injected with [`fasea::store::FaultFile`]; recovery must never
//!    panic, must keep only CRC-intact prefixes, and must reject
//!    damage that sits *before* acknowledged history.
//! 3. **Golden determinism** — a run crashed twice (once between
//!    rounds, once mid-proposal) and recovered must end with regret
//!    accounting and policy state byte-identical to an uninterrupted
//!    run with the same seed.
//! 4. **Group-commit matrix** — the same kill-at-every-boundary drill
//!    against a *pipelined* run (deferred acks outstanding, commit
//!    queue non-empty, batches torn mid-record), plus crashes on both
//!    sides of the async snapshotter's temp-file rename. The group
//!    pipeline must write a log byte-identical to the direct run's,
//!    recover byte-identically from every prefix, and never lose a
//!    round whose feedback acknowledgement was released.

use fasea::bandit::{Policy, ThompsonSampling};
use fasea::core::{
    Arrangement, ConflictGraph, ContextMatrix, ProblemInstance, ProblemMode, UserArrival,
};
use fasea::sim::DurableOptions;
use fasea::store::{wal, FaultFile, StoreError};
use fasea::{DurableArrangementService, FsyncPolicy, ServiceError};
use std::fs;
use std::path::{Path, PathBuf};

const NUM_EVENTS: usize = 8;
const DIM: usize = 3;
const SEED: u64 = 20170514;

fn instance() -> ProblemInstance {
    ProblemInstance::new(
        vec![400; NUM_EVENTS],
        ConflictGraph::from_pairs(NUM_EVENTS, &[(0, 5), (2, 6), (3, 7)]),
        DIM,
        ProblemMode::Fasea,
    )
}

fn policy() -> Box<dyn Policy> {
    // Thompson Sampling: the RNG-heaviest policy, so recovery must
    // restore the exact sampler position, not just the estimator.
    Box::new(ThompsonSampling::new(DIM, 1.0, 0.1, SEED))
}

fn arrival(round: u64) -> UserArrival {
    let mut ctx = ContextMatrix::from_fn(NUM_EVENTS, DIM, |v, j| {
        let x = (round as usize)
            .wrapping_mul(31)
            .wrapping_add(v * 7 + j * 13)
            % 101;
        x as f64 / 101.0 - 0.35
    });
    ctx.normalize_rows();
    UserArrival::new(2, ctx)
}

fn accepts_for(round: u64, a: &Arrangement) -> Vec<bool> {
    a.iter()
        .map(|v| (round as usize + 2 * v.index()).is_multiple_of(3))
        .collect()
}

fn run_rounds(svc: &mut DurableArrangementService, upto: u64) {
    while svc.rounds_completed() < upto {
        let round = svc.rounds_completed();
        if svc.has_pending() {
            let pending = svc.pending_arrangement().unwrap().clone();
            svc.feedback(&accepts_for(round, &pending)).unwrap();
            continue;
        }
        let a = svc.propose(&arrival(round)).unwrap();
        svc.feedback(&accepts_for(round, &a)).unwrap();
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fasea-recovery-{name}-{}", std::process::id()))
}

/// Everything that must survive a crash, captured from a live service.
#[derive(Debug, Clone, PartialEq)]
struct StateDigest {
    t: u64,
    remaining: Vec<u32>,
    rounds: u64,
    arranged: u64,
    rewards: u64,
    has_pending: bool,
    policy_state: Vec<u8>,
}

fn digest(svc: &DurableArrangementService) -> StateDigest {
    let acc = svc.service().accounting();
    StateDigest {
        t: svc.rounds_completed(),
        remaining: svc.service().remaining().to_vec(),
        rounds: acc.rounds(),
        arranged: acc.total_arranged(),
        rewards: acc.total_rewards(),
        has_pending: svc.has_pending(),
        policy_state: svc.service().policy().save_state(),
    }
}

#[test]
fn kill_at_every_record_boundary_recovers_exactly() {
    const ROUNDS: u64 = 500;
    let ref_dir = tmp("kill-ref");
    let _ = fs::remove_dir_all(&ref_dir);
    // One segment so the whole history is a single kill target.
    let opts = DurableOptions::new()
        .with_segment_bytes(u64::MAX)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshots_kept(1);

    // Reference run, capturing the expected state after the k-th record
    // (k = 0 is the freshly-opened service; odd k ends mid-round).
    let mut expected: Vec<StateDigest> = Vec::with_capacity(2 * ROUNDS as usize + 1);
    {
        let mut svc =
            DurableArrangementService::open(&ref_dir, instance(), policy(), opts).unwrap();
        expected.push(digest(&svc));
        for round in 0..ROUNDS {
            let a = svc.propose(&arrival(round)).unwrap();
            expected.push(digest(&svc));
            svc.feedback(&accepts_for(round, &a)).unwrap();
            expected.push(digest(&svc));
        }
        svc.sync().unwrap();
    }

    let fingerprint = {
        let svc = DurableArrangementService::open(&ref_dir, instance(), policy(), opts).unwrap();
        svc.fingerprint()
    };
    let (records, boundaries, torn) = wal::scan(&ref_dir, fingerprint).unwrap();
    assert_eq!(records.len(), 2 * ROUNDS as usize);
    assert_eq!(boundaries.len(), 2 * ROUNDS as usize + 1);
    assert!(torn.is_none());
    let reference_final = expected.last().unwrap().clone();

    let scratch = tmp("kill-scratch");
    for (k, (segment, offset)) in boundaries.iter().enumerate() {
        // Kill the process after exactly k records reached the disk.
        copy_dir(&ref_dir, &scratch);
        let victim = FaultFile::new(scratch.join(segment.file_name().unwrap()));
        victim.torn_write(*offset).unwrap();

        let mut svc =
            DurableArrangementService::open(&scratch, instance(), policy(), opts).unwrap();
        let got = digest(&svc);
        assert_eq!(
            got, expected[k],
            "state mismatch after kill at record boundary {k}"
        );
        assert_eq!(
            got.has_pending,
            k % 2 == 1,
            "pending parity wrong at boundary {k}"
        );

        // No round is ever double-proposed: with a pending proposal the
        // service refuses a new one; without, the next proposal is for
        // the next uncompleted round.
        if got.has_pending {
            assert!(matches!(
                svc.propose(&arrival(got.t)),
                Err(ServiceError::FeedbackPending)
            ));
        }

        // For a spread of prefixes, finish the run and require the end
        // state to be byte-identical to the uninterrupted reference.
        if k % 83 == 0 || k == boundaries.len() - 1 {
            run_rounds(&mut svc, ROUNDS);
            assert_eq!(
                digest(&svc),
                reference_final,
                "continuation from boundary {k} diverged from the reference run"
            );
        }
    }

    fs::remove_dir_all(&ref_dir).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn group_commit_kill_matrix_recovers_exactly() {
    const ROUNDS: u64 = 80;
    let group_opts = DurableOptions::new()
        .with_segment_bytes(u64::MAX)
        .with_fsync(FsyncPolicy::Always)
        .with_group_commit(true)
        .with_snapshots_kept(1);

    // Reference run through the pipelined API: state advances while
    // earlier batches are still in flight, so at any instant the commit
    // queue may be non-empty — exactly the "ack computed, fsync
    // pending" window the serve actor lives in. Every 16 rounds the run
    // acknowledges the way the actor does (wait for the feedback LSN to
    // be covered by the watermark) and records how much history was
    // necessarily on disk at that moment.
    let ref_dir = tmp("gc-kill-ref");
    let _ = fs::remove_dir_all(&ref_dir);
    let mut expected: Vec<StateDigest> = Vec::with_capacity(2 * ROUNDS as usize + 1);
    // (records on disk when the ack was released, rounds acked by then)
    let mut acked: Vec<(u64, u64)> = Vec::new();
    {
        let mut svc =
            DurableArrangementService::open(&ref_dir, instance(), policy(), group_opts).unwrap();
        assert!(svc.group_commit_enabled());
        expected.push(digest(&svc));
        for round in 0..ROUNDS {
            let (a, propose_lsn) = svc.propose_deferred(&arrival(round)).unwrap();
            assert_eq!(propose_lsn, 2 * round, "propose LSN must be the WAL seq");
            expected.push(digest(&svc));
            let (_, feedback_lsn) = svc.feedback_deferred(&accepts_for(round, &a)).unwrap();
            assert_eq!(feedback_lsn, 2 * round + 1);
            expected.push(digest(&svc));
            if (round + 1).is_multiple_of(16) {
                // The ack point: once this returns, every record up to
                // and including feedback_lsn is on stable storage, so
                // any later crash image contains them.
                svc.wait_durable(feedback_lsn).unwrap();
                assert!(svc.durable_lsn() > feedback_lsn);
                acked.push((feedback_lsn + 1, round + 1));
            }
        }
        svc.sync().unwrap();
        assert_eq!(svc.durable_lsn(), 2 * ROUNDS);
        // Crash, not close: drop drains the queue but writes no
        // snapshot, leaving the bare log a kill would leave.
    }

    // The pipeline must write the *same log* a direct synchronous run
    // writes — same records, same framing, byte for byte — so every
    // fault-matrix result for the direct WAL carries over verbatim.
    let direct_dir = tmp("gc-kill-direct");
    let _ = fs::remove_dir_all(&direct_dir);
    let direct_opts = DurableOptions::new()
        .with_segment_bytes(u64::MAX)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshots_kept(1);
    {
        let mut svc =
            DurableArrangementService::open(&direct_dir, instance(), policy(), direct_opts)
                .unwrap();
        run_rounds(&mut svc, ROUNDS);
        svc.sync().unwrap();
    }
    let wal_file = |dir: &Path| {
        fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .unwrap()
            .path()
    };
    assert_eq!(
        fs::read(wal_file(&ref_dir)).unwrap(),
        fs::read(wal_file(&direct_dir)).unwrap(),
        "group-commit log must be byte-identical to the direct log"
    );
    fs::remove_dir_all(&direct_dir).unwrap();

    let fingerprint = {
        let svc =
            DurableArrangementService::open(&ref_dir, instance(), policy(), group_opts).unwrap();
        svc.fingerprint()
    };
    let (records, boundaries, torn) = wal::scan(&ref_dir, fingerprint).unwrap();
    assert_eq!(records.len(), 2 * ROUNDS as usize);
    assert!(torn.is_none());
    let reference_final = expected.last().unwrap().clone();

    let scratch = tmp("gc-kill-scratch");
    for (k, (segment, offset)) in boundaries.iter().enumerate() {
        // Kill with exactly k records on disk — every reachable crash
        // image of the pipelined run is some such prefix.
        copy_dir(&ref_dir, &scratch);
        FaultFile::new(scratch.join(segment.file_name().unwrap()))
            .torn_write(*offset)
            .unwrap();

        let mut svc =
            DurableArrangementService::open(&scratch, instance(), policy(), group_opts).unwrap();
        let got = digest(&svc);
        assert_eq!(
            got, expected[k],
            "state mismatch after group-commit kill at record boundary {k}"
        );

        // No acked round lost: when round r's ack was released the log
        // already held `recs` records, so only boundaries k ≥ recs are
        // reachable afterwards — and at those, recovery must retain
        // every acked round.
        let floor = acked
            .iter()
            .filter(|&&(recs, _)| recs <= k as u64)
            .map(|&(_, rounds)| rounds)
            .max()
            .unwrap_or(0);
        assert!(
            got.t >= floor,
            "boundary {k} lost an acked round: recovered t = {} < {floor}",
            got.t
        );

        if got.has_pending {
            assert!(matches!(
                svc.propose(&arrival(got.t)),
                Err(ServiceError::FeedbackPending)
            ));
        }

        // For a spread of prefixes, re-drive through the group pipeline
        // to the end: compute-then-log means the recovered RNG re-draws
        // the lost suffix identically.
        if k % 37 == 0 || k == boundaries.len() - 1 {
            run_rounds(&mut svc, ROUNDS);
            assert_eq!(
                digest(&svc),
                reference_final,
                "continuation from boundary {k} diverged from the reference run"
            );
        }
    }

    // A batch torn *mid-record* — the crash landed part-way through the
    // syncer's batched write — must recover to the last complete
    // record, never to a half-applied one.
    for k in [4usize, 37, 90, 2 * ROUNDS as usize - 1] {
        let (segment, next_off) = &boundaries[k + 1];
        copy_dir(&ref_dir, &scratch);
        FaultFile::new(scratch.join(segment.file_name().unwrap()))
            .torn_write(next_off - 3)
            .unwrap();
        let svc =
            DurableArrangementService::open(&scratch, instance(), policy(), group_opts).unwrap();
        assert_eq!(
            digest(&svc),
            expected[k],
            "mid-record cut inside record {k} must land on boundary {k}"
        );
    }

    fs::remove_dir_all(&ref_dir).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn group_commit_snapshot_crash_points_recover() {
    const ROUNDS: u64 = 60;
    const CRASH_AT: u64 = 40;
    let opts = DurableOptions::new()
        .with_segment_bytes(4096)
        .with_fsync(FsyncPolicy::Always)
        .with_group_commit(true)
        .with_snapshots_kept(2);

    // Base image: a multi-segment group-commit log up to round 40,
    // dropped without close so no snapshot exists yet.
    let base = tmp("gc-snap-base");
    let _ = fs::remove_dir_all(&base);
    let at_crash = {
        let mut svc = DurableArrangementService::open(&base, instance(), policy(), opts).unwrap();
        run_rounds(&mut svc, CRASH_AT);
        svc.sync().unwrap();
        digest(&svc)
    };

    // Reference: continue the base image untouched to the end.
    let reference_final = {
        let cont = tmp("gc-snap-cont");
        copy_dir(&base, &cont);
        let mut svc = DurableArrangementService::open(&cont, instance(), policy(), opts).unwrap();
        run_rounds(&mut svc, ROUNDS);
        let d = digest(&svc);
        drop(svc);
        fs::remove_dir_all(&cont).unwrap();
        d
    };

    // Crash *before* the rename: the snapshotter died after writing its
    // temp file. The orphan `.tmp-<pid>` must be ignored — recovery
    // replays the intact WAL as if no snapshot was ever attempted.
    {
        let scratch = tmp("gc-snap-prerename");
        copy_dir(&base, &scratch);
        fs::write(
            scratch.join(format!("snap-{:020}.tmp-{}", 2 * CRASH_AT, 12345)),
            b"half-written snapshot image from a dead snapshotter",
        )
        .unwrap();
        let mut svc =
            DurableArrangementService::open(&scratch, instance(), policy(), opts).unwrap();
        assert_eq!(
            digest(&svc),
            at_crash,
            "orphan snapshot temp file changed recovery"
        );

        // Re-drive to the end with a *live* async snapshot mid-way: the
        // published-seq watermark must advance and the snapshot must
        // not perturb the arrangement state.
        run_rounds(&mut svc, 50);
        svc.snapshot_async().unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while svc.snapshot_published_seq() < 100 {
            assert!(
                std::time::Instant::now() < deadline,
                "async snapshot never published (seq = {})",
                svc.snapshot_published_seq()
            );
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        run_rounds(&mut svc, ROUNDS);
        assert_eq!(digest(&svc), reference_final);
        drop(svc);

        // And the snapshot it published must itself recover exactly.
        let svc = DurableArrangementService::open(&scratch, instance(), policy(), opts).unwrap();
        assert_eq!(digest(&svc), reference_final);
        drop(svc);
        fs::remove_dir_all(&scratch).unwrap();
    }

    // Crash *after* the rename but before WAL compaction: the snapshot
    // file is live while the full pre-snapshot history is still on
    // disk. Recovery must load the snapshot and skip every record below
    // its seq instead of double-applying them.
    {
        let snap_src = tmp("gc-snap-src");
        copy_dir(&base, &snap_src);
        let snap_path = {
            let mut svc =
                DurableArrangementService::open(&snap_src, instance(), policy(), opts).unwrap();
            svc.snapshot().unwrap()
        };
        let scratch = tmp("gc-snap-postrename");
        copy_dir(&base, &scratch);
        fs::copy(&snap_path, scratch.join(snap_path.file_name().unwrap())).unwrap();
        let mut svc =
            DurableArrangementService::open(&scratch, instance(), policy(), opts).unwrap();
        assert_eq!(
            digest(&svc),
            at_crash,
            "snapshot + uncompacted history must not double-apply records"
        );
        run_rounds(&mut svc, ROUNDS);
        assert_eq!(digest(&svc), reference_final);
        drop(svc);
        fs::remove_dir_all(&snap_src).unwrap();
        fs::remove_dir_all(&scratch).unwrap();
    }

    fs::remove_dir_all(&base).unwrap();
}

#[test]
fn fault_matrix_torn_writes_bit_flips_and_garbage() {
    const ROUNDS: u64 = 40;
    let ref_dir = tmp("fault-ref");
    let _ = fs::remove_dir_all(&ref_dir);
    let opts = DurableOptions::new()
        .with_segment_bytes(u64::MAX)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshots_kept(1);
    {
        let mut svc =
            DurableArrangementService::open(&ref_dir, instance(), policy(), opts).unwrap();
        run_rounds(&mut svc, ROUNDS);
        svc.sync().unwrap();
    }
    let segment = fs::read_dir(&ref_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .unwrap()
        .file_name();
    let full_len = fs::metadata(ref_dir.join(&segment)).unwrap().len();

    let scratch = tmp("fault-scratch");
    let reopen = |dir: &Path| DurableArrangementService::open(dir, instance(), policy(), opts);

    // Torn writes at a spread of byte lengths. A file cut inside its
    // own header is rejected (headers are fsynced at creation, so a
    // short header means tampering, not a crash); any cut after the
    // header recovers a prefix and the service stays usable.
    let mut keep = 0u64;
    while keep < full_len {
        copy_dir(&ref_dir, &scratch);
        FaultFile::new(scratch.join(&segment))
            .torn_write(keep)
            .unwrap();
        if keep < 32 {
            assert!(matches!(
                reopen(&scratch),
                Err(ServiceError::Store(StoreError::CorruptSegment { .. }))
            ));
        } else {
            let mut svc = reopen(&scratch)
                .unwrap_or_else(|e| panic!("torn write at {keep} bytes must recover, got {e}"));
            assert!(svc.rounds_completed() <= ROUNDS);
            let target = svc.rounds_completed() + 3;
            run_rounds(&mut svc, target);
        }
        keep += 611; // co-prime with the record sizes: hits every phase
    }

    // Single bit flips across the file: never a panic — either a
    // longest-intact-prefix recovery or a typed store error.
    let mut offset = 1u64;
    while offset < full_len {
        copy_dir(&ref_dir, &scratch);
        FaultFile::new(scratch.join(&segment))
            .flip_bit(offset, (offset % 8) as u8)
            .unwrap();
        match reopen(&scratch) {
            Ok(mut svc) => {
                assert!(svc.rounds_completed() <= ROUNDS);
                let target = svc.rounds_completed() + 3;
                run_rounds(&mut svc, target);
            }
            Err(ServiceError::Store(_)) | Err(ServiceError::Snapshot(_)) => {}
            Err(other) => panic!("bit flip at offset {offset} surfaced {other}"),
        }
        offset += 467;
    }

    // Garbage appended past the clean tail is discarded as torn.
    copy_dir(&ref_dir, &scratch);
    FaultFile::new(scratch.join(&segment))
        .append_garbage(&[0xAB; 37])
        .unwrap();
    let svc = reopen(&scratch).unwrap();
    assert_eq!(svc.rounds_completed(), ROUNDS);

    fs::remove_dir_all(&ref_dir).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn corruption_before_acknowledged_history_is_rejected() {
    // Multi-segment log; damage in a *non-final* segment must be a
    // refusal, not a silent truncation that forks history.
    let dir = tmp("nonfinal");
    let _ = fs::remove_dir_all(&dir);
    let opts = DurableOptions::new()
        .with_segment_bytes(2048)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshots_kept(1);
    {
        let mut svc = DurableArrangementService::open(&dir, instance(), policy(), opts).unwrap();
        run_rounds(&mut svc, 60);
        svc.sync().unwrap();
    }
    let mut segments: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("wal-"))
        })
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "test needs a rotated log");

    // Flip a record byte in the first (oldest) segment.
    FaultFile::new(&segments[0]).flip_bit(100, 3).unwrap();
    match DurableArrangementService::open(&dir, instance(), policy(), opts) {
        Err(ServiceError::Store(StoreError::CorruptSegment { .. })) => {}
        other => panic!("expected CorruptSegment, got {:?}", other.map(|_| ())),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn golden_crashed_run_matches_uninterrupted_run_exactly() {
    const ROUNDS: u64 = 300;
    let snapshot_at = |svc: &mut DurableArrangementService| {
        if svc.rounds_completed().is_multiple_of(75) && svc.rounds_completed() > 0 {
            svc.snapshot().unwrap();
        }
    };
    let opts = DurableOptions::new()
        .with_segment_bytes(8192)
        .with_fsync(FsyncPolicy::EveryN(8))
        .with_snapshots_kept(2);

    // Uninterrupted reference.
    let dir_a = tmp("golden-a");
    let _ = fs::remove_dir_all(&dir_a);
    let reference = {
        let mut svc = DurableArrangementService::open(&dir_a, instance(), policy(), opts).unwrap();
        while svc.rounds_completed() < ROUNDS {
            let round = svc.rounds_completed();
            let a = svc.propose(&arrival(round)).unwrap();
            svc.feedback(&accepts_for(round, &a)).unwrap();
            snapshot_at(&mut svc);
        }
        digest(&svc)
    };

    // Same seed, crashed twice: once between rounds, once mid-proposal.
    let dir_b = tmp("golden-b");
    let _ = fs::remove_dir_all(&dir_b);
    {
        let mut svc = DurableArrangementService::open(&dir_b, instance(), policy(), opts).unwrap();
        while svc.rounds_completed() < 137 {
            let round = svc.rounds_completed();
            let a = svc.propose(&arrival(round)).unwrap();
            svc.feedback(&accepts_for(round, &a)).unwrap();
            snapshot_at(&mut svc);
        }
        // Crash #1: drop between rounds.
    }
    {
        let mut svc = DurableArrangementService::open(&dir_b, instance(), policy(), opts).unwrap();
        assert_eq!(svc.rounds_completed(), 137);
        while svc.rounds_completed() < 190 {
            let round = svc.rounds_completed();
            let a = svc.propose(&arrival(round)).unwrap();
            svc.feedback(&accepts_for(round, &a)).unwrap();
            snapshot_at(&mut svc);
        }
        let _ = svc.propose(&arrival(190)).unwrap();
        // Crash #2: drop with the proposal for round 190 outstanding.
    }
    let crashed = {
        let mut svc = DurableArrangementService::open(&dir_b, instance(), policy(), opts).unwrap();
        assert!(
            svc.has_pending(),
            "mid-proposal crash must surface the pending round"
        );
        while svc.rounds_completed() < ROUNDS {
            let round = svc.rounds_completed();
            let a = if let Some(p) = svc.pending_arrangement() {
                p.clone()
            } else {
                svc.propose(&arrival(round)).unwrap()
            };
            svc.feedback(&accepts_for(round, &a)).unwrap();
            snapshot_at(&mut svc);
        }
        digest(&svc)
    };

    // Byte-identical regret accounting *and* policy state: the crashed
    // run is indistinguishable from the uninterrupted one.
    assert_eq!(crashed, reference);
    fs::remove_dir_all(&dir_a).unwrap();
    fs::remove_dir_all(&dir_b).unwrap();
}

//! Sharded-service acceptance suite, driven end-to-end through the
//! `fasea` facade:
//!
//! 1. **Golden parity** — for every policy the repo ships (all seven)
//!    and N ∈ {1, 2, 4} shards, an N-shard run's coordinator state —
//!    capacities, regret accounting, and the policy's full saved state
//!    *including its RNG position* — must be byte-identical to the
//!    single-actor [`DurableArrangementService`] run on the same seed.
//! 2. **Cross-shard 2PC kill matrix** — the process is killed at every
//!    record boundary of every shard transaction log, and at every
//!    boundary of the coordinator round log (which includes the window
//!    after a shard committed but before the coordinator's Feedback —
//!    the "shard ahead" case — and the window after prepares but
//!    before the commit decision — the in-doubt case). Every crash
//!    image must recover with shard counters convergent with the
//!    coordinator mirror and continue to a final state byte-identical
//!    to the uninterrupted reference.
//! 3. **Targeted in-doubt resolution** — combined coordinator + shard
//!    cuts that strand a transaction exactly in-doubt, once where the
//!    coordinator's Feedback survived (must resolve to commit) and
//!    once where it did not (must resolve to abort).
//! 4. **Sharded serving crash-resume** — a sharded server dies
//!    mid-load with a proposal outstanding; a fresh sharded server on
//!    the same directory recovers every shard plus the coordinator and
//!    the wire-driven continuation matches the in-process reference
//!    with no acked round lost.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fasea::bandit::{
    EpsilonGreedy, Exploit, LinUcb, Opt, Policy, RandomPolicy, StaticScorePolicy, ThompsonSampling,
};
use fasea::core::EventId;
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::serve::{ClientConfig, ServeClient, Server, ServerConfig};
use fasea::shard::shard_fingerprint;
use fasea::sim::{ArrangementService, DurableOptions};
use fasea::store::{wal, FaultFile, Record};
use fasea::{DurableArrangementService, FsyncPolicy, ShardedArrangementService};

const DIM: usize = 3;
const NUM_EVENTS: usize = 12;

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: NUM_EVENTS,
        dim: DIM,
        seed: 0x0005_AA2D_5EED,
        ..SyntheticConfig::default()
    })
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fasea-shard-par-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Recursive copy — the sharded layout nests shard logs in
/// subdirectories.
fn copy_tree(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), to).unwrap();
        }
    }
}

/// All seven policies, fresh per call so two runs start identically.
fn all_policies() -> Vec<(&'static str, Box<dyn Policy>)> {
    let w = workload();
    let static_scores: Vec<f64> = (0..NUM_EVENTS)
        .map(|v| ((v * 37) % 23) as f64 / 23.0)
        .collect();
    vec![
        (
            "ucb",
            Box::new(LinUcb::new(DIM, 1.0, 2.0)) as Box<dyn Policy>,
        ),
        (
            "ts",
            Box::new(ThompsonSampling::new(DIM, 1.0, 0.1, 0xA11CE)),
        ),
        (
            "egreedy",
            Box::new(EpsilonGreedy::new(DIM, 1.0, 0.1, 0xB0B)),
        ),
        ("exploit", Box::new(Exploit::new(DIM, 1.0))),
        ("opt", Box::new(Opt::new(w.model.clone()))),
        ("random", Box::new(RandomPolicy::new(0xC0DE))),
        (
            "static",
            Box::new(StaticScorePolicy::new("static", static_scores)),
        ),
    ]
}

fn policy_named(name: &str) -> Box<dyn Policy> {
    all_policies()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| p)
        .unwrap()
}

fn opts() -> DurableOptions {
    DurableOptions::new()
        .with_segment_bytes(u64::MAX)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshots_kept(1)
}

/// Everything that must match between a sharded and a single-actor run.
#[derive(Debug, Clone, PartialEq)]
struct StateDigest {
    t: u64,
    remaining: Vec<u32>,
    arranged: u64,
    rewards: u64,
    has_pending: bool,
    policy_state: Vec<u8>,
}

fn digest_of(svc: &ArrangementService, t: u64, has_pending: bool) -> StateDigest {
    StateDigest {
        t,
        remaining: svc.remaining().to_vec(),
        arranged: svc.accounting().total_arranged(),
        rewards: svc.accounting().total_rewards(),
        has_pending,
        policy_state: svc.policy().save_state(),
    }
}

fn digest_single(svc: &DurableArrangementService) -> StateDigest {
    digest_of(svc.service(), svc.rounds_completed(), svc.has_pending())
}

fn digest_sharded(svc: &ShardedArrangementService) -> StateDigest {
    digest_of(svc.service(), svc.rounds_completed(), svc.has_pending())
}

/// CRN acceptance for round `t` — identical no matter which service
/// executes the round.
fn accepts_for(w: &SyntheticWorkload, t: u64, arranged: &[EventId]) -> Vec<bool> {
    let coins = fasea::stats::CoinStream::new(0xFEED_C0DE);
    let arrival = w.arrivals.arrival(t);
    arranged
        .iter()
        .map(|&v| {
            coins.uniform(t, v.index() as u64) < w.model.accept_probability(&arrival.contexts, v)
        })
        .collect()
}

fn run_single(svc: &mut DurableArrangementService, w: &SyntheticWorkload, upto: u64) {
    while svc.rounds_completed() < upto {
        let t = svc.rounds_completed();
        let a = if let Some(p) = svc.pending_arrangement() {
            p.clone()
        } else {
            svc.propose(&w.arrivals.arrival(t)).unwrap()
        };
        let accepts = accepts_for(w, t, a.events());
        svc.feedback(&accepts).unwrap();
    }
}

fn run_sharded(svc: &mut ShardedArrangementService, w: &SyntheticWorkload, upto: u64) {
    while svc.rounds_completed() < upto {
        let t = svc.rounds_completed();
        let a = if let Some(p) = svc.pending_arrangement() {
            p.clone()
        } else {
            svc.propose(&w.arrivals.arrival(t)).unwrap()
        };
        let accepts = accepts_for(w, t, a.events());
        svc.feedback(&accepts).unwrap();
    }
}

/// Asserts every shard's authoritative counters agree with the
/// coordinator's capacity mirror.
fn assert_counters_match_mirror(svc: &ShardedArrangementService, context: &str) {
    let mirror = svc.service().remaining().to_vec();
    for s in 0..svc.num_shards() {
        for (event, rem) in svc.shard_remaining(s) {
            assert_eq!(
                rem, mirror[event as usize],
                "{context}: shard {s} counter for event {event} diverged from the mirror"
            );
        }
    }
}

#[test]
fn golden_parity_every_policy_every_shard_count() {
    const ROUNDS: u64 = 60;
    let w = workload();
    for (name, _) in all_policies() {
        // Single-actor reference for this policy.
        let ref_dir = tmp(&format!("golden-ref-{name}"));
        let reference = {
            let mut svc = DurableArrangementService::open(
                &ref_dir,
                w.instance.clone(),
                policy_named(name),
                opts(),
            )
            .unwrap();
            run_single(&mut svc, &w, ROUNDS);
            let d = digest_single(&svc);
            drop(svc);
            fs::remove_dir_all(&ref_dir).unwrap();
            d
        };

        for shards in [1usize, 2, 4] {
            let dir = tmp(&format!("golden-{name}-{shards}"));
            let mut svc = ShardedArrangementService::open(
                &dir,
                w.instance.clone(),
                policy_named(name),
                opts(),
                shards,
            )
            .unwrap();
            run_sharded(&mut svc, &w, ROUNDS);
            assert_eq!(
                digest_sharded(&svc),
                reference,
                "{name} over {shards} shards diverged from the single-actor run"
            );
            assert_counters_match_mirror(&svc, &format!("{name}/{shards}"));
            svc.close().unwrap();
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// The shared fixture for the kill-matrix tests: a 2-shard reference
/// run synced to disk, plus the final digest of its continuation.
struct KillFixture {
    base: PathBuf,
    w: SyntheticWorkload,
    reference_final: StateDigest,
    fingerprint: u64,
}

const KILL_SHARDS: usize = 2;
const KILL_ROUNDS: u64 = 24;
const KILL_END: u64 = 40;

impl KillFixture {
    fn build(tag: &str) -> KillFixture {
        let w = workload();
        let base = tmp(&format!("kill-base-{tag}"));
        let fingerprint = {
            let mut svc = ShardedArrangementService::open(
                &base,
                w.instance.clone(),
                policy_named("ts"),
                opts(),
                KILL_SHARDS,
            )
            .unwrap();
            run_sharded(&mut svc, &w, KILL_ROUNDS);
            svc.sync().unwrap();
            svc.fingerprint()
            // Dropped without close: a crash image with every record
            // through round KILL_ROUNDS durable in all three logs.
        };
        let reference_final = {
            let cont = tmp(&format!("kill-cont-{tag}"));
            copy_tree(&base, &cont);
            let mut svc = ShardedArrangementService::open(
                &cont,
                w.instance.clone(),
                policy_named("ts"),
                opts(),
                KILL_SHARDS,
            )
            .unwrap();
            run_sharded(&mut svc, &w, KILL_END);
            let d = digest_sharded(&svc);
            drop(svc);
            fs::remove_dir_all(&cont).unwrap();
            d
        };
        KillFixture {
            base,
            w,
            reference_final,
            fingerprint,
        }
    }

    /// Reopens a crash image, checks recovery invariants, continues to
    /// the end, and requires byte-identical convergence.
    ///
    /// With `resolved_shard = Some(s)` the coordinator log was also
    /// truncated: shard `s` (whose in-doubt transaction was just
    /// resolved) must land exactly on the mirror, while uncut shards
    /// may legitimately sit *ahead* of it — recovery only repairs
    /// shards that fell behind; ahead converges via the
    /// `committed_below` watermark as rounds are re-run.
    fn recover_and_verify(&self, scratch: &Path, context: &str, resolved_shard: Option<usize>) {
        let mut svc = ShardedArrangementService::open(
            scratch,
            self.w.instance.clone(),
            policy_named("ts"),
            opts(),
            KILL_SHARDS,
        )
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
        match resolved_shard {
            // After open, in-doubt resolution + reconciliation must
            // leave every shard counter exactly on the coordinator
            // mirror.
            None => assert_counters_match_mirror(&svc, context),
            Some(cut) => {
                let mirror = svc.service().remaining().to_vec();
                for s in 0..svc.num_shards() {
                    for (event, rem) in svc.shard_remaining(s) {
                        if s == cut {
                            assert_eq!(
                                rem, mirror[event as usize],
                                "{context}: resolved shard {s} missed the mirror on event {event}"
                            );
                        } else {
                            assert!(
                                rem <= mirror[event as usize],
                                "{context}: shard {s} fell behind the mirror on event {event}"
                            );
                        }
                    }
                }
            }
        }
        assert!(
            svc.rounds_completed() <= KILL_ROUNDS,
            "{context}: recovered beyond the reference"
        );
        run_sharded(&mut svc, &self.w, KILL_END);
        assert_eq!(
            digest_sharded(&svc),
            self.reference_final,
            "{context}: continuation diverged from the uninterrupted reference"
        );
        assert_counters_match_mirror(&svc, &format!("{context} (final)"));
    }
}

#[test]
fn kill_matrix_every_shard_log_boundary() {
    let fx = KillFixture::build("shardlog");
    let scratch = tmp("kill-shardlog-scratch");
    for s in 0..KILL_SHARDS {
        let shard_dir = fx.base.join(format!("shard-{s:03}"));
        let (records, boundaries, torn) =
            wal::scan(&shard_dir, shard_fingerprint(fx.fingerprint, s)).unwrap();
        assert!(torn.is_none());
        assert!(
            records.len() >= 4,
            "shard {s} saw too little traffic for a meaningful matrix"
        );
        // Kill after exactly k shard-log records: k = 0 is "before the
        // first prepare", odd positions sit between a prepare and its
        // commit (the in-doubt window), and cuts inside a round's
        // prepare/commit pair are the mid-commit-fan-out images.
        for (k, (segment, offset)) in boundaries.iter().enumerate() {
            copy_tree(&fx.base, &scratch);
            FaultFile::new(
                scratch
                    .join(format!("shard-{s:03}"))
                    .join(segment.file_name().unwrap()),
            )
            .torn_write(*offset)
            .unwrap();
            fx.recover_and_verify(&scratch, &format!("shard {s} cut at boundary {k}"), None);
        }
    }
    fs::remove_dir_all(&fx.base).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn kill_matrix_every_coordinator_boundary() {
    let fx = KillFixture::build("coord");
    let coord_dir = fx.base.join("coordinator");
    let (records, boundaries, torn) = wal::scan(&coord_dir, fx.fingerprint).unwrap();
    assert_eq!(records.len(), 2 * KILL_ROUNDS as usize);
    assert!(torn.is_none());
    let scratch = tmp("kill-coord-scratch");
    // Cutting the coordinator at boundary 2t+1 keeps round t's Propose
    // but loses its Feedback while both shards hold the prepare *and*
    // commit for t — the "shard ahead" image. Recovery must not repair
    // backwards; the re-run of round t must no-op against the shards'
    // committed_below watermark and converge.
    for (k, (segment, offset)) in boundaries.iter().enumerate() {
        copy_tree(&fx.base, &scratch);
        FaultFile::new(
            scratch
                .join("coordinator")
                .join(segment.file_name().unwrap()),
        )
        .torn_write(*offset)
        .unwrap();
        let mut svc = ShardedArrangementService::open(
            &scratch,
            fx.w.instance.clone(),
            policy_named("ts"),
            opts(),
            KILL_SHARDS,
        )
        .unwrap_or_else(|e| panic!("coordinator cut at boundary {k}: recovery failed: {e}"));
        assert_eq!(svc.rounds_completed() as usize, k / 2);
        // Shards may legitimately be *ahead* of the mirror here; they
        // must never be behind it (reconciliation repairs that side).
        let mirror = svc.service().remaining().to_vec();
        for s in 0..KILL_SHARDS {
            for (event, rem) in svc.shard_remaining(s) {
                assert!(
                    rem <= mirror[event as usize],
                    "coordinator cut {k}: shard {s} is behind the mirror on event {event}"
                );
            }
        }
        run_sharded(&mut svc, &fx.w, KILL_END);
        assert_eq!(
            digest_sharded(&svc),
            fx.reference_final,
            "coordinator cut at boundary {k}: continuation diverged"
        );
        assert_counters_match_mirror(&svc, &format!("coordinator cut {k} (final)"));
        drop(svc);
    }
    fs::remove_dir_all(&fx.base).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn in_doubt_transactions_resolve_by_coordinator_decision() {
    let fx = KillFixture::build("indoubt");
    let coord_dir = fx.base.join("coordinator");
    let (_, coord_bounds, _) = wal::scan(&coord_dir, fx.fingerprint).unwrap();

    // Map each shard's transactions to the boundary right after their
    // prepare record — the exact in-doubt cut point.
    let mut prepare_cut: Vec<BTreeMap<u64, (PathBuf, u64)>> = Vec::new();
    for s in 0..KILL_SHARDS {
        let shard_dir = fx.base.join(format!("shard-{s:03}"));
        let (records, bounds, _) =
            wal::scan(&shard_dir, shard_fingerprint(fx.fingerprint, s)).unwrap();
        let mut cuts = BTreeMap::new();
        for (i, (_, record)) in records.iter().enumerate() {
            if let Record::TxnPrepare { txn, .. } = record {
                cuts.insert(*txn, bounds[i + 1].clone());
            }
        }
        prepare_cut.push(cuts);
    }

    let scratch = tmp("indoubt-scratch");
    let rounds: Vec<u64> = (0..KILL_ROUNDS).step_by(7).collect();
    for &t in &rounds {
        // Pick a shard that actually prepared round t (a round may
        // accept no event on a given shard).
        let Some(s) = (0..KILL_SHARDS).find(|&s| prepare_cut[s].contains_key(&t)) else {
            continue;
        };
        let (segment, offset) = prepare_cut[s][&t].clone();
        for feedback_survived in [true, false] {
            copy_tree(&fx.base, &scratch);
            // Strand shard s with round t prepared but undecided.
            FaultFile::new(
                scratch
                    .join(format!("shard-{s:03}"))
                    .join(segment.file_name().unwrap()),
            )
            .torn_write(offset)
            .unwrap();
            // Coordinator cut after the Feedback (commit decision
            // durable → must resolve commit) or after only the Propose
            // (decision lost → must resolve abort).
            let coord_cut = if feedback_survived {
                2 * t + 2
            } else {
                2 * t + 1
            };
            let (cseg, coff) = &coord_bounds[coord_cut as usize];
            FaultFile::new(scratch.join("coordinator").join(cseg.file_name().unwrap()))
                .torn_write(*coff)
                .unwrap();
            fx.recover_and_verify(
                &scratch,
                &format!("in-doubt round {t} on shard {s}, feedback_survived={feedback_survived}"),
                Some(s),
            );
        }
    }
    fs::remove_dir_all(&fx.base).unwrap();
    let _ = fs::remove_dir_all(&scratch);
}

// ---- oracle-equivalence gate ----

/// The `Oracle`-trait redesign must be invisible for the default
/// oracle: explicitly installing [`OracleOptions::greedy`] — serial,
/// pooled at {1, 2, 8} scoring threads, and over {1, 2, 4} shards —
/// must reproduce the default-options single-actor digest bit for bit
/// (capacities, accounting, and policy state including RNG position)
/// for every policy the repo ships.
#[test]
fn greedy_oracle_through_trait_is_bit_equal_across_threads_and_shards() {
    use fasea::bandit::OracleOptions;
    const ROUNDS: u64 = 40;
    let w = workload();
    for (name, _) in all_policies() {
        let ref_dir = tmp(&format!("oracle-ref-{name}"));
        let reference = {
            let mut svc = DurableArrangementService::open(
                &ref_dir,
                w.instance.clone(),
                policy_named(name),
                opts(),
            )
            .unwrap();
            run_single(&mut svc, &w, ROUNDS);
            let d = digest_single(&svc);
            drop(svc);
            fs::remove_dir_all(&ref_dir).unwrap();
            d
        };

        for score_threads in [1usize, 2, 8] {
            let trait_opts = opts()
                .with_oracle(OracleOptions::greedy())
                .with_score_threads(score_threads);
            let dir = tmp(&format!("oracle-single-{name}-{score_threads}"));
            let mut svc = DurableArrangementService::open(
                &dir,
                w.instance.clone(),
                policy_named(name),
                trait_opts,
            )
            .unwrap();
            run_single(&mut svc, &w, ROUNDS);
            assert_eq!(
                digest_single(&svc),
                reference,
                "{name}: trait greedy at {score_threads} scoring threads diverged"
            );
            drop(svc);
            fs::remove_dir_all(&dir).unwrap();

            for shards in [1usize, 2, 4] {
                let dir = tmp(&format!("oracle-shard-{name}-{score_threads}-{shards}"));
                let mut svc = ShardedArrangementService::open(
                    &dir,
                    w.instance.clone(),
                    policy_named(name),
                    opts()
                        .with_oracle(OracleOptions::greedy())
                        .with_score_threads(score_threads),
                    shards,
                )
                .unwrap();
                run_sharded(&mut svc, &w, ROUNDS);
                assert_eq!(
                    digest_sharded(&svc),
                    reference,
                    "{name}: trait greedy over {shards} shards / {score_threads} threads diverged"
                );
                svc.close().unwrap();
                fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}

/// A non-default oracle must flow through sharding and recovery replay
/// identically too: a tabu run over 2 shards equals the single-actor
/// tabu run, and both differ from greedy (the options are not inert).
#[test]
fn tabu_oracle_shards_identically_to_single_actor() {
    use fasea::bandit::OracleOptions;
    const ROUNDS: u64 = 40;
    let w = workload();
    let tabu_opts = || opts().with_oracle(OracleOptions::tabu());

    let single = {
        let dir = tmp("tabu-single");
        let mut svc = DurableArrangementService::open(
            &dir,
            w.instance.clone(),
            policy_named("ts"),
            tabu_opts(),
        )
        .unwrap();
        run_single(&mut svc, &w, ROUNDS);
        let d = digest_single(&svc);
        drop(svc);
        fs::remove_dir_all(&dir).unwrap();
        d
    };
    let greedy = {
        let dir = tmp("tabu-greedy-ref");
        let mut svc =
            DurableArrangementService::open(&dir, w.instance.clone(), policy_named("ts"), opts())
                .unwrap();
        run_single(&mut svc, &w, ROUNDS);
        let d = digest_single(&svc);
        drop(svc);
        fs::remove_dir_all(&dir).unwrap();
        d
    };
    assert_ne!(
        single.policy_state, greedy.policy_state,
        "tabu must actually change decisions on this workload"
    );

    let dir = tmp("tabu-sharded");
    let mut svc = ShardedArrangementService::open(
        &dir,
        w.instance.clone(),
        policy_named("ts"),
        tabu_opts(),
        2,
    )
    .unwrap();
    run_sharded(&mut svc, &w, ROUNDS);
    assert_eq!(
        digest_sharded(&svc),
        single,
        "sharded tabu diverged from the single-actor tabu run"
    );
    assert_counters_match_mirror(&svc, "tabu/2");
    svc.close().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

// ---- event churn: golden determinism under kills ----

/// The deterministic churn schedule every churned test shares. Period 3
/// over the kill-matrix horizon puts several Lifecycle records in both
/// the coordinator log and every shard log before the kill round: the
/// 2-shard plan isolates event 11 (its own conflict component) on
/// shard 1, and this seed re-plans event 11 at t = 9 and t = 21.
fn kill_churn() -> fasea::core::ChurnSchedule {
    fasea::core::ChurnSchedule::generate(workload().instance.capacities(), KILL_END, 3, 0x5)
}

/// Drives a churned sharded run: round-`t` lifecycle actions are
/// applied (and durably logged) immediately before round `t` is
/// proposed. Recovery images re-apply the actions of the recovered
/// round — set-capacity semantics make that idempotent.
fn run_sharded_churned(
    svc: &mut ShardedArrangementService,
    w: &SyntheticWorkload,
    churn: &fasea::core::ChurnSchedule,
    upto: u64,
) {
    while svc.rounds_completed() < upto {
        let t = svc.rounds_completed();
        let a = if let Some(p) = svc.pending_arrangement() {
            p.clone()
        } else {
            for action in churn.actions_at(t) {
                svc.lifecycle(action.event, action.capacity).unwrap();
            }
            svc.propose(&w.arrivals.arrival(t)).unwrap()
        };
        let accepts = accepts_for(w, t, a.events());
        svc.feedback(&accepts).unwrap();
    }
}

/// Single-actor analogue of [`run_sharded_churned`].
fn run_single_churned(
    svc: &mut DurableArrangementService,
    w: &SyntheticWorkload,
    churn: &fasea::core::ChurnSchedule,
    upto: u64,
) {
    while svc.rounds_completed() < upto {
        let t = svc.rounds_completed();
        let a = if let Some(p) = svc.pending_arrangement() {
            p.clone()
        } else {
            for action in churn.actions_at(t) {
                svc.lifecycle(action.event, action.capacity).unwrap();
            }
            svc.propose(&w.arrivals.arrival(t)).unwrap()
        };
        let accepts = accepts_for(w, t, a.events());
        svc.feedback(&accepts).unwrap();
    }
}

/// Golden churn determinism: a churned sharded run (a) equals the
/// churned single-actor run bit for bit, and (b) killed at **every**
/// record boundary of every shard log and of the coordinator log —
/// which now interleaves `Lifecycle` records with Propose/Feedback —
/// recovers and continues to the identical final state with no acked
/// round lost.
#[test]
fn churned_kill_matrix_recovers_byte_identically() {
    let w = workload();
    let churn = kill_churn();
    assert!(
        churn.actions().iter().any(|a| a.at < KILL_ROUNDS),
        "schedule must churn before the kill round for the matrix to mean anything"
    );

    // Single-actor churned reference.
    let single_final = {
        let dir = tmp("churn-single");
        let mut svc =
            DurableArrangementService::open(&dir, w.instance.clone(), policy_named("ts"), opts())
                .unwrap();
        run_single_churned(&mut svc, &w, &churn, KILL_END);
        let d = digest_single(&svc);
        drop(svc);
        fs::remove_dir_all(&dir).unwrap();
        d
    };

    // Churned sharded crash image at KILL_ROUNDS + its continuation.
    let base = tmp("churn-kill-base");
    let fingerprint = {
        let mut svc = ShardedArrangementService::open(
            &base,
            w.instance.clone(),
            policy_named("ts"),
            opts(),
            KILL_SHARDS,
        )
        .unwrap();
        run_sharded_churned(&mut svc, &w, &churn, KILL_ROUNDS);
        svc.sync().unwrap();
        svc.fingerprint()
    };
    let reference_final = {
        let cont = tmp("churn-kill-cont");
        copy_tree(&base, &cont);
        let mut svc = ShardedArrangementService::open(
            &cont,
            w.instance.clone(),
            policy_named("ts"),
            opts(),
            KILL_SHARDS,
        )
        .unwrap();
        run_sharded_churned(&mut svc, &w, &churn, KILL_END);
        let d = digest_sharded(&svc);
        drop(svc);
        fs::remove_dir_all(&cont).unwrap();
        d
    };
    assert_eq!(
        reference_final, single_final,
        "churned sharded run diverged from the churned single-actor run"
    );

    // Kill at every boundary of every log. Lifecycle records appear in
    // both the shard logs (the owning shard's durable copy) and the
    // coordinator log, so this sweep covers every new record type.
    let scratch = tmp("churn-kill-scratch");
    let mut cut_points: Vec<(PathBuf, PathBuf, u64, String)> = Vec::new();
    for s in 0..KILL_SHARDS {
        let shard_dir = base.join(format!("shard-{s:03}"));
        let (records, boundaries, torn) =
            wal::scan(&shard_dir, shard_fingerprint(fingerprint, s)).unwrap();
        assert!(torn.is_none());
        assert!(
            records
                .iter()
                .any(|(_, r)| matches!(r, Record::Lifecycle { .. })),
            "shard {s} logged no Lifecycle record — the schedule never touched its events?"
        );
        for (k, (segment, offset)) in boundaries.iter().enumerate() {
            cut_points.push((
                shard_dir.clone(),
                segment.clone(),
                *offset,
                format!("shard {s} boundary {k}"),
            ));
        }
    }
    let coord_dir = base.join("coordinator");
    let (coord_records, coord_bounds, _) = wal::scan(&coord_dir, fingerprint).unwrap();
    assert!(
        coord_records
            .iter()
            .any(|(_, r)| matches!(r, Record::Lifecycle { .. })),
        "coordinator logged no Lifecycle record"
    );
    for (k, (segment, offset)) in coord_bounds.iter().enumerate() {
        cut_points.push((
            coord_dir.clone(),
            segment.clone(),
            *offset,
            format!("coordinator boundary {k}"),
        ));
    }

    for (dir, segment, offset, context) in cut_points {
        copy_tree(&base, &scratch);
        let rel = dir.file_name().unwrap();
        FaultFile::new(scratch.join(rel).join(segment.file_name().unwrap()))
            .torn_write(offset)
            .unwrap();
        let mut svc = ShardedArrangementService::open(
            &scratch,
            w.instance.clone(),
            policy_named("ts"),
            opts(),
            KILL_SHARDS,
        )
        .unwrap_or_else(|e| panic!("{context}: churned recovery failed: {e}"));
        assert!(
            svc.rounds_completed() <= KILL_ROUNDS,
            "{context}: recovered beyond the crash image"
        );
        run_sharded_churned(&mut svc, &w, &churn, KILL_END);
        assert_eq!(
            digest_sharded(&svc),
            reference_final,
            "{context}: churned continuation diverged"
        );
        assert_counters_match_mirror(&svc, &format!("{context} (final)"));
        drop(svc);
    }
    fs::remove_dir_all(&base).unwrap();
    let _ = fs::remove_dir_all(&scratch);
}

// ---- sharded serving over the wire ----

fn serve_spec_workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: 10,
        dim: DIM,
        seed: 0x000E_2E5A_A2D0,
        ..SyntheticConfig::default()
    })
}

fn open_sharded(dir: &Path, shards: usize) -> ShardedArrangementService {
    let w = serve_spec_workload();
    ShardedArrangementService::open(
        dir,
        w.instance,
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        DurableOptions::new().with_fsync(FsyncPolicy::Never),
        shards,
    )
    .unwrap()
}

fn drive_wire(addr: &str, rounds: u64, fed: &AtomicU64) {
    let w = serve_spec_workload();
    let coins = fasea::stats::CoinStream::new(0xFEED_C0DE);
    let mut client = ServeClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
    loop {
        let claimed = client.claim().unwrap();
        if claimed.t >= rounds {
            client.release().unwrap();
            return;
        }
        let t = claimed.t;
        let arrival = w.arrivals.arrival(t);
        let arrangement = match claimed.pending {
            Some(pending) => pending,
            None => {
                client
                    .propose(
                        arrival.capacity,
                        w.instance.num_events() as u32,
                        w.instance.dim() as u32,
                        arrival.contexts.as_slice().to_vec(),
                    )
                    .unwrap()
                    .1
            }
        };
        let accepts: Vec<bool> = arrangement
            .iter()
            .map(|&v| {
                coins.uniform(t, v as u64)
                    < w.model
                        .accept_probability(&arrival.contexts, EventId(v as usize))
            })
            .collect();
        client.feedback(&accepts).unwrap();
        fed.fetch_add(1, Ordering::Relaxed);
    }
}

fn wire_reference(rounds: u64) -> (u64, u64, u64) {
    let w = serve_spec_workload();
    let coins = fasea::stats::CoinStream::new(0xFEED_C0DE);
    let mut svc = ArrangementService::new(w.instance.clone(), Box::new(LinUcb::new(DIM, 1.0, 2.0)));
    for t in 0..rounds {
        let arrival = w.arrivals.arrival(t);
        let arrangement = svc.propose(&arrival).unwrap();
        let accepts: Vec<bool> = arrangement
            .events()
            .iter()
            .map(|&v| {
                coins.uniform(t, v.index() as u64)
                    < w.model.accept_probability(&arrival.contexts, v)
            })
            .collect();
        svc.feedback(&accepts).unwrap();
    }
    (
        svc.rounds_completed(),
        svc.accounting().total_arranged(),
        svc.accounting().total_rewards(),
    )
}

#[test]
fn sharded_server_crash_resume_loses_no_acked_round() {
    const ROUNDS: u64 = 120;
    const CRASH_AT: u64 = 50;
    let dir = tmp("serve-crash");
    fs::create_dir_all(&dir).unwrap();
    let w = serve_spec_workload();

    // Phase 1: a sharded server takes load over the wire, then the
    // process "dies" mid-round — proposal logged, feedback never sent,
    // no close, no shard Close requests (the actors see the hangup).
    {
        let handle = Server::spawn(
            open_sharded(&dir, 2),
            "127.0.0.1:0",
            ServerConfig {
                stats_interval: None,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.local_addr().to_string();
        let fed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| drive_wire(&addr, CRASH_AT, &fed));
            }
        });
        assert_eq!(fed.load(Ordering::Relaxed), CRASH_AT);
        // Leave a proposal in flight so recovery has an in-doubt round.
        let mut client = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
        let claimed = client.claim().unwrap();
        assert_eq!(claimed.t, CRASH_AT);
        let arrival = w.arrivals.arrival(CRASH_AT);
        client
            .propose(
                arrival.capacity,
                w.instance.num_events() as u32,
                w.instance.dim() as u32,
                arrival.contexts.as_slice().to_vec(),
            )
            .unwrap();
        // Crash: hang up with the proposal unanswered, then tear the
        // server down without a SHUTDOWN verb — every acked round and
        // the proposal itself are already durable, which is the test
        // harness analogue of the WAL's crash guarantee.
        drop(client);
        handle.initiate_shutdown();
        let report = handle.join();
        assert!(report.close.error.is_none());
    }

    // Phase 2: a fresh sharded server recovers the directory; the
    // handshake must advertise the pending round and the continuation
    // must match the uninterrupted in-process reference exactly.
    let handle = Server::spawn(
        open_sharded(&dir, 2),
        "127.0.0.1:0",
        ServerConfig {
            stats_interval: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.local_addr().to_string();
    let info = ServeClient::connect(addr.clone(), ClientConfig::default())
        .unwrap()
        .info()
        .unwrap();
    assert_eq!(info.rounds_completed, CRASH_AT, "an acked round was lost");
    assert!(info.has_pending, "the in-flight proposal must survive");

    let fed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| drive_wire(&addr, ROUNDS, &fed));
        }
    });
    assert_eq!(fed.load(Ordering::Relaxed), ROUNDS - CRASH_AT);

    let mut client = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        (
            stats.rounds_completed,
            stats.total_arranged,
            stats.total_rewards
        ),
        wire_reference(ROUNDS),
        "sharded crash + network resume must equal the uninterrupted run"
    );
    // The sharded route/commit histograms saw traffic.
    assert!(
        stats
            .histograms
            .iter()
            .any(|h| h.name == "shard_route_us" && h.count > 0),
        "shard_route_us never observed"
    );
    assert!(
        stats
            .histograms
            .iter()
            .any(|h| h.name == "cross_shard_commit_us" && h.count > 0),
        "cross_shard_commit_us never observed"
    );

    handle.initiate_shutdown();
    assert!(handle.join().close.error.is_none());
    let _ = fs::remove_dir_all(&dir);
}

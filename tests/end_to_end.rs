//! Cross-crate integration tests: the full synthetic pipeline from
//! workload generation through simulation to metrics.

use fasea::bandit::{EpsilonGreedy, Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea::datagen::{CapacityModel, SyntheticConfig, SyntheticWorkload};
use fasea::sim::{paper_checkpoints, run_simulation, RunConfig};

fn paper_policies(dim: usize, seed: u64) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(LinUcb::new(dim, 1.0, 2.0)),
        Box::new(ThompsonSampling::new(dim, 1.0, 0.1, seed)),
        Box::new(EpsilonGreedy::new(dim, 1.0, 0.1, seed ^ 1)),
        Box::new(Exploit::new(dim, 1.0)),
        Box::new(RandomPolicy::new(seed ^ 2)),
    ]
}

#[test]
fn full_pipeline_produces_consistent_metrics() {
    let horizon = 1500;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 60,
        dim: 6,
        horizon,
        seed: 101,
        ..Default::default()
    });
    let mut policies = paper_policies(6, 11);
    let cfg = RunConfig::new(horizon)
        .with_checkpoints(paper_checkpoints(horizon))
        .with_kendall()
        .with_timing(true)
        .with_feedback_seed(55);
    let result = run_simulation(&workload, &mut policies, &cfg);

    for p in result.policies.iter().chain([&result.reference]) {
        assert_eq!(p.accounting.rounds(), horizon);
        // Cumulative metrics are monotone.
        let mut prev_rewards = 0u64;
        for c in &p.checkpoints {
            assert!(
                c.total_rewards >= prev_rewards,
                "{} rewards decreased",
                p.name
            );
            prev_rewards = c.total_rewards;
            assert!((0.0..=1.0).contains(&c.accept_ratio));
            if let Some(tau) = c.kendall_tau {
                assert!((-1.0..=1.0).contains(&tau), "{}: tau={tau}", p.name);
            }
        }
        // The last checkpoint equals the final accounting.
        let last = p.checkpoints.last().unwrap();
        assert_eq!(last.total_rewards, p.accounting.total_rewards());
    }
}

#[test]
fn paper_ordering_holds_at_moderate_scale() {
    // The paper's headline (Figure 1): UCB and Exploit lead, eGreedy
    // close, TS far behind (only better than Random). 4000 rounds at
    // |V|=80, d=10 is enough for the gap to be decisive.
    let horizon = 4000;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 80,
        dim: 10,
        horizon,
        seed: 77,
        ..Default::default()
    });
    let mut policies = paper_policies(10, 5);
    let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));
    let rewards: std::collections::HashMap<&str, u64> = result
        .policies
        .iter()
        .map(|p| (p.name.as_str(), p.accounting.total_rewards()))
        .collect();

    let ucb = rewards["UCB"];
    let ts = rewards["TS"];
    let egreedy = rewards["eGreedy"];
    let exploit = rewards["Exploit"];
    let random = rewards["Random"];
    assert!(ucb > ts, "UCB {ucb} <= TS {ts}");
    assert!(exploit > ts, "Exploit {exploit} <= TS {ts}");
    assert!(egreedy > ts, "eGreedy {egreedy} <= TS {ts}");
    assert!(ts > random, "TS {ts} <= Random {random}");
    // UCB/Exploit within striking distance of OPT.
    let opt = result.reference.accounting.total_rewards();
    assert!(
        ucb as f64 > opt as f64 * 0.85,
        "UCB {ucb} too far from OPT {opt}"
    );
}

#[test]
fn regret_drop_when_capacities_deplete() {
    // Tiny capacities force OPT to exhaust events early; after that the
    // learners keep collecting while OPT is frozen, so total regret at
    // the end is lower than its running maximum (the Figure 1 sudden
    // drop).
    let horizon = 4000;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 40,
        dim: 5,
        capacity: CapacityModel {
            mean: 20.0,
            std: 5.0,
        },
        horizon,
        seed: 31,
        ..Default::default()
    });
    let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(LinUcb::new(5, 1.0, 2.0))];
    let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));
    let exhausted = result
        .reference_exhausted_at
        .expect("OPT should exhaust all capacity");
    assert!(exhausted < horizon);
    let regrets: Vec<i64> = result.policies[0]
        .checkpoints
        .iter()
        .map(|c| c.total_regret)
        .collect();
    let max_regret = *regrets.iter().max().unwrap();
    let final_regret = *regrets.last().unwrap();
    assert!(
        final_regret < max_regret,
        "no regret drop: final {final_regret} vs max {max_regret}"
    );
}

#[test]
fn basic_contextual_bandit_mode() {
    // Figures 11-13 setting: one event per round, no capacities/conflicts.
    let horizon = 1500;
    let workload = SyntheticWorkload::generate(
        SyntheticConfig {
            num_events: 50,
            dim: 5,
            horizon,
            seed: 44,
            ..Default::default()
        }
        .into_basic(),
    );
    let mut policies = paper_policies(5, 3);
    let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));
    // Exactly one event arranged per round.
    for p in result.policies.iter().chain([&result.reference]) {
        assert_eq!(p.accounting.total_arranged(), horizon);
    }
    // No exhaustion ever (unlimited capacity): no sudden drop.
    assert!(result.reference_exhausted_at.is_none());
    // The learning-vs-random gap still holds.
    let ucb = result.policies[0].accounting.total_rewards();
    let random = result.policies[4].accounting.total_rewards();
    assert!(ucb > random);
}

#[test]
fn common_random_numbers_make_runs_reproducible() {
    let config = SyntheticConfig {
        num_events: 25,
        dim: 4,
        horizon: 400,
        seed: 9,
        ..Default::default()
    };
    let run = |seed: u64| {
        let workload = SyntheticWorkload::generate(config.clone());
        let mut policies: Vec<Box<dyn Policy>> =
            vec![Box::new(EpsilonGreedy::new(4, 1.0, 0.2, 77))];
        let cfg = RunConfig::new(400).with_feedback_seed(seed);
        run_simulation(&workload, &mut policies, &cfg).policies[0]
            .accounting
            .total_rewards()
    };
    assert_eq!(run(1), run(1));
    // Different feedback seeds give (almost surely) different totals.
    let a = run(1);
    let b = run(2);
    let c = run(3);
    assert!(a != b || b != c, "feedback seed has no effect");
}

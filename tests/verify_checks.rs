//! Tests of the `fasea-exp verify` shape checker: build a results tree
//! end-to-end with tiny experiments and confirm the checker reads it,
//! and confirm it rejects an empty/incomplete tree.

use fasea_experiments::{run_experiment, verify, Options};

#[test]
fn verify_fails_cleanly_on_missing_results() {
    let out = std::env::temp_dir().join("fasea_verify_empty");
    std::fs::remove_dir_all(&out).ok();
    std::fs::create_dir_all(&out).unwrap();
    let opts = Options {
        out_dir: out.clone(),
        ..Default::default()
    };
    let err = verify::verify(&opts).unwrap_err();
    assert!(err.contains("checks failed"));
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn verify_reads_generated_artifacts() {
    // Generate a small subset of artefacts and confirm the relevant
    // checks at least execute against them (pass or fail — tiny
    // horizons cannot promise the paper's asymptotic shapes, the test
    // pins the plumbing, not the science).
    let out = std::env::temp_dir().join("fasea_verify_plumbing");
    std::fs::remove_dir_all(&out).ok();
    let opts = Options {
        horizon: 300,
        out_dir: out.clone(),
        seed: 7,
        threads: 1,
        real_rounds: 60,
        real_regret_rounds: 80,
        replications: 1,
        score_threads: 0,
        ..Default::default()
    };
    run_experiment("fig1", &opts).unwrap();
    let err = verify::verify(&opts).unwrap_err();
    // fig1 artefacts exist, so at most the other checks report SKIP;
    // the fig1 ordering check must NOT be a skip.
    assert!(!err.is_empty());
    // Check the CSVs were actually parsed: the kendall file must exist
    // and load.
    let kendall = fasea_sim::CsvTable::read(&out.join("fig2/default_kendall.csv")).unwrap();
    assert!(kendall.column_index("UCB").is_some());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn verify_passes_on_well_shaped_synthetic_csvs() {
    // Hand-craft a results tree with exactly the paper's shapes and
    // confirm every check passes — the positive control for the checker
    // itself.
    let out = std::env::temp_dir().join("fasea_verify_golden");
    std::fs::remove_dir_all(&out).ok();

    let header = ["t", "UCB", "TS", "eGreedy", "Exploit", "Random", "OPT"];
    let t_grid: Vec<f64> = (1..=20).map(|i| (i * 500) as f64).collect();

    // fig1 rewards: UCB≈Exploit > eGreedy > TS > Random.
    let rewards: Vec<Vec<f64>> = t_grid
        .iter()
        .map(|&t| vec![t, 0.9 * t, 0.3 * t, 0.8 * t, 0.9 * t, 0.1 * t, t])
        .collect();
    fasea_sim::write_csv(
        &out.join("fig1/default_total_rewards.csv"),
        &header,
        &rewards,
    )
    .unwrap();

    // fig1 regrets: TS peaks then drops hard.
    let regrets: Vec<Vec<f64>> = t_grid
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let ts = if i < 15 {
                100.0 * (i as f64 + 1.0)
            } else {
                300.0
            };
            vec![t, 10.0, ts, 50.0, 10.0, 2000.0, 0.0]
        })
        .collect();
    fasea_sim::write_csv(
        &out.join("fig1/default_total_regrets.csv"),
        &header,
        &regrets,
    )
    .unwrap();

    // fig2 kendall: UCB → 1, Random ≈ 0, TS mid.
    let kheader = ["t", "UCB", "TS", "eGreedy", "Exploit", "Random"];
    let kendall: Vec<Vec<f64>> = t_grid
        .iter()
        .map(|&t| vec![t, 0.95, 0.5, 0.9, 0.95, 0.02])
        .collect();
    fasea_sim::write_csv(&out.join("fig2/default_kendall.csv"), &kheader, &kendall).unwrap();

    // fig4: TS/UCB ≈ 1 at d1, much lower at d15.
    let ar_d1: Vec<Vec<f64>> = t_grid
        .iter()
        .map(|&t| vec![t, 0.99, 0.97, 0.9, 0.99, 0.5, 1.0])
        .collect();
    let ar_d15: Vec<Vec<f64>> = t_grid
        .iter()
        .map(|&t| vec![t, 0.6, 0.3, 0.55, 0.6, 0.1, 0.7])
        .collect();
    fasea_sim::write_csv(&out.join("fig4/d1_accept_ratio.csv"), &header, &ar_d1).unwrap();
    fasea_sim::write_csv(&out.join("fig4/d15_accept_ratio.csv"), &header, &ar_d15).unwrap();

    // fig6: cv100 drops, cv500 does not.
    let r100: Vec<Vec<f64>> = t_grid
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let ts = if i < 10 {
                50.0 * (i as f64 + 1.0)
            } else {
                100.0
            };
            vec![t, 5.0, ts, 20.0, 5.0, 800.0, 0.0]
        })
        .collect();
    let r500: Vec<Vec<f64>> = t_grid
        .iter()
        .enumerate()
        .map(|(i, &t)| vec![t, 5.0, 60.0 * (i as f64 + 1.0), 20.0, 5.0, 900.0, 0.0])
        .collect();
    fasea_sim::write_csv(&out.join("fig6/cv100_total_regrets.csv"), &header, &r100).unwrap();
    fasea_sim::write_csv(&out.join("fig6/cv500_total_regrets.csv"), &header, &r500).unwrap();

    // table7 (cu5): rows UCB, TS, eGreedy, Exploit, Random, Online, FK, cu.
    {
        let mut h = vec!["row".to_string()];
        h.extend((1..=19).map(|u| format!("u{u}")));
        let h_refs: Vec<&str> = h.iter().map(|s| s.as_str()).collect();
        let mut w =
            fasea_sim::CsvWriter::create(&out.join("table7/table7_cu5.csv"), &h_refs).unwrap();
        let mk = |name: &str, v: f64| {
            let mut row = vec![name.to_string()];
            row.extend((0..19).map(|_| format!("{v:.2}")));
            row
        };
        for (name, v) in [
            ("UCB", 0.9),
            ("TS", 0.3),
            ("eGreedy", 0.8),
            ("Exploit", 0.7),
            ("Random", 0.2),
            ("Online", 0.6),
            ("Full Kn.", 1.0),
            ("c_u", 5.0),
        ] {
            w.row(&mk(name, v)).unwrap();
        }
        w.finish().unwrap();
    }

    // fig11 basic.
    let basic: Vec<Vec<f64>> = t_grid
        .iter()
        .map(|&t| vec![t, 0.7 * t, 0.2 * t, 0.6 * t, 0.7 * t, 0.1 * t, 0.75 * t])
        .collect();
    fasea_sim::write_csv(&out.join("fig11/v500_total_rewards.csv"), &header, &basic).unwrap();

    let opts = Options {
        out_dir: out.clone(),
        ..Default::default()
    };
    verify::verify(&opts).expect("all checks should pass on golden-shaped data");
    std::fs::remove_dir_all(&out).ok();
}

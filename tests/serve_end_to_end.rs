//! End-to-end serving-layer checks at the workspace level:
//!
//! 1. **Wire parity** — several concurrent clients drive a live server
//!    with CRN feedback; the final accounting must be *identical* to an
//!    in-process run of the same seed (the networked service is
//!    observationally equivalent to the library).
//! 2. **Crash resume** — a server process dies with a proposal
//!    outstanding; a new server over the same directory recovers from
//!    the WAL, hands the pending round to the first network claimant,
//!    and the completed run still matches the uninterrupted reference.

use std::sync::atomic::{AtomicU64, Ordering};

use fasea::core::EventId;
use fasea::serve::{ClientConfig, ServeClient, Server, ServerConfig, ServerHandle};
use fasea::sim::{ArrangementService, DurableOptions};
use fasea::{DurableArrangementService, FsyncPolicy};
use fasea_experiments::serve_cmd::WorkloadSpec;

const ROUNDS: u64 = 200;
const CLIENTS: usize = 3;

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 0xE2E_5EED,
        events: 10,
        dim: 3,
        policy: "ucb".into(),
        users: 10_000,
        model_budget_mb: 0,
        ..WorkloadSpec::default()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fasea-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_service(dir: &std::path::Path) -> DurableArrangementService {
    let spec = spec();
    DurableArrangementService::open(
        dir,
        spec.workload().instance,
        spec.policy().unwrap(),
        DurableOptions::new().with_fsync(FsyncPolicy::Never),
    )
    .unwrap()
}

fn start_server(dir: &std::path::Path) -> ServerHandle {
    start_server_depth(dir, 1)
}

fn start_server_depth(dir: &std::path::Path, pipeline_depth: usize) -> ServerHandle {
    Server::spawn(
        open_service(dir),
        "127.0.0.1:0",
        ServerConfig {
            stats_interval: None,
            pipeline_depth,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Drives rounds over the wire until the server's counter reaches
/// `rounds`; returns how many this session completed.
fn drive(addr: &str, rounds: u64, fed: &AtomicU64) {
    let spec = spec();
    let workload = spec.workload();
    let coins = spec.feedback_coins();
    let mut client = ServeClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
    loop {
        let claimed = client.claim().unwrap();
        if claimed.t >= rounds {
            client.release().unwrap();
            return;
        }
        let t = claimed.t;
        let arrival = workload.arrivals.arrival(t);
        let arrangement = match claimed.pending {
            Some(pending) => pending,
            None => {
                client
                    .propose(
                        arrival.capacity,
                        workload.instance.num_events() as u32,
                        workload.instance.dim() as u32,
                        arrival.contexts.as_slice().to_vec(),
                    )
                    .unwrap()
                    .1
            }
        };
        let accepts: Vec<bool> = arrangement
            .iter()
            .map(|&v| {
                coins.uniform(t, v as u64)
                    < workload
                        .model
                        .accept_probability(&arrival.contexts, EventId(v as usize))
            })
            .collect();
        client.feedback(&accepts).unwrap();
        fed.fetch_add(1, Ordering::Relaxed);
    }
}

/// The uninterrupted in-process reference: same workload, same policy,
/// same coins.
fn reference(rounds: u64) -> (u64, u64, u64) {
    let spec = spec();
    let workload = spec.workload();
    let coins = spec.feedback_coins();
    let mut svc = ArrangementService::new(workload.instance.clone(), spec.policy().unwrap());
    for t in 0..rounds {
        let arrival = workload.arrivals.arrival(t);
        let arrangement = svc.propose(&arrival).unwrap();
        let accepts: Vec<bool> = arrangement
            .events()
            .iter()
            .map(|&v| {
                coins.uniform(t, v.index() as u64)
                    < workload.model.accept_probability(&arrival.contexts, v)
            })
            .collect();
        svc.feedback(&accepts).unwrap();
    }
    (
        svc.rounds_completed(),
        svc.accounting().total_arranged(),
        svc.accounting().total_rewards(),
    )
}

fn server_triple(addr: &str) -> (u64, u64, u64) {
    let mut client = ServeClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
    let stats = client.stats().unwrap();
    (
        stats.rounds_completed,
        stats.total_arranged,
        stats.total_rewards,
    )
}

#[test]
fn concurrent_clients_match_in_process_run() {
    let dir = temp_dir("parity");
    let handle = start_server(&dir);
    let addr = handle.local_addr().to_string();
    let fed = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| drive(&addr, ROUNDS, &fed));
        }
    });
    assert_eq!(fed.load(Ordering::Relaxed), ROUNDS, "every round fed once");
    assert_eq!(
        server_triple(&addr),
        reference(ROUNDS),
        "networked accounting must equal the in-process run"
    );

    // Zero protocol errors end to end.
    let metrics = handle.metrics();
    assert_eq!(metrics.protocol_errors.get(), 0);
    assert_eq!(metrics.decode_errors.get(), 0);
    assert_eq!(metrics.overloaded.get(), 0);

    handle.initiate_shutdown();
    let report = handle.join();
    assert!(report.close.error.is_none());
    assert_eq!(report.close.rounds_completed, ROUNDS);
    assert!(report.close.snapshot.is_some(), "drain must snapshot");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Optimistic concurrent admission (`pipeline_depth > 1`): concurrent
/// clients hold several consecutive rounds at once, yet the accounting
/// still equals the strictly sequential in-process run, and the STATS
/// response carries the pipeline observability fields the loadgen
/// prints (`prefetch_hit`, `prefetch_recompute`, `conflict_replays`,
/// and the `pipeline_depth` histogram).
#[test]
fn pipelined_admission_matches_sequential_and_reports_stats() {
    let dir = temp_dir("pipelined");
    let handle = start_server_depth(&dir, 4);
    let addr = handle.local_addr().to_string();
    let fed = AtomicU64::new(0);

    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| drive(&addr, ROUNDS, &fed));
        }
    });
    assert_eq!(fed.load(Ordering::Relaxed), ROUNDS, "every round fed once");
    assert_eq!(
        server_triple(&addr),
        reference(ROUNDS),
        "depth-4 admission must equal the sequential run"
    );

    let mut client = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
    let stats = client.stats().unwrap();
    for name in ["prefetch_hit", "prefetch_recompute", "conflict_replays"] {
        assert!(
            stats.counter(name).is_some(),
            "STATS must export the {name} counter"
        );
    }
    let depth_hist = stats
        .histograms
        .iter()
        .find(|h| h.name == "pipeline_depth")
        .expect("STATS must export the pipeline_depth histogram");
    assert!(depth_hist.count > 0, "every grant records its depth");
    assert!(
        depth_hist.max_us > 1,
        "concurrent clients must actually overlap rounds (observed depth > 1)"
    );
    let text = stats.render();
    for needle in [
        "prefetch_hit=",
        "prefetch_recompute=",
        "conflict_replays=",
        "hist pipeline_depth",
    ] {
        assert!(
            text.contains(needle),
            "loadgen STATS output missing {needle}"
        );
    }

    handle.initiate_shutdown();
    let report = handle.join();
    assert!(report.close.error.is_none());
    assert_eq!(report.close.rounds_completed, ROUNDS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_with_pending_round_resumes_over_the_wire() {
    let dir = temp_dir("resume");
    let crash_at: u64 = 40;

    // Phase 1: a service dies with round `crash_at` proposed but not
    // answered (drop without close = crash; the WAL holds the record).
    {
        let spec = spec();
        let workload = spec.workload();
        let coins = spec.feedback_coins();
        let mut svc = open_service(&dir);
        for t in 0..crash_at {
            let arrival = workload.arrivals.arrival(t);
            let arrangement = svc.propose(&arrival).unwrap();
            let accepts: Vec<bool> = arrangement
                .events()
                .iter()
                .map(|&v| {
                    coins.uniform(t, v.index() as u64)
                        < workload.model.accept_probability(&arrival.contexts, v)
                })
                .collect();
            svc.feedback(&accepts).unwrap();
        }
        svc.propose(&workload.arrivals.arrival(crash_at)).unwrap();
        svc.sync().unwrap();
        // svc dropped here without feedback and without close().
    }

    // Phase 2: a fresh server recovers the directory; network clients
    // pick up mid-stream. The first claimant receives the pending
    // arrangement for round `crash_at` and answers it without
    // re-proposing.
    let handle = start_server(&dir);
    let addr = handle.local_addr().to_string();
    let info = ServeClient::connect(addr.clone(), ClientConfig::default())
        .unwrap()
        .info()
        .unwrap();
    assert_eq!(info.rounds_completed, crash_at);
    assert!(info.has_pending, "handshake must advertise recovery state");

    let fed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| drive(&addr, ROUNDS, &fed));
        }
    });
    // The pending round plus everything after it, each exactly once.
    assert_eq!(fed.load(Ordering::Relaxed), ROUNDS - crash_at);
    assert_eq!(
        server_triple(&addr),
        reference(ROUNDS),
        "crash + network resume must equal the uninterrupted run"
    );

    handle.initiate_shutdown();
    assert!(handle.join().close.error.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

//! Golden determinism tests: the whole pipeline — workload generation,
//! policy randomness, common-random-number feedback — is a pure function
//! of its seeds. These tests pin concrete totals for a small fixed
//! configuration so that any accidental change to RNG consumption order,
//! hashing, or update algebra shows up as a diff here.
//!
//! If an *intentional* change (e.g. a new distribution draw order)
//! breaks these, regenerate the constants with
//! `cargo test --test determinism_golden -- --nocapture` after
//! reviewing that the change is wanted.

use fasea::bandit::{EpsilonGreedy, Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::sim::{run_simulation, RunConfig};

fn golden_run() -> Vec<(String, u64)> {
    golden_run_with(0)
}

fn golden_run_with(score_threads: usize) -> Vec<(String, u64)> {
    let horizon = 600;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 40,
        dim: 6,
        horizon,
        seed: 0xA0,
        ..Default::default()
    });
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinUcb::new(6, 1.0, 2.0)),
        Box::new(ThompsonSampling::new(6, 1.0, 0.1, 11)),
        Box::new(EpsilonGreedy::new(6, 1.0, 0.1, 12)),
        Box::new(Exploit::new(6, 1.0)),
        Box::new(RandomPolicy::new(13)),
    ];
    let cfg = RunConfig::new(horizon)
        .with_feedback_seed(0xFEED)
        .with_score_threads(score_threads);
    let result = run_simulation(&workload, &mut policies, &cfg);
    let mut rows: Vec<(String, u64)> = result
        .policies
        .iter()
        .map(|p| (p.name.clone(), p.accounting.total_rewards()))
        .collect();
    rows.push((
        result.reference.name.clone(),
        result.reference.accounting.total_rewards(),
    ));
    rows
}

#[test]
fn run_is_bit_reproducible() {
    let a = golden_run();
    let b = golden_run();
    assert_eq!(a, b, "two identical runs diverged");
    for (name, rewards) in &a {
        println!("golden: {name} = {rewards}");
    }
    // Structural sanity on the pinned run (ordering, not exact values,
    // so the test is robust to intentional reseeding while still
    // catching broken determinism via the equality above).
    let get = |n: &str| a.iter().find(|(name, _)| name == n).unwrap().1;
    assert!(get("UCB") > get("Random"));
    assert!(get("Exploit") > get("Random"));
    assert!(get("OPT") >= get("UCB"));
}

#[test]
fn parallel_scoring_matches_serial_golden() {
    // The ScorePool shards the score scan but must be bit-invisible:
    // the same run through a 4-thread pool lands on the identical
    // golden totals for every policy (and the OPT reference).
    let serial = golden_run_with(0);
    let pooled = golden_run_with(4);
    assert_eq!(serial, pooled, "parallel scoring changed a golden total");
}

#[test]
fn workload_generation_is_reproducible() {
    let cfg = SyntheticConfig {
        num_events: 25,
        dim: 5,
        seed: 777,
        ..Default::default()
    };
    let a = SyntheticWorkload::generate(cfg.clone());
    let b = SyntheticWorkload::generate(cfg);
    assert_eq!(a.model.theta().as_slice(), b.model.theta().as_slice());
    assert_eq!(a.instance.capacities(), b.instance.capacities());
    assert_eq!(
        a.instance.conflicts().num_conflicts(),
        b.instance.conflicts().num_conflicts()
    );
    for t in [0u64, 1, 99, 12345] {
        assert_eq!(
            a.arrivals.arrival(t).contexts,
            b.arrivals.arrival(t).contexts
        );
    }
}

#[test]
fn real_dataset_is_reproducible_across_processes() {
    // The canonical seed must always give the paper's c_u row — this is
    // the cross-process anchor for Table 7.
    use fasea::datagen::real::PAPER_YES_COUNTS;
    use fasea::datagen::RealDataset;
    let d = RealDataset::generate(2016);
    let counts: Vec<usize> = (0..d.num_users()).map(|u| d.yes_count(u)).collect();
    assert_eq!(counts.as_slice(), PAPER_YES_COUNTS.as_slice());
}

//! The paper's qualitative findings as executable assertions
//! (DESIGN.md's success criteria), at scales small enough for CI.

use fasea::bandit::{LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::sim::{run_simulation, RunConfig};
use fasea::stats::kendall_tau;

/// Finding 3 (Figure 4): TS becomes competitive at d = 1 and degrades as
/// d grows — its sampling scale q ∝ √d amplifies the posterior noise.
#[test]
fn ts_competitive_at_d1_degraded_at_high_d() {
    let horizon = 3000;
    let run_ts_gap = |d: usize| -> f64 {
        let workload = SyntheticWorkload::generate(SyntheticConfig {
            num_events: 60,
            dim: d,
            horizon,
            seed: 500 + d as u64,
            ..Default::default()
        });
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(ThompsonSampling::new(d, 1.0, 0.1, 1)),
            Box::new(LinUcb::new(d, 1.0, 2.0)),
        ];
        let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));
        let ts = result.policies[0].accounting.total_rewards() as f64;
        let ucb = result.policies[1].accounting.total_rewards() as f64;
        ts / ucb // relative performance: 1.0 = on par
    };
    let gap_d1 = run_ts_gap(1);
    let gap_d15 = run_ts_gap(15);
    assert!(
        gap_d1 > 0.85,
        "TS should be near UCB at d=1, got ratio {gap_d1}"
    );
    assert!(
        gap_d1 > gap_d15 + 0.1,
        "TS should degrade with d: d1 ratio {gap_d1} vs d15 ratio {gap_d15}"
    );
}

/// Finding 4 (Figure 2): UCB's score ranking converges to the true
/// ranking (τ → 1); Random's stays near 0; TS's is noisy (bounded away
/// from UCB's).
#[test]
fn kendall_convergence_shapes() {
    let horizon = 3000;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 60,
        dim: 8,
        horizon,
        seed: 321,
        ..Default::default()
    });
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinUcb::new(8, 1.0, 2.0)),
        Box::new(ThompsonSampling::new(8, 1.0, 0.1, 2)),
        Box::new(RandomPolicy::new(3)),
    ];
    let cfg = RunConfig::new(horizon)
        .with_checkpoints(vec![2500, 2600, 2700, 2800, 2900, 3000])
        .with_kendall()
        .with_feedback_seed(77);
    let result = run_simulation(&workload, &mut policies, &cfg);
    let avg_tau = |i: usize| -> f64 {
        let cps = &result.policies[i].checkpoints;
        cps.iter().filter_map(|c| c.kendall_tau).sum::<f64>() / cps.len() as f64
    };
    let ucb_tau = avg_tau(0);
    let ts_tau = avg_tau(1);
    let random_tau = avg_tau(2);
    assert!(ucb_tau > 0.8, "UCB tau should approach 1, got {ucb_tau}");
    assert!(
        random_tau.abs() < 0.2,
        "Random tau should hover near 0, got {random_tau}"
    );
    assert!(
        ucb_tau > ts_tau + 0.1,
        "TS tau ({ts_tau}) should lag UCB's ({ucb_tau})"
    );
}

/// The Kendall τ used in the shape checks matches an independent
/// definition on a concrete case (guards the metric itself).
#[test]
fn kendall_tau_metric_sanity() {
    let truth = [0.9, 0.1, 0.5, 0.3];
    let perfect = truth;
    let inverted = [0.1, 0.9, 0.5, 0.7];
    assert_eq!(kendall_tau(&perfect, &truth), Some(1.0));
    let tau_inv = kendall_tau(&inverted, &truth).unwrap();
    assert!(tau_inv < 0.0);
}

/// Finding 2 (Figure 7): larger conflict ratios slow capacity depletion —
/// with cr = 1 only one event is arranged per round, so OPT never (or
/// much later) exhausts the catalogue.
#[test]
fn conflict_ratio_delays_exhaustion() {
    let horizon = 5000;
    let exhaustion_at = |cr: f64| -> Option<u64> {
        let workload = SyntheticWorkload::generate(SyntheticConfig {
            num_events: 20,
            dim: 4,
            capacity: fasea::datagen::CapacityModel {
                mean: 30.0,
                std: 5.0,
            },
            conflict_ratio: cr,
            horizon,
            seed: 888,
            ..Default::default()
        });
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(RandomPolicy::new(1))];
        run_simulation(&workload, &mut policies, &RunConfig::paper(horizon)).reference_exhausted_at
    };
    let t0 = exhaustion_at(0.0);
    let t1 = exhaustion_at(1.0);
    let t0 = t0.expect("cr=0 should exhaust quickly");
    match t1 {
        None => {} // cr=1 never exhausted within the horizon — strongest form
        Some(t1) => assert!(
            t1 > t0,
            "cr=1 exhausted at {t1}, not later than cr=0 at {t0}"
        ),
    }
}

/// Efficiency ordering (Table 5): Random is by far the cheapest per
/// round; UCB is the most expensive of the learners at d = 20.
#[test]
fn per_round_cost_ordering() {
    let horizon = 300;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 200,
        dim: 20,
        horizon,
        seed: 2,
        ..Default::default()
    });
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinUcb::new(20, 1.0, 2.0)),
        Box::new(RandomPolicy::new(1)),
    ];
    let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));
    let ucb_time = result.policies[0].avg_round_secs;
    let random_time = result.policies[1].avg_round_secs;
    assert!(
        ucb_time > random_time,
        "UCB ({ucb_time}) should cost more per round than Random ({random_time})"
    );
}

/// Memory model trends (Tables 5/6): memory grows with |V| and d.
#[test]
fn memory_trends() {
    let run_mem = |n: usize, d: usize| -> f64 {
        let workload = SyntheticWorkload::generate(SyntheticConfig {
            num_events: n,
            dim: d,
            horizon: 50,
            seed: 3,
            ..Default::default()
        });
        let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(LinUcb::new(d, 1.0, 2.0))];
        run_simulation(&workload, &mut policies, &RunConfig::paper(50)).policies[0].memory_mb
    };
    assert!(run_mem(1000, 20) > run_mem(100, 20));
    assert!(run_mem(500, 20) > run_mem(500, 1));
}

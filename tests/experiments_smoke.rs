//! Smoke tests for the experiment harness: every paper artefact
//! regenerates (at a tiny horizon) and emits non-empty CSV output.

use fasea_experiments::{run_experiment, Options};
use std::path::PathBuf;

fn tiny_opts(tag: &str) -> (Options, PathBuf) {
    let out = std::env::temp_dir().join(format!("fasea_exp_smoke_{tag}"));
    std::fs::remove_dir_all(&out).ok();
    (
        Options {
            horizon: 400,
            out_dir: out.clone(),
            seed: 12345,
            threads: 2,
            real_rounds: 120,
            real_regret_rounds: 200,
            replications: 1,
            // Smoke the deterministic parallel scoring path too — the
            // pinned CSV shapes must be invariant to it.
            score_threads: 2,
            oracle: fasea::bandit::OracleOptions::greedy(),
            churn_period: 0,
        },
        out,
    )
}

fn assert_csvs(dir: &std::path::Path, sub: &str, min_files: usize) {
    let d = dir.join(sub);
    let files: Vec<_> = std::fs::read_dir(&d)
        .unwrap_or_else(|e| panic!("{} missing: {e}", d.display()))
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "csv"))
        .collect();
    assert!(
        files.len() >= min_files,
        "{sub}: expected >= {min_files} csvs, found {}",
        files.len()
    );
    for f in files {
        let content = std::fs::read_to_string(f.path()).unwrap();
        assert!(
            content.lines().count() >= 2,
            "{:?} has no data rows",
            f.path()
        );
    }
}

#[test]
fn fig1_and_fig2() {
    let (opts, out) = tiny_opts("fig1");
    run_experiment("fig1", &opts).unwrap();
    assert_csvs(&out, "fig1", 4);
    assert_csvs(&out, "fig2", 1);
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn fig3_num_events() {
    let (opts, out) = tiny_opts("fig3");
    run_experiment("fig3", &opts).unwrap();
    assert_csvs(&out, "fig3", 8); // 2 cells x 4 metrics
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn fig7_conflicts() {
    let (opts, out) = tiny_opts("fig7");
    run_experiment("fig7", &opts).unwrap();
    assert_csvs(&out, "fig7", 16); // 4 cells x 4 metrics
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn fig9_param_sweeps() {
    let (opts, out) = tiny_opts("fig9");
    run_experiment("fig9", &opts).unwrap();
    assert_csvs(&out, "fig9", 40); // 10 cells x 4 metrics
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn fig10_real_user1() {
    let (opts, out) = tiny_opts("fig10");
    run_experiment("fig10", &opts).unwrap();
    assert_csvs(&out, "fig10", 4); // 2 modes x (accept + regret)
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn fig11_basic_bandit() {
    let (opts, out) = tiny_opts("fig11");
    run_experiment("fig11", &opts).unwrap();
    assert_csvs(&out, "fig11", 12); // 3 cells x 4 metrics
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn table5_efficiency() {
    let (opts, out) = tiny_opts("table5");
    run_experiment("table5", &opts).unwrap();
    assert_csvs(&out, "table5", 2); // time + memory
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn table7_all_users() {
    let (opts, out) = tiny_opts("table7");
    run_experiment("table7", &opts).unwrap();
    assert_csvs(&out, "table7", 2); // cu5 + cufull
                                    // Check structure: a row per algorithm + Full Kn. + c_u, 19 user
                                    // columns.
    let content = std::fs::read_to_string(out.join("table7/table7_cufull.csv")).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines[0].split(',').count(), 20); // "row" + u1..u19
    assert_eq!(lines.len(), 1 + 6 + 2); // header + 6 policies + FK + c_u
                                        // The c_u row must be the paper's numbers.
    let cu_row = lines.last().unwrap();
    assert!(cu_row.starts_with("c_u,12,26,11,10,15,22,16,7,22,11,13,19,23,11,11,7,9,13,17"));
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn fig1_with_replications() {
    let (mut opts, out) = tiny_opts("reps");
    opts.replications = 3;
    run_experiment("fig1", &opts).unwrap();
    let content = std::fs::read_to_string(out.join("fig1/replications.csv")).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 1 + 3); // header + one row per replication
    assert!(lines[0].starts_with("rep,UCB,TS"));
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn plots_subcommand_emits_gnuplot_scripts() {
    let (opts, out) = tiny_opts("plots");
    run_experiment("fig1", &opts).unwrap();
    run_experiment("plots", &opts).unwrap();
    assert!(out.join("fig1/default_total_regrets.gp").exists());
    assert!(out.join("fig2/default_kendall.gp").exists());
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn unknown_experiment_is_an_error() {
    let (opts, _) = tiny_opts("unknown");
    let err = run_experiment("fig99", &opts).unwrap_err();
    assert!(err.contains("unknown experiment"));
}

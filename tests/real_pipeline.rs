//! Cross-crate integration tests for the real-dataset pipeline
//! (Figure 10 / Table 7 machinery).

use fasea::bandit::{Exploit, LinUcb, Policy, RandomPolicy, StaticScorePolicy, ThompsonSampling};
use fasea::datagen::real::{DIM, PAPER_YES_COUNTS};
use fasea::datagen::RealDataset;
use fasea::sim::real_runner::full_knowledge_ratio;
use fasea::sim::{run_real, CuMode, RealRunConfig};

fn dataset() -> RealDataset {
    RealDataset::generate(2016)
}

#[test]
fn table7_cu_row_reproduced_exactly() {
    let d = dataset();
    for (u, &expect) in PAPER_YES_COUNTS.iter().enumerate() {
        assert_eq!(CuMode::Full.capacity(&d, u), expect as u32);
    }
    assert_eq!(CuMode::Five.capacity(&d, 0), 5);
}

#[test]
fn ucb_dominates_table7_style_cells() {
    // Run a subset of users at c_u = 5 and check the paper's ordering:
    // UCB ahead of TS and Random everywhere, and strong in absolute
    // terms for most users.
    let d = dataset();
    let mut ucb_wins = 0;
    let users = [0usize, 1, 4, 8, 12];
    for &user in &users {
        let cfg = RealRunConfig {
            user,
            cu_mode: CuMode::Five,
            rounds: 600,
            checkpoints: vec![600],
        };
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(LinUcb::new(DIM, 1.0, 2.0)),
            Box::new(ThompsonSampling::new(DIM, 1.0, 0.1, user as u64)),
            Box::new(RandomPolicy::new(user as u64 ^ 5)),
        ];
        let results = run_real(&d, &cfg, &mut policies);
        let ucb = results[0].accounting.accept_ratio();
        let ts = results[1].accounting.accept_ratio();
        let random = results[2].accounting.accept_ratio();
        assert!(ucb > random, "user {user}: UCB {ucb} <= Random {random}");
        if ucb > ts {
            ucb_wins += 1;
        }
    }
    assert!(
        ucb_wins >= 4,
        "UCB should beat TS on nearly every user (won {ucb_wins}/5)"
    );
}

#[test]
fn ucb_escapes_deadlocks_exploit_may_not() {
    // For every user: simulate both policies; wherever Exploit ends at
    // exactly 0, UCB must not (the paper's u₈/u₁₀/u₁₆ observation).
    let d = dataset();
    let mut deadlocked_users = 0;
    for user in 0..d.num_users() {
        let cfg = RealRunConfig {
            user,
            cu_mode: CuMode::Five,
            rounds: 400,
            checkpoints: vec![400],
        };
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(Exploit::new(DIM, 1.0)),
            Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        ];
        let results = run_real(&d, &cfg, &mut policies);
        let exploit_ratio = results[0].accounting.accept_ratio();
        let ucb_ratio = results[1].accounting.accept_ratio();
        if exploit_ratio == 0.0 {
            deadlocked_users += 1;
            assert!(ucb_ratio > 0.0, "user {user}: UCB also stuck at zero");
        }
    }
    // The dead-lock phenomenon is possible but not guaranteed for our
    // synthesised labels; the invariant above (UCB never joins a
    // dead-lock) is the paper's robustness claim.
    println!("Exploit dead-locked on {deadlocked_users} users");
}

#[test]
fn full_knowledge_bounds_every_policy() {
    let d = dataset();
    for &user in &[2usize, 9, 17] {
        for mode in [CuMode::Five, CuMode::Full] {
            let fk = full_knowledge_ratio(&d, user, mode);
            let cfg = RealRunConfig {
                user,
                cu_mode: mode,
                rounds: 500,
                checkpoints: vec![500],
            };
            let mut policies: Vec<Box<dyn Policy>> = vec![
                Box::new(LinUcb::new(DIM, 1.0, 2.0)),
                Box::new(RandomPolicy::new(3)),
            ];
            let results = run_real(&d, &cfg, &mut policies);
            for r in &results {
                // Accept ratio can approach but should not exceed the
                // Full Knowledge bound by more than rounding slack: FK
                // counts the best achievable simultaneous acceptance.
                assert!(
                    r.accounting.accept_ratio() <= fk + 1e-9,
                    "user {user} mode {} policy {}: {} > FK {fk}",
                    mode.label(),
                    r.name,
                    r.accounting.accept_ratio()
                );
            }
        }
    }
}

#[test]
fn online_greedy_is_feedback_oblivious_and_static() {
    let d = dataset();
    let user = 3;
    let cfg = RealRunConfig {
        user,
        cu_mode: CuMode::Five,
        rounds: 100,
        checkpoints: vec![1, 50, 100],
    };
    let mut policies: Vec<Box<dyn Policy>> = vec![Box::new(StaticScorePolicy::new(
        "Online",
        d.online_greedy_scores(user),
    ))];
    let results = run_real(&d, &cfg, &mut policies);
    let cps = &results[0].checkpoints;
    // Single-round accept ratio is constant across rounds (the paper
    // reports its single-round rather than accumulative ratio for this
    // reason): cumulative ratio at every checkpoint is identical.
    assert!((cps[0].1 - cps[1].1).abs() < 1e-12);
    assert!((cps[1].1 - cps[2].1).abs() < 1e-12);
}

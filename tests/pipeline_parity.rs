//! Pipelined round-engine acceptance suite, driven end-to-end through
//! the `fasea` facade:
//!
//! 1. **Depth parity** — for every policy the repo ships (all seven),
//!    both arrangement oracles, and churn on/off, a [`RoundPipeline`]
//!    run at depth ∈ {1, 2, 4, 8} must leave the durable service in a
//!    state byte-identical to the strictly sequential loop: capacities,
//!    regret accounting, and the policy's full saved state *including
//!    its RNG position*. In-order prefetching must also never recompute
//!    (every stash hits).
//! 2. **Commit-queue overlap** — the same parity holds when feedback
//!    records genuinely ride the group-commit queue while the next
//!    round's scores are prefetched.
//! 3. **Sharded backends** — a depth-4 pipeline over the N-shard
//!    coordinator (N ∈ {1, 2, 4}) equals the sequential single-actor
//!    run.
//! 4. **Kill matrix** — a depth-4 pipelined run's WAL is torn at every
//!    record boundary; every crash image recovers and a pipelined
//!    continuation converges byte-identically to the uninterrupted
//!    reference.
//! 5. **Serving crash with rounds in flight** — a `pipeline_depth = 4`
//!    server dies with the head proposal logged *and* a future round
//!    granted with a buffered proposal (≥ 2 rounds in flight). Recovery
//!    must lose no acked round, surface the pending proposal, and the
//!    continuation must match the sequential in-process reference.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use fasea::bandit::{
    EpsilonGreedy, Exploit, LinUcb, Opt, OracleOptions, Policy, RandomPolicy, StaticScorePolicy,
    ThompsonSampling,
};
use fasea::core::{ChurnSchedule, EventId};
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::serve::{ClientConfig, ServeClient, Server, ServerConfig};
use fasea::sim::{ArrangementService, DurableOptions, RoundPipeline};
use fasea::store::{wal, FaultFile};
use fasea::{DurableArrangementService, FsyncPolicy, ShardedArrangementService};

const DIM: usize = 3;
const NUM_EVENTS: usize = 12;

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: NUM_EVENTS,
        dim: DIM,
        seed: 0x0009_717E_5EED,
        ..SyntheticConfig::default()
    })
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fasea-pipe-par-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// All seven policies, fresh per call so two runs start identically.
fn all_policies() -> Vec<(&'static str, Box<dyn Policy>)> {
    let w = workload();
    let static_scores: Vec<f64> = (0..NUM_EVENTS)
        .map(|v| ((v * 37) % 23) as f64 / 23.0)
        .collect();
    vec![
        (
            "ucb",
            Box::new(LinUcb::new(DIM, 1.0, 2.0)) as Box<dyn Policy>,
        ),
        (
            "ts",
            Box::new(ThompsonSampling::new(DIM, 1.0, 0.1, 0xA11CE)),
        ),
        (
            "egreedy",
            Box::new(EpsilonGreedy::new(DIM, 1.0, 0.1, 0xB0B)),
        ),
        ("exploit", Box::new(Exploit::new(DIM, 1.0))),
        ("opt", Box::new(Opt::new(w.model.clone()))),
        ("random", Box::new(RandomPolicy::new(0xC0DE))),
        (
            "static",
            Box::new(StaticScorePolicy::new("static", static_scores)),
        ),
    ]
}

fn policy_named(name: &str) -> Box<dyn Policy> {
    all_policies()
        .into_iter()
        .find(|(n, _)| *n == name)
        .map(|(_, p)| p)
        .unwrap()
}

fn opts() -> DurableOptions {
    DurableOptions::new()
        .with_segment_bytes(u64::MAX)
        .with_fsync(FsyncPolicy::Never)
        .with_snapshots_kept(1)
}

/// Everything that must match between a pipelined and a sequential run.
#[derive(Debug, Clone, PartialEq)]
struct StateDigest {
    t: u64,
    remaining: Vec<u32>,
    arranged: u64,
    rewards: u64,
    has_pending: bool,
    policy_state: Vec<u8>,
}

fn digest_of(svc: &ArrangementService, t: u64, has_pending: bool) -> StateDigest {
    StateDigest {
        t,
        remaining: svc.remaining().to_vec(),
        arranged: svc.accounting().total_arranged(),
        rewards: svc.accounting().total_rewards(),
        has_pending,
        policy_state: svc.policy().save_state(),
    }
}

fn digest_single(svc: &DurableArrangementService) -> StateDigest {
    digest_of(svc.service(), svc.rounds_completed(), svc.has_pending())
}

fn digest_sharded(svc: &ShardedArrangementService) -> StateDigest {
    digest_of(svc.service(), svc.rounds_completed(), svc.has_pending())
}

/// CRN acceptance for round `t` — identical no matter which engine
/// executes the round.
fn accepts_for(w: &SyntheticWorkload, t: u64, arranged: &[EventId]) -> Vec<bool> {
    let coins = fasea::stats::CoinStream::new(0xFEED_C0DE);
    let arrival = w.arrivals.arrival(t);
    arranged
        .iter()
        .map(|&v| {
            coins.uniform(t, v.index() as u64) < w.model.accept_probability(&arrival.contexts, v)
        })
        .collect()
}

/// The strictly sequential reference loop (churn optional).
fn run_sequential(
    svc: &mut DurableArrangementService,
    w: &SyntheticWorkload,
    churn: Option<&ChurnSchedule>,
    upto: u64,
) {
    while svc.rounds_completed() < upto {
        let t = svc.rounds_completed();
        let a = if let Some(p) = svc.pending_arrangement() {
            p.clone()
        } else {
            if let Some(churn) = churn {
                for action in churn.actions_at(t) {
                    svc.lifecycle(action.event, action.capacity).unwrap();
                }
            }
            svc.propose(&w.arrivals.arrival(t)).unwrap()
        };
        let accepts = accepts_for(w, t, a.events());
        svc.feedback(&accepts).unwrap();
    }
}

/// Drives `svc` through the pipelined engine and returns its stats.
fn run_pipelined<B: fasea::sim::PipelinedBackend>(
    svc: &mut B,
    w: &SyntheticWorkload,
    churn: Option<&ChurnSchedule>,
    depth: usize,
    upto: u64,
) -> fasea::sim::PipelineStats {
    let mut pipe = RoundPipeline::new(depth);
    pipe.run(
        svc,
        upto,
        |t| w.arrivals.arrival(t),
        |t, a| accepts_for(w, t, a.events()),
        churn,
    )
    .unwrap();
    pipe.stats()
}

/// Deterministic churn with several re-plans inside every horizon used
/// below.
fn churn_schedule(upto: u64) -> ChurnSchedule {
    let churn = ChurnSchedule::generate(workload().instance.capacities(), upto, 3, 0x5);
    assert!(!churn.actions().is_empty());
    churn
}

#[test]
fn pipeline_depths_bit_equal_for_every_policy_oracle_and_churn() {
    const ROUNDS: u64 = 48;
    let w = workload();
    let churn = churn_schedule(ROUNDS);
    for (name, _) in all_policies() {
        for (oracle_name, oracle) in [
            ("greedy", OracleOptions::greedy()),
            ("tabu", OracleOptions::tabu()),
        ] {
            for churned in [false, true] {
                let schedule = churned.then_some(&churn);
                let cell = format!("{name}/{oracle_name}/churn={churned}");
                let ref_dir = tmp(&format!("depth-ref-{name}-{oracle_name}-{churned}"));
                let reference = {
                    let mut svc = DurableArrangementService::open(
                        &ref_dir,
                        w.instance.clone(),
                        policy_named(name),
                        opts().with_oracle(oracle),
                    )
                    .unwrap();
                    run_sequential(&mut svc, &w, schedule, ROUNDS);
                    let d = digest_single(&svc);
                    drop(svc);
                    fs::remove_dir_all(&ref_dir).unwrap();
                    d
                };

                for depth in [1usize, 2, 4, 8] {
                    let dir = tmp(&format!("depth-{name}-{oracle_name}-{churned}-{depth}"));
                    let mut svc = DurableArrangementService::open(
                        &dir,
                        w.instance.clone(),
                        policy_named(name),
                        opts().with_oracle(oracle),
                    )
                    .unwrap();
                    let stats = run_pipelined(&mut svc, &w, schedule, depth, ROUNDS);
                    assert_eq!(
                        digest_single(&svc),
                        reference,
                        "{cell}: depth {depth} diverged from the sequential run"
                    );
                    assert_eq!(
                        stats.prefetch_recomputes, 0,
                        "{cell}: in-order prefetch must never go stale"
                    );
                    if depth >= 2 {
                        assert_eq!(
                            stats.prefetch_hits,
                            ROUNDS - 1,
                            "{cell}: every round after the first must hit its stash"
                        );
                    } else {
                        assert_eq!(stats.prefetch_hits, 0, "{cell}: depth 1 never prefetches");
                    }
                    drop(svc);
                    fs::remove_dir_all(&dir).unwrap();
                }
            }
        }
    }
}

/// Feedback records genuinely ride the group-commit queue while the
/// next round's scores are prefetched — the overlap the pipeline
/// exists for — and the result is still bit-equal.
#[test]
fn pipelined_group_commit_overlap_is_bit_equal() {
    const ROUNDS: u64 = 40;
    let w = workload();
    let churn = churn_schedule(ROUNDS);
    let ref_dir = tmp("gc-ref");
    let reference = {
        let mut svc = DurableArrangementService::open(
            &ref_dir,
            w.instance.clone(),
            policy_named("ts"),
            opts(),
        )
        .unwrap();
        run_sequential(&mut svc, &w, Some(&churn), ROUNDS);
        let d = digest_single(&svc);
        drop(svc);
        fs::remove_dir_all(&ref_dir).unwrap();
        d
    };
    let dir = tmp("gc-pipe");
    let mut svc = DurableArrangementService::open(
        &dir,
        w.instance.clone(),
        policy_named("ts"),
        opts().with_group_commit(true),
    )
    .unwrap();
    let stats = run_pipelined(&mut svc, &w, Some(&churn), 4, ROUNDS);
    assert_eq!(
        digest_single(&svc),
        reference,
        "group-commit pipelined run diverged"
    );
    assert_eq!(stats.prefetch_hits, ROUNDS - 1);
    assert_eq!(stats.prefetch_recomputes, 0);
    svc.close().unwrap();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipelined_sharded_backend_matches_sequential_single_actor() {
    const ROUNDS: u64 = 48;
    let w = workload();
    let churn = churn_schedule(ROUNDS);
    for name in ["ucb", "ts"] {
        let ref_dir = tmp(&format!("shard-ref-{name}"));
        let reference = {
            let mut svc = DurableArrangementService::open(
                &ref_dir,
                w.instance.clone(),
                policy_named(name),
                opts(),
            )
            .unwrap();
            run_sequential(&mut svc, &w, Some(&churn), ROUNDS);
            let d = digest_single(&svc);
            drop(svc);
            fs::remove_dir_all(&ref_dir).unwrap();
            d
        };
        for shards in [1usize, 2, 4] {
            let dir = tmp(&format!("shard-pipe-{name}-{shards}"));
            let mut svc = ShardedArrangementService::open(
                &dir,
                w.instance.clone(),
                policy_named(name),
                opts(),
                shards,
            )
            .unwrap();
            let stats = run_pipelined(&mut svc, &w, Some(&churn), 4, ROUNDS);
            assert_eq!(
                digest_sharded(&svc),
                reference,
                "{name}: depth-4 pipeline over {shards} shards diverged"
            );
            assert_eq!(stats.prefetch_recomputes, 0, "{name}/{shards}");
            svc.close().unwrap();
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

const KILL_ROUNDS: u64 = 24;
const KILL_END: u64 = 40;

/// Tears a depth-4 pipelined run's WAL at every record boundary; every
/// crash image must recover and a pipelined continuation must converge
/// byte-identically to the uninterrupted sequential reference.
#[test]
fn pipelined_kill_matrix_recovers_byte_identically() {
    let w = workload();
    let churn = churn_schedule(KILL_END);

    // The uninterrupted sequential reference at the final horizon.
    let reference_final = {
        let dir = tmp("kill-seq-ref");
        let mut svc =
            DurableArrangementService::open(&dir, w.instance.clone(), policy_named("ts"), opts())
                .unwrap();
        run_sequential(&mut svc, &w, Some(&churn), KILL_END);
        let d = digest_single(&svc);
        drop(svc);
        fs::remove_dir_all(&dir).unwrap();
        d
    };

    // Crash image: a depth-4 pipelined run synced at KILL_ROUNDS, then
    // dropped without close.
    let base = tmp("kill-base");
    let fingerprint = {
        let mut svc =
            DurableArrangementService::open(&base, w.instance.clone(), policy_named("ts"), opts())
                .unwrap();
        run_pipelined(&mut svc, &w, Some(&churn), 4, KILL_ROUNDS);
        svc.sync().unwrap();
        svc.fingerprint()
    };

    let (records, boundaries, torn) = wal::scan(&base, fingerprint).unwrap();
    assert!(torn.is_none());
    assert!(records.len() >= 2 * KILL_ROUNDS as usize);
    let scratch = tmp("kill-scratch");
    for (k, (segment, offset)) in boundaries.iter().enumerate() {
        let _ = fs::remove_dir_all(&scratch);
        fs::create_dir_all(&scratch).unwrap();
        for entry in fs::read_dir(&base).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), scratch.join(entry.file_name())).unwrap();
        }
        FaultFile::new(scratch.join(segment.file_name().unwrap()))
            .torn_write(*offset)
            .unwrap();
        let mut svc = DurableArrangementService::open(
            &scratch,
            w.instance.clone(),
            policy_named("ts"),
            opts(),
        )
        .unwrap_or_else(|e| panic!("cut at boundary {k}: recovery failed: {e}"));
        assert!(
            svc.rounds_completed() <= KILL_ROUNDS,
            "cut at boundary {k}: recovered beyond the crash image"
        );
        run_pipelined(&mut svc, &w, Some(&churn), 4, KILL_END);
        assert_eq!(
            digest_single(&svc),
            reference_final,
            "cut at boundary {k}: pipelined continuation diverged"
        );
        drop(svc);
    }
    fs::remove_dir_all(&base).unwrap();
    let _ = fs::remove_dir_all(&scratch);
}

// ---- serving crash with concurrent rounds in flight ----

fn serve_config() -> ServerConfig {
    ServerConfig {
        stats_interval: None,
        pipeline_depth: 4,
        claim_wait_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

fn open_serve_service(dir: &std::path::Path) -> DurableArrangementService {
    DurableArrangementService::open(
        dir,
        workload().instance,
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        DurableOptions::new().with_fsync(FsyncPolicy::Never),
    )
    .unwrap()
}

fn drive_wire(addr: &str, rounds: u64, fed: &AtomicU64) {
    let w = workload();
    let mut client = ServeClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
    loop {
        let claimed = client.claim().unwrap();
        if claimed.t >= rounds {
            client.release().unwrap();
            return;
        }
        let t = claimed.t;
        let arrival = w.arrivals.arrival(t);
        let arrangement = match claimed.pending {
            Some(pending) => pending,
            None => {
                client
                    .propose(
                        arrival.capacity,
                        w.instance.num_events() as u32,
                        w.instance.dim() as u32,
                        arrival.contexts.as_slice().to_vec(),
                    )
                    .unwrap()
                    .1
            }
        };
        let events: Vec<EventId> = arrangement.iter().map(|&v| EventId(v as usize)).collect();
        let accepts = accepts_for(&w, t, &events);
        client.feedback(&accepts).unwrap();
        fed.fetch_add(1, Ordering::Relaxed);
    }
}

fn wire_reference(rounds: u64) -> (u64, u64, u64) {
    let w = workload();
    let mut svc = ArrangementService::new(w.instance.clone(), Box::new(LinUcb::new(DIM, 1.0, 2.0)));
    for t in 0..rounds {
        let arrival = w.arrivals.arrival(t);
        let arrangement = svc.propose(&arrival).unwrap();
        let accepts = accepts_for(&w, t, arrangement.events());
        svc.feedback(&accepts).unwrap();
    }
    (
        svc.rounds_completed(),
        svc.accounting().total_arranged(),
        svc.accounting().total_rewards(),
    )
}

/// A `pipeline_depth = 4` server dies with ≥ 2 rounds in flight: the
/// head round's proposal is durably logged, and a *future* round is
/// granted with a buffered (speculatively scored) proposal that never
/// reached the WAL. Recovery must lose no acked round, hand the
/// pending proposal to the first claimant, drop the never-executed
/// future round without a trace, and the continuation must equal the
/// sequential in-process reference.
#[test]
fn pipelined_server_crash_with_rounds_in_flight_loses_no_acked_round() {
    const ROUNDS: u64 = 90;
    const CRASH_AT: u64 = 40;
    let dir = tmp("serve-crash");
    fs::create_dir_all(&dir).unwrap();
    let w = workload();

    // Phase 1: drive to the crash round, then strand two rounds.
    {
        let handle =
            Server::spawn(open_serve_service(&dir), "127.0.0.1:0", serve_config()).unwrap();
        let addr = handle.local_addr().to_string();
        let fed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| drive_wire(&addr, CRASH_AT, &fed));
            }
        });
        assert_eq!(fed.load(Ordering::Relaxed), CRASH_AT);

        // Head round CRASH_AT: proposal logged, feedback never sent.
        let mut head = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
        let claimed = head.claim().unwrap();
        assert_eq!(claimed.t, CRASH_AT);
        let arrival = w.arrivals.arrival(CRASH_AT);
        head.propose(
            arrival.capacity,
            w.instance.num_events() as u32,
            w.instance.dim() as u32,
            arrival.contexts.as_slice().to_vec(),
        )
        .unwrap();

        // Future round CRASH_AT + 1: granted concurrently, its proposal
        // buffered in the actor (LinUcb scores it speculatively) but
        // never executed — the second in-flight round at crash time.
        let mut future = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
        let claimed = future.claim().unwrap();
        assert_eq!(
            claimed.t,
            CRASH_AT + 1,
            "depth-4 server must overlap grants"
        );
        let future_thread = std::thread::spawn(move || {
            let arrival = workload().arrivals.arrival(CRASH_AT + 1);
            // Withheld until promotion, which never comes: the reply is
            // an error once the server drains. Either way the proposal
            // was buffered first, which is what the crash image needs.
            let _ = future.propose(
                arrival.capacity,
                NUM_EVENTS as u32,
                DIM as u32,
                arrival.contexts.as_slice().to_vec(),
            );
        });
        // Let the actor buffer (and speculate on) the future proposal.
        std::thread::sleep(Duration::from_millis(300));

        drop(head);
        handle.initiate_shutdown();
        let report = handle.join();
        assert!(report.close.error.is_none());
        future_thread.join().unwrap();
    }

    // Phase 2: recovery. No acked round lost, the pending head proposal
    // survives, the buffered future round left no trace.
    let handle = Server::spawn(open_serve_service(&dir), "127.0.0.1:0", serve_config()).unwrap();
    let addr = handle.local_addr().to_string();
    let info = ServeClient::connect(addr.clone(), ClientConfig::default())
        .unwrap()
        .info()
        .unwrap();
    assert_eq!(info.rounds_completed, CRASH_AT, "an acked round was lost");
    assert!(
        info.has_pending,
        "the logged proposal must survive the crash"
    );

    let fed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| drive_wire(&addr, ROUNDS, &fed));
        }
    });
    assert_eq!(fed.load(Ordering::Relaxed), ROUNDS - CRASH_AT);

    let mut client = ServeClient::connect(addr.clone(), ClientConfig::default()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        (
            stats.rounds_completed,
            stats.total_arranged,
            stats.total_rewards
        ),
        wire_reference(ROUNDS),
        "pipelined crash + resume must equal the sequential run"
    );

    handle.initiate_shutdown();
    assert!(handle.join().close.error.is_none());
    let _ = fs::remove_dir_all(&dir);
}

//! Quickstart: arrange events for 2 000 online users and watch the
//! bandit policies learn.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fasea::bandit::{EpsilonGreedy, Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::sim::{run_simulation, AsciiTable, RunConfig};

fn main() {
    // A moderate instance: 100 events, d = 10 features, 25% of event
    // pairs conflicting, capacities ~ N(200, 100) — the paper's default
    // setting scaled down for a quick run.
    let horizon = 2_000;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 100,
        dim: 10,
        horizon,
        ..Default::default()
    });
    println!(
        "instance: |V| = {}, d = {}, cr = {:.2}, total capacity = {}",
        workload.instance.num_events(),
        workload.instance.dim(),
        workload.instance.conflicts().conflict_ratio(),
        workload.instance.total_capacity(),
    );

    // The paper's five algorithms (λ=1, α=2, δ=0.1, ε=0.1).
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinUcb::new(10, 1.0, 2.0)),
        Box::new(ThompsonSampling::new(10, 1.0, 0.1, 1)),
        Box::new(EpsilonGreedy::new(10, 1.0, 0.1, 2)),
        Box::new(Exploit::new(10, 1.0)),
        Box::new(RandomPolicy::new(3)),
    ];

    let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));

    let mut table = AsciiTable::new(&[
        "Algorithm",
        "Total rewards",
        "Accept ratio",
        "Total regret",
        "us/round",
    ]);
    for p in result
        .policies
        .iter()
        .chain(std::iter::once(&result.reference))
    {
        table.row(vec![
            p.name.clone(),
            p.accounting.total_rewards().to_string(),
            format!("{:.3}", p.accounting.accept_ratio()),
            p.accounting
                .regret_vs(&result.reference.accounting)
                .to_string(),
            format!("{:.1}", p.avg_round_secs * 1e6),
        ]);
    }
    println!("\nafter {horizon} users:\n{}", table.render());
    println!(
        "expected shape (paper, Figure 1): UCB ≈ Exploit > eGreedy ≫ TS > Random, \
         with TS only beating Random."
    );
}

//! Remark 2 extension: time-varying event sets `V_t` — a weekday-style
//! calendar where each round only part of the catalogue is on offer.
//!
//! ```text
//! cargo run --release --example rotating_events
//! ```

use fasea::bandit::{Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea::datagen::{RotatingSchedule, SyntheticConfig, SyntheticWorkload};
use fasea::sim::rotating::visibility;
use fasea::sim::{run_rotating, AsciiTable};

fn main() {
    let horizon = 4000;
    let dim = 8;
    let num_events = 70;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events,
        dim,
        horizon,
        ..Default::default()
    });

    // A 7-slot "week", 50 rounds per day, 15% of events always bookable.
    let schedule = RotatingSchedule::new(num_events, 7, 50, 0.15, 99);
    let mean_visibility: f64 = (0..350).map(|t| visibility(&schedule, t)).sum::<f64>() / 350.0;
    println!(
        "calendar: 7 slots x 50 rounds, mean visibility {:.0}% of {} events\n",
        mean_visibility * 100.0,
        num_events
    );

    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinUcb::new(dim, 1.0, 2.0)),
        Box::new(ThompsonSampling::new(dim, 1.0, 0.1, 1)),
        Box::new(Exploit::new(dim, 1.0)),
        Box::new(RandomPolicy::new(2)),
    ];
    let results = run_rotating(&workload, &schedule, &mut policies, horizon, 7);

    let mut table = AsciiTable::new(&["Algorithm", "Total rewards", "Accept ratio", "Regret"]);
    for r in &results {
        table.row(vec![
            r.name.clone(),
            r.accounting.total_rewards().to_string(),
            format!("{:.3}", r.accounting.accept_ratio()),
            (r.opt_rewards as i64 - r.accounting.total_rewards() as i64).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the FASEA ordering (UCB/Exploit > TS > Random) survives the rotating \
         catalogue: masking availability only shrinks each round's choice set."
    );
}

//! Extending FASEA with your own policy.
//!
//! The [`Policy`] trait is the whole integration surface: implement the
//! batched `score_into` (one score per event, written into the reusable
//! [`ScoreWorkspace`]) plus `observe`, expose a workspace, and your
//! strategy runs in the same harness as the paper's algorithms — with
//! the same metrics, regret reference, common-random-number feedback,
//! and the allocation-free `select_into` hot path for free. This example
//! adds **Boltzmann exploration** (softmax over point estimates, a
//! classic alternative the paper does not evaluate) and races it against
//! UCB and Exploit.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use fasea::bandit::{Exploit, LinUcb, Policy, RidgeEstimator, ScoreWorkspace, SelectionView};
use fasea::core::{Arrangement, ContextMatrix, EventId, Feedback};
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::sim::{run_simulation, AsciiTable, RunConfig};
use rand::Rng as _;

/// Softmax (Boltzmann) exploration over ridge point estimates: each
/// event's score is perturbed with Gumbel noise scaled by a temperature
/// that cools as observations accumulate, so early rounds explore and
/// late rounds exploit.
struct Boltzmann {
    estimator: RidgeEstimator,
    temperature: f64,
    rng: fasea::stats::Rng,
    ws: ScoreWorkspace,
}

impl Boltzmann {
    fn new(dim: usize, lambda: f64, temperature: f64, seed: u64) -> Self {
        Boltzmann {
            estimator: RidgeEstimator::new(dim, lambda),
            temperature,
            rng: fasea::stats::rng_from_seed(seed),
            ws: ScoreWorkspace::new(),
        }
    }
}

impl Policy for Boltzmann {
    fn name(&self) -> &'static str {
        "Boltzmann"
    }

    /// The batched scoring pass. `ws.scores_mut(n)` hands back a warm
    /// buffer; `theta_hat()` is cached between observations, so a
    /// steady-state round performs no heap allocation at all.
    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        let scores = ws.scores_mut(n);
        // Cool the temperature with observations: tau_t = tau / sqrt(1 + obs).
        let tau = self.temperature / (1.0 + self.estimator.observations() as f64).sqrt();
        let theta = self.estimator.theta_hat();
        for (v, s) in scores.iter_mut().enumerate() {
            let x = view.contexts.context(EventId(v));
            let point = fasea::linalg::dot_slices(x, theta.as_slice());
            // Adding Gumbel(0, tau) noise and taking the top-k is
            // equivalent to sampling without replacement from the
            // softmax with temperature tau (the Gumbel-max trick).
            let u: f64 = self.rng.gen::<f64>().max(1e-300);
            let gumbel = -(-u.ln()).ln();
            *s = point + tau * gumbel;
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(
        &mut self,
        _t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    ) {
        for (v, accepted) in feedback.zip(arrangement) {
            self.estimator
                .observe(contexts.context(v), if accepted { 1.0 } else { 0.0 })
                .expect("Boltzmann: estimator update failed");
        }
    }

    fn state_bytes(&self) -> usize {
        self.estimator.state_bytes() + self.ws.state_bytes()
    }
}

fn main() {
    let horizon = 5_000;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 100,
        dim: 10,
        horizon,
        ..Default::default()
    });

    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinUcb::new(10, 1.0, 2.0)),
        Box::new(Exploit::new(10, 1.0)),
        Box::new(Boltzmann::new(10, 1.0, 0.5, 42)),
    ];
    let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));

    let mut table = AsciiTable::new(&["Algorithm", "Total rewards", "Regret vs OPT"]);
    for p in &result.policies {
        table.row(vec![
            p.name.clone(),
            p.accounting.total_rewards().to_string(),
            p.accounting
                .regret_vs(&result.reference.accounting)
                .to_string(),
        ]);
    }
    println!("custom policy vs the paper's algorithms ({horizon} users):\n");
    println!("{}", table.render());
}

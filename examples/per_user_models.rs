//! Remark 1 extension: individual θ's per recurring user, shared event
//! capacities.
//!
//! Sweeps population heterogeneity and races two learner architectures:
//! one shared UCB model vs one UCB model per user. The paper's Remark 1
//! predicts the crossover: a shared learner wins while users are
//! similar (more data per model), per-user learners win once tastes
//! diverge (the shared θ̂ converges to a useless average).
//!
//! ```text
//! cargo run --release --example per_user_models
//! ```

use fasea::bandit::{LinUcb, Policy};
use fasea::datagen::{MultiUserConfig, MultiUserWorkload, SyntheticConfig};
use fasea::sim::{run_multi_user, AsciiTable, LearnerArchitecture};

fn main() {
    let horizon = 4000;
    let dim = 8;
    let mut table = AsciiTable::new(&[
        "heterogeneity",
        "mean cos-sim",
        "shared UCB",
        "per-user UCB",
        "OPT",
    ]);

    for &h in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let workload = MultiUserWorkload::generate(MultiUserConfig {
            base: SyntheticConfig {
                num_events: 60,
                dim,
                horizon,
                ..Default::default()
            },
            population: 8,
            heterogeneity: h,
        });
        let shared = run_multi_user(
            &workload,
            LearnerArchitecture::Shared(Box::new(LinUcb::new(dim, 1.0, 2.0))),
            horizon,
            42,
        );
        let per_user = run_multi_user(
            &workload,
            LearnerArchitecture::PerUser(Box::new(move |_u| {
                Box::new(LinUcb::new(dim, 1.0, 2.0)) as Box<dyn Policy>
            })),
            horizon,
            42,
        );
        table.row(vec![
            format!("{h:.2}"),
            format!("{:.3}", workload.mean_pairwise_similarity()),
            shared.accounting.total_rewards().to_string(),
            per_user.accounting.total_rewards().to_string(),
            shared.opt_rewards.to_string(),
        ]);
    }

    println!("total rewards after {horizon} arrivals, 8 recurring users:\n");
    println!("{}", table.render());
    println!(
        "expected crossover: shared wins near heterogeneity 0 (8x data per model), \
         per-user wins near 1 (no single θ fits everyone)."
    );
}

//! Crash-and-reopen walkthrough for [`fasea::DurableArrangementService`].
//!
//! The demo runs the FASEA loop against a WAL-backed service, "crashes"
//! it twice — once between rounds and once with a proposal outstanding
//! — and reopens it each time, printing what recovery found. At the end
//! it re-runs the same seed without any crash and shows that the regret
//! accounting is identical: durability is invisible to the learner.
//!
//! ```text
//! cargo run --release --example durable_service
//! ```

use fasea::bandit::{Policy, ThompsonSampling};
use fasea::core::{
    Arrangement, ConflictGraph, ContextMatrix, ProblemInstance, ProblemMode, UserArrival,
};
use fasea::sim::DurableOptions;
use fasea::{DurableArrangementService, FsyncPolicy};
use std::path::Path;

const NUM_EVENTS: usize = 10;
const DIM: usize = 4;
const SEED: u64 = 42;

fn instance() -> ProblemInstance {
    ProblemInstance::new(
        vec![40; NUM_EVENTS],
        ConflictGraph::from_pairs(NUM_EVENTS, &[(0, 1), (4, 9)]),
        DIM,
        ProblemMode::Fasea,
    )
}

fn policy() -> Box<dyn Policy> {
    Box::new(ThompsonSampling::new(DIM, 1.0, 0.1, SEED))
}

fn options() -> DurableOptions {
    DurableOptions::new()
        .with_segment_bytes(16 << 10) // small segments so rotation shows up
        .with_fsync(FsyncPolicy::EveryN(8))
        .with_snapshots_kept(2)
}

fn arrival(round: u64) -> UserArrival {
    let mut ctx = ContextMatrix::from_fn(NUM_EVENTS, DIM, |v, j| {
        (((round as usize * 11 + v * 3 + j * 5) % 13) as f64) / 13.0 - 0.3
    });
    ctx.normalize_rows();
    UserArrival::new(3, ctx)
}

/// The hidden acceptance rule standing in for real users.
fn accepts(round: u64, a: &Arrangement) -> Vec<bool> {
    a.iter()
        .map(|v| (round as usize + v.index()).is_multiple_of(2))
        .collect()
}

fn open(dir: &Path) -> DurableArrangementService {
    DurableArrangementService::open(dir, instance(), policy(), options()).expect("open")
}

fn run_until(svc: &mut DurableArrangementService, upto: u64) {
    while svc.rounds_completed() < upto {
        let round = svc.rounds_completed();
        let a = match svc.pending_arrangement() {
            Some(p) => p.clone(), // a recovered mid-round proposal
            None => svc.propose(&arrival(round)).expect("propose"),
        };
        svc.feedback(&accepts(round, &a)).expect("feedback");
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("fasea-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!("durable service in {}", dir.display());

    // Phase 1: 30 rounds, snapshot, then "crash" (drop without closing).
    {
        let mut svc = open(&dir);
        run_until(&mut svc, 30);
        let snap = svc.snapshot().expect("snapshot");
        println!(
            "ran 30 rounds, snapshot at {} (WAL seq {})",
            snap.file_name().unwrap().to_string_lossy(),
            svc.next_seq()
        );
        run_until(&mut svc, 45);
        println!("ran to round 45, crashing between rounds…");
    }

    // Phase 2: recover, run on, crash again mid-proposal.
    {
        let mut svc = open(&dir);
        println!(
            "reopened: {} rounds recovered, pending proposal: {}",
            svc.rounds_completed(),
            svc.has_pending()
        );
        run_until(&mut svc, 60);
        let a = svc.propose(&arrival(60)).expect("propose");
        println!(
            "proposed {:?} for round 60, crashing before feedback…",
            a.events()
        );
    }

    // Phase 3: the outstanding proposal survives the crash — FASEA
    // arrangements are irrevocable, so recovery re-surfaces it instead
    // of silently drawing a new one.
    let final_acc = {
        let mut svc = open(&dir);
        let pending = svc.pending_arrangement().expect("pending survived").clone();
        println!(
            "reopened: round {} proposal {:?} recovered as pending",
            svc.rounds_completed(),
            pending.events()
        );
        svc.feedback(&accepts(60, &pending)).expect("feedback");
        run_until(&mut svc, 100);
        *svc.service().accounting()
    };
    println!(
        "crashed run finished: {} rounds, {} arranged, {} accepted (ratio {:.3})",
        final_acc.rounds(),
        final_acc.total_arranged(),
        final_acc.total_rewards(),
        final_acc.accept_ratio()
    );

    // Control: same seed, no crashes, fresh directory.
    let control_dir = dir.join("control");
    let control_acc = {
        let mut svc = open(&control_dir);
        run_until(&mut svc, 100);
        *svc.service().accounting()
    };
    assert_eq!(
        final_acc, control_acc,
        "crash-recovered accounting must match the uninterrupted run"
    );
    println!("uninterrupted control run matches exactly — recovery is lossless.");

    let _ = std::fs::remove_dir_all(&dir);
}

//! The serving layer end to end, in one process: spin up a
//! [`fasea::serve::Server`] on a loopback port, drive it with three
//! concurrent client sessions that share the round stream via
//! `CLAIM`/`PROPOSE`/`FEEDBACK`, then print the server's `STATS`
//! snapshot and shut it down gracefully.
//!
//! Feedback uses common random numbers keyed on `(t, v)`, so the final
//! accounting is the same no matter how the three sessions interleave.
//!
//! ```text
//! cargo run --release --example network_service
//! ```

use fasea::bandit::LinUcb;
use fasea::core::EventId;
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::serve::{ClientConfig, ServeClient, Server, ServerConfig};
use fasea::sim::DurableOptions;
use fasea::stats::CoinStream;
use fasea::{DurableArrangementService, FsyncPolicy};

const SEED: u64 = 7;
const NUM_EVENTS: usize = 12;
const DIM: usize = 4;
const ROUNDS: u64 = 120;
const CLIENTS: usize = 3;

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        num_events: NUM_EVENTS,
        dim: DIM,
        seed: SEED,
        ..SyntheticConfig::default()
    })
}

fn main() {
    let dir = std::env::temp_dir().join(format!("fasea-network-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create state dir");

    let svc = DurableArrangementService::open(
        &dir,
        workload().instance,
        Box::new(LinUcb::new(DIM, 1.0, 2.0)),
        // demo: throughput over durability
        DurableOptions::new().with_fsync(FsyncPolicy::Never),
    )
    .expect("open durable service");

    // Port 0: the OS picks a free port; the handle reports it.
    let handle = Server::spawn(svc, "127.0.0.1:0", ServerConfig::default()).expect("spawn server");
    let addr = handle.local_addr().to_string();
    println!("server listening on {addr}");

    std::thread::scope(|s| {
        for id in 0..CLIENTS {
            let addr = addr.clone();
            s.spawn(move || drive_session(id, &addr));
        }
    });

    let mut control =
        ServeClient::connect(addr, ClientConfig::default()).expect("control connection");
    let stats = control.stats().expect("STATS");
    println!("\n--- server STATS after {ROUNDS} rounds ---");
    print!("{}", stats.render());
    assert_eq!(stats.rounds_completed, ROUNDS);

    control.shutdown_server().expect("SHUTDOWN");
    let report = handle.join();
    println!(
        "\nserver drained: rounds={} final snapshot={:?}",
        report.close.rounds_completed,
        report.close.snapshot.as_deref()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One session: claim rounds until the shared counter reaches the
/// target, proposing the deterministic arrival for each granted `t` and
/// answering with CRN feedback.
fn drive_session(id: usize, addr: &str) {
    let workload = workload();
    let coins = CoinStream::new(SEED ^ 0xFEED);
    let mut client =
        ServeClient::connect(addr.to_string(), ClientConfig::default()).expect("connect");
    let info = client.info().expect("handshake info");
    println!(
        "client {id}: connected (fingerprint={:#018x}, {} events, d={})",
        info.fingerprint, info.num_events, info.dim
    );
    let mut served = 0u64;
    loop {
        let claimed = client.claim().expect("CLAIM");
        if claimed.t >= ROUNDS {
            client.release().expect("RELEASE");
            break;
        }
        let t = claimed.t;
        let arrival = workload.arrivals.arrival(t);
        let arrangement = match claimed.pending {
            Some(pending) => pending,
            None => {
                client
                    .propose(
                        arrival.capacity,
                        NUM_EVENTS as u32,
                        DIM as u32,
                        arrival.contexts.as_slice().to_vec(),
                    )
                    .expect("PROPOSE")
                    .1
            }
        };
        let accepts: Vec<bool> = arrangement
            .iter()
            .map(|&v| {
                coins.uniform(t, v as u64)
                    < workload
                        .model
                        .accept_probability(&arrival.contexts, EventId(v as usize))
            })
            .collect();
        client.feedback(&accepts).expect("FEEDBACK");
        served += 1;
    }
    println!("client {id}: served {served} rounds");
}

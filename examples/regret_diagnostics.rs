//! Why does TS lose under FASEA? A diagnostics run.
//!
//! Tracks the **elliptical potential** — the quantity linear-bandit
//! regret theory bounds regret with — for UCB and TS side by side. Both
//! policies' potentials obey the same `2·d·log(1 + n/(λd))` ceiling, so
//! TS is not under-exploring; its problem is the noise its posterior
//! sample injects into *every* event score each round. Empirical
//! regret therefore diverges from the potential for TS but not for UCB.
//!
//! ```text
//! cargo run --release --example regret_diagnostics
//! ```

use fasea::bandit::{
    EllipticalPotential, LinUcb, Policy, RidgeEstimator, SelectionView, ThompsonSampling,
};
use fasea::core::EventId;
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::sim::AsciiTable;
use fasea::stats::{Bernoulli, CoinStream};

fn main() {
    let d = 10usize;
    let horizon = 5_000u64;
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events: 80,
        dim: d,
        horizon,
        ..Default::default()
    });
    let coins = CoinStream::new(99);

    // Drive each policy manually so we can shadow its estimator with a
    // potential tracker (recording widths *before* each update, as the
    // theory requires).
    let run = |mut policy: Box<dyn Policy>,
               shadow: &mut RidgeEstimator,
               potential: &mut EllipticalPotential|
     -> (u64, u64) {
        let mut remaining = workload.instance.capacities().to_vec();
        let mut rewards = 0u64;
        let mut opt_rewards = 0u64;
        for t in 0..horizon {
            let arrival = workload.arrivals.arrival(t);
            let view = SelectionView {
                t,
                user_capacity: arrival.capacity,
                contexts: &arrival.contexts,
                conflicts: workload.instance.conflicts(),
                remaining: &remaining,
            };
            let arrangement = policy.select(&view);
            let mut accepted = Vec::with_capacity(arrangement.len());
            for &v in arrangement.events() {
                let x = arrival.contexts.context(v);
                potential.record(shadow, x);
                let p = workload.model.accept_probability(&arrival.contexts, v);
                let ok = Bernoulli::new(p).trial_with(coins.uniform(t, v.index() as u64));
                if ok {
                    remaining[v.index()] -= 1;
                    rewards += 1;
                }
                shadow
                    .observe(x, if ok { 1.0 } else { 0.0 })
                    .expect("shadow update");
                accepted.push(ok);
            }
            policy.observe(
                t,
                &arrival.contexts,
                &arrangement,
                &fasea::core::Feedback::new(accepted),
            );
            // Clairvoyant per-round ceiling for a rough regret estimate.
            let mut best: Vec<f64> = (0..workload.instance.num_events())
                .map(|v| {
                    workload
                        .model
                        .accept_probability(&arrival.contexts, EventId(v))
                })
                .collect();
            best.sort_by(|a, b| b.partial_cmp(a).unwrap());
            opt_rewards += best
                .iter()
                .take(arrival.capacity as usize)
                .sum::<f64>()
                .round() as u64;
        }
        (rewards, opt_rewards)
    };

    let mut table = AsciiTable::new(&[
        "policy",
        "rewards",
        "elliptical potential",
        "theory ceiling",
        "potential/ceiling",
    ]);
    for (name, policy) in [
        ("UCB", Box::new(LinUcb::new(d, 1.0, 2.0)) as Box<dyn Policy>),
        (
            "TS",
            Box::new(ThompsonSampling::new(d, 1.0, 0.1, 5)) as Box<dyn Policy>,
        ),
    ] {
        let mut shadow = RidgeEstimator::new(d, 1.0);
        let mut potential = EllipticalPotential::new(d, 1.0);
        let (rewards, _opt) = run(policy, &mut shadow, &mut potential);
        let ceiling = potential.theoretical_bound();
        table.row(vec![
            name.to_string(),
            rewards.to_string(),
            format!("{:.1}", potential.potential()),
            format!("{ceiling:.1}"),
            format!("{:.2}", potential.potential() / ceiling),
        ]);
    }
    println!("exploration budget vs achieved rewards ({horizon} rounds, d = {d}):\n");
    println!("{}", table.render());
    println!(
        "both policies stay under the same theoretical exploration ceiling — TS's \
         much lower reward is not an exploration deficit but the per-round noise \
         of its posterior sample (the paper's conjecture, quantified)."
    );
}

//! A line-oriented arrangement service over stdin/stdout — the shape a
//! real EBSN backend would embed [`fasea::sim::ArrangementService`] in.
//!
//! Protocol (one request per line):
//!
//! ```text
//! user <c_u> <x_11> … <x_1d>  <x_21> … <x_nd>   propose for an arrival
//!                                               (n·d context values)
//! feedback <0|1> <0|1> …                        answers for the pending
//!                                               arrangement, in order
//! status                                        remaining capacities
//! quit
//! ```
//!
//! Demo mode (no stdin piping needed): run without arguments and the
//! example synthesises 20 users itself, driving the service end-to-end:
//!
//! ```text
//! cargo run --release --example arrangement_service
//! echo interactive | cargo run --release --example arrangement_service -- --stdin
//! ```

use fasea::bandit::LinUcb;
use fasea::core::{ConflictGraph, ContextMatrix, ProblemInstance, ProblemMode, UserArrival};
use fasea::sim::ArrangementService;
use std::io::BufRead as _;

const NUM_EVENTS: usize = 8;
const DIM: usize = 4;

fn make_service() -> ArrangementService {
    let instance = ProblemInstance::new(
        vec![5; NUM_EVENTS],
        ConflictGraph::from_pairs(NUM_EVENTS, &[(0, 1), (2, 3)]),
        DIM,
        ProblemMode::Fasea,
    );
    ArrangementService::new(instance, Box::new(LinUcb::new(DIM, 1.0, 2.0)))
}

fn main() {
    let stdin_mode = std::env::args().any(|a| a == "--stdin");
    let mut service = make_service();
    println!(
        "arrangement service: {} events, d = {}, policy {}",
        NUM_EVENTS,
        DIM,
        service.policy_name()
    );

    if stdin_mode {
        run_stdin(&mut service);
    } else {
        run_demo(&mut service);
    }
}

/// Self-driving demo: synthetic arrivals, feedback from a hidden rule
/// ("users accept events whose first feature dominates").
fn run_demo(service: &mut ArrangementService) {
    for round in 0..20u64 {
        let mut ctx = ContextMatrix::from_fn(NUM_EVENTS, DIM, |v, j| {
            (((round as usize + v * 3 + j * 5) % 7) as f64) / 7.0
        });
        ctx.normalize_rows();
        let user = UserArrival::new(2, ctx);
        let arrangement = service.propose(&user).expect("propose");
        let accepted: Vec<bool> = arrangement
            .iter()
            .map(|v| {
                let x = user.contexts.context(v);
                x[0] > 0.5 * x[1..].iter().sum::<f64>()
            })
            .collect();
        let shown: Vec<String> = arrangement.iter().map(|v| v.to_string()).collect();
        let reward = service.feedback(&accepted).expect("feedback");
        println!(
            "round {:>2}: arranged [{}] -> accepted {}/{}",
            round + 1,
            shown.join(", "),
            reward,
            accepted.len()
        );
    }
    println!(
        "done: accept ratio {:.2}, events still available: {}",
        service.accounting().accept_ratio(),
        service.available_events()
    );
}

/// Line-protocol mode.
fn run_stdin(service: &mut ArrangementService) {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("user") => {
                let fields: Vec<f64> = parts.filter_map(|p| p.parse().ok()).collect();
                if fields.len() != 1 + NUM_EVENTS * DIM {
                    println!("err expected c_u plus {} context values", NUM_EVENTS * DIM);
                    continue;
                }
                let cu = fields[0] as u32;
                let ctx = ContextMatrix::from_rows(NUM_EVENTS, DIM, fields[1..].to_vec());
                match service.propose(&UserArrival::new(cu, ctx)) {
                    Ok(a) => {
                        let ids: Vec<String> = a.iter().map(|v| v.index().to_string()).collect();
                        println!("arranged {}", ids.join(" "));
                    }
                    Err(e) => println!("err {e}"),
                }
            }
            Some("feedback") => {
                let answers: Vec<bool> = parts
                    .filter_map(|p| p.parse::<u8>().ok())
                    .map(|b| b != 0)
                    .collect();
                match service.feedback(&answers) {
                    Ok(r) => println!("reward {r}"),
                    Err(e) => println!("err {e}"),
                }
            }
            Some("status") => {
                let caps: Vec<String> = service.remaining().iter().map(|c| c.to_string()).collect();
                println!(
                    "rounds {} accept_ratio {:.3} remaining {}",
                    service.rounds_completed(),
                    service.accounting().accept_ratio(),
                    caps.join(" ")
                );
            }
            Some("quit") | None => break,
            Some(other) => println!("err unknown command {other}"),
        }
    }
}

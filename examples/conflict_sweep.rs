//! Conflict-ratio sweep: how the density of conflicting event pairs
//! shapes policy performance (the paper's Figure 7, scaled down).
//!
//! With `cr = 0` a user can be offered any `c_u` events; with `cr = 1`
//! every pair conflicts, so at most one event per round can be arranged
//! and capacities deplete slowly.
//!
//! ```text
//! cargo run --release --example conflict_sweep
//! ```

use fasea::bandit::{LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea::datagen::{SyntheticConfig, SyntheticWorkload};
use fasea::sim::sweep::run_parallel;
use fasea::sim::{run_simulation, AsciiTable, RunConfig};

fn main() {
    let horizon = 3_000;
    let ratios = [0.0, 0.25, 0.5, 0.75, 1.0];

    let jobs: Vec<_> = ratios
        .iter()
        .map(|&cr| {
            move || {
                let workload = SyntheticWorkload::generate(SyntheticConfig {
                    num_events: 80,
                    dim: 8,
                    conflict_ratio: cr,
                    horizon,
                    ..Default::default()
                });
                let mut policies: Vec<Box<dyn Policy>> = vec![
                    Box::new(LinUcb::new(8, 1.0, 2.0)),
                    Box::new(ThompsonSampling::new(8, 1.0, 0.1, 1)),
                    Box::new(RandomPolicy::new(2)),
                ];
                let result = run_simulation(&workload, &mut policies, &RunConfig::paper(horizon));
                (cr, result)
            }
        })
        .collect();

    let mut table = AsciiTable::new(&["cr", "UCB", "TS", "Random", "OPT", "avg |A_t| (OPT)"]);
    for (cr, result) in run_parallel(jobs, 0) {
        let opt = &result.reference;
        let avg_arranged = opt.accounting.total_arranged() as f64 / opt.accounting.rounds() as f64;
        table.row(vec![
            format!("{cr:.2}"),
            result.policies[0].accounting.total_rewards().to_string(),
            result.policies[1].accounting.total_rewards().to_string(),
            result.policies[2].accounting.total_rewards().to_string(),
            opt.accounting.total_rewards().to_string(),
            format!("{avg_arranged:.2}"),
        ]);
    }
    println!("total rewards after {horizon} users, by conflict ratio:\n");
    println!("{}", table.render());
    println!(
        "as cr grows, fewer events fit one arrangement (cr = 1 → exactly one), \
         so totals shrink for every strategy — the paper's Figure 7 effect."
    );
}

//! The real-dataset study: 50 Damai-style Beijing events, 19 annotating
//! users with fixed Yes/No ground truth (the paper's Table 3 / Table 7
//! setup).
//!
//! Pass a 1-based user index to simulate a different annotator:
//!
//! ```text
//! cargo run --release --example real_dataset -- 8
//! ```

use fasea::bandit::{
    EpsilonGreedy, Exploit, LinUcb, Policy, RandomPolicy, StaticScorePolicy, ThompsonSampling,
};
use fasea::datagen::real::{CATEGORIES, DIM};
use fasea::datagen::RealDataset;
use fasea::sim::real_runner::full_knowledge_ratio;
use fasea::sim::{run_real, AsciiTable, CuMode, RealRunConfig};

fn main() {
    let user: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<usize>().ok())
        .map(|u| u.saturating_sub(1))
        .unwrap_or(0);

    let dataset = RealDataset::generate(2016);
    assert!(user < dataset.num_users(), "user index out of range (1-19)");

    println!(
        "catalogue: {} events across {} categories, {} conflicting pairs \
         (from overlapping date/time slots)",
        dataset.num_events(),
        CATEGORIES.len(),
        dataset.conflicts().num_conflicts()
    );
    println!(
        "user u{}: {} \"Yes\" events of 50, Full-Knowledge MIS = {}\n",
        user + 1,
        dataset.yes_count(user),
        dataset.full_knowledge(user)
    );

    for mode in [CuMode::Five, CuMode::Full] {
        let mut policies: Vec<Box<dyn Policy>> = vec![
            Box::new(LinUcb::new(DIM, 1.0, 2.0)),
            Box::new(ThompsonSampling::new(DIM, 1.0, 0.1, 1)),
            Box::new(EpsilonGreedy::new(DIM, 1.0, 0.1, 2)),
            Box::new(Exploit::new(DIM, 1.0)),
            Box::new(RandomPolicy::new(3)),
            Box::new(StaticScorePolicy::new(
                "Online",
                dataset.online_greedy_scores(user),
            )),
        ];
        let cfg = RealRunConfig {
            user,
            cu_mode: mode,
            rounds: 1000,
            checkpoints: vec![100, 1000],
        };
        let results = run_real(&dataset, &cfg, &mut policies);

        let mut table = AsciiTable::new(&["Algorithm", "ar@100", "ar@1000"]);
        for r in &results {
            table.row(vec![
                r.name.clone(),
                format!("{:.2}", r.checkpoints[0].1),
                format!("{:.2}", r.checkpoints[1].1),
            ]);
        }
        table.row(vec![
            "Full Kn.".into(),
            format!("{:.2}", full_knowledge_ratio(&dataset, user, mode)),
            format!("{:.2}", full_knowledge_ratio(&dataset, user, mode)),
        ]);
        println!("c_u = {} — cumulative accept ratios:", mode.label());
        println!("{}", table.render());
    }
    println!(
        "the paper's Table 7 finding: UCB best in most cells; Exploit can dead-lock \
         at 0 when its first arrangement is all-\"No\" (the fixed contexts never \
         update its estimate); Online never adapts to feedback."
    );
}

#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

# No caller may use a deprecated API. (The PR 8-deprecated
# oracle_greedy* free-function wrappers this gate was added for have
# since been removed outright; the gate stays for whatever deprecates
# next.)
echo "==> cargo check with -D deprecated"
RUSTFLAGS="${RUSTFLAGS:-} -D deprecated" cargo check -q --workspace --all-targets

echo "==> cargo build --examples"
cargo build -q --examples

echo "==> cargo bench --no-run"
cargo bench -q --no-run

# Smoke the scoring hot path (~2s): exercises the legacy-vs-batched and
# serial-vs-parallel bit-equality assertions (including the |V| = 100k
# and 1M ScorePool cells) with a tiny time budget. Deliberately does NOT
# set FASEA_BENCH_JSON — the committed BENCH_scoring.json numbers come
# from a full-budget run, not this smoke.
echo "==> scoring_hot_path smoke (FASEA_BENCH_MS=25)"
FASEA_BENCH_MS=25 cargo bench -q -p fasea-bench --bench scoring_hot_path

# Golden determinism through the parallel engine: a 4-thread ScorePool
# run must land on the identical golden totals as serial.
echo "==> parallel golden determinism (score_threads = 4)"
cargo test -q --test determinism_golden parallel_scoring_matches_serial_golden

# Spill determinism: a personalized-policy run under a tiny model-store
# memory budget (constant demotion/eviction/faulting through the spill
# log) must stay bit-equal to the unbounded run for both policies.
echo "==> models spill-determinism golden tests"
cargo test -q --test models_spill_determinism

# Smoke the million-user residency bench at a small population so the
# seed/steady phases, tier accounting asserts, and spill I/O all run in
# ~1s. The committed BENCH_models.json comes from the full
# FASEA_BENCH_USERS=1000000 run, not this smoke.
echo "==> models_residency smoke (FASEA_BENCH_USERS=20000, FASEA_BENCH_MS=25)"
FASEA_BENCH_USERS=20000 FASEA_BENCH_MS=25 cargo bench -q -p fasea-bench --bench models_residency

# Cohort-mode residency smoke: the same bench with a small cohort count
# exercises the three-level prior chain (fold path, cohort rehydrate,
# sketch demote/promote) plus its mode-aware asserts in ~1s.
echo "==> models_residency cohort smoke (FASEA_BENCH_COHORTS=16)"
FASEA_BENCH_USERS=20000 FASEA_BENCH_MS=25 FASEA_BENCH_COHORTS=16 \
  cargo bench -q -p fasea-bench --bench models_residency

# Cohort + sketched multi-user CLI smoke: a budgeted cohort run must
# verify bit-equal to unbounded, and a sketched run must pass the
# regret-parity gate against its exact control.
echo "==> multi-user cohort/sketched determinism smoke"
cargo test -q -p fasea-experiments --lib -- \
  cohort_mode_budgeted_run_is_bit_equal_to_unbounded \
  sketched_mode_passes_regret_parity_at_d_16

# Sharded-vs-single byte parity: every policy at 1/2/4 shards must land
# on the identical StateDigest (capacities, accounting, policy RNG) as
# the single-actor service, and the 2PC kill matrix must recover from a
# cut at every shard-log and coordinator-log record boundary.
echo "==> sharded-vs-single parity + 2PC kill matrix"
cargo test -q --test shard_parity

# Oracle-trait equivalence gate: GreedyOracle routed through the Oracle
# trait must stay bit-equal to the pre-trait reference across all 7
# policies x score-threads {1,2,8} x shards {1,2,4}, and TabuOracle
# must shard identically to its single-actor run.
echo "==> oracle-trait equivalence (greedy bit-equal, tabu shard parity)"
cargo test -q --test shard_parity oracle

# Churn golden: a churning sharded run (lifecycle records on every
# shard log and the coordinator log) killed at every record boundary
# must recover and finish byte-identical to the single-actor churned
# run, counters equal to the capacity mirror.
echo "==> churned lifecycle kill matrix"
cargo test -q --test shard_parity churned_kill_matrix_recovers_byte_identically

# Pipelined-engine byte parity: the RoundPipeline at depth 1/2/4/8 must
# land on the identical StateDigest (capacities, accounting, policy RNG)
# as the sequential loop for every policy x oracle x churn, across shard
# counts, through group commit, through the kill matrix, and through a
# depth-4 server crash with >= 2 rounds in flight.
echo "==> pipelined-vs-sequential parity + in-flight crash matrix"
cargo test -q --test pipeline_parity

# Smoke the pipelined-engine bench (~1s): exercises the sim + serve
# depth cells and the single-core warning path. The committed
# BENCH_pipeline.json comes from a full-budget run, not this smoke.
echo "==> pipeline_throughput smoke (FASEA_BENCH_MS=25)"
FASEA_BENCH_MS=25 cargo bench -q -p fasea-bench --bench pipeline_throughput

# Smoke the greedy-vs-tabu oracle bench (~1s). The committed
# BENCH_oracle.json comes from a full-budget run, not this smoke.
echo "==> oracle_compare smoke (FASEA_BENCH_MS=25)"
FASEA_BENCH_MS=25 cargo bench -q -p fasea-bench --bench oracle_compare

# Every committed bench-result table must still parse and keep the
# shared schema (object with "bench"/"units"/non-empty "cells" of flat
# scalar cells) so downstream tooling never reads a drifted artefact.
echo "==> check-bench (committed BENCH_*.json schema)"
cargo run -q -p fasea-experiments --bin fasea-exp -- check-bench BENCH_*.json

echo "All checks passed."

#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo build --examples"
cargo build -q --examples

echo "==> cargo bench --no-run"
cargo bench -q --no-run

echo "All checks passed."

//! Conflicting event pairs (Definition 1) as a bitset adjacency graph.

use crate::EventId;

/// Undirected conflict graph over events.
///
/// Definition 1 of the paper: a pair `{v_i, v_j}` is conflicting if a
/// user can attend at most one of the two. The Oracle-Greedy arrangement
/// oracle queries "does candidate `v` conflict with anything already in
/// `A_t`" up to `c_u · |V|` times per round, so adjacency is stored as a
/// dense bitset: one cache-friendly `u64` word covers 64 events, and a
/// conflict query against a whole arrangement is a handful of AND+popcount
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    n: usize,
    words_per_row: usize,
    /// Row-major bitset: bit `j` of row `i` set ⟺ {i, j} ∈ CF.
    bits: Vec<u64>,
    num_conflicts: usize,
}

impl ConflictGraph {
    /// Creates an empty conflict graph over `n` events.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        ConflictGraph {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
            num_conflicts: 0,
        }
    }

    /// Builds a graph from an explicit pair list.
    ///
    /// Duplicate pairs are idempotent; self-pairs panic.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Self {
        let mut g = ConflictGraph::new(n);
        for &(i, j) in pairs {
            g.add_conflict(EventId(i), EventId(j));
        }
        g
    }

    /// Builds the complete conflict graph (`cr = 1`): every pair of
    /// events conflicts, so any arrangement holds at most one event.
    pub fn complete(n: usize) -> Self {
        let mut g = ConflictGraph::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_conflict(EventId(i), EventId(j));
            }
        }
        g
    }

    /// Number of events `|V|`.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.n
    }

    /// Number of conflicting pairs `|CF|`.
    #[inline]
    pub fn num_conflicts(&self) -> usize {
        self.num_conflicts
    }

    /// The conflict ratio `cr = |CF| / (|V|(|V|−1)/2)` (Table 1).
    /// Returns 0 for fewer than two events.
    pub fn conflict_ratio(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let max_pairs = self.n * (self.n - 1) / 2;
        self.num_conflicts as f64 / max_pairs as f64
    }

    /// Marks `{i, j}` as conflicting. Idempotent.
    ///
    /// # Panics
    /// Panics on out-of-range ids or a self-pair (`i == j`).
    pub fn add_conflict(&mut self, i: EventId, j: EventId) {
        let (i, j) = (i.index(), j.index());
        assert!(i < self.n && j < self.n, "add_conflict: id out of range");
        assert_ne!(i, j, "add_conflict: an event cannot conflict with itself");
        if !self.bit(i, j) {
            self.set_bit(i, j);
            self.set_bit(j, i);
            self.num_conflicts += 1;
        }
    }

    #[inline]
    fn bit(&self, row: usize, col: usize) -> bool {
        let w = self.bits[row * self.words_per_row + col / 64];
        (w >> (col % 64)) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, row: usize, col: usize) {
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// `true` iff `{i, j}` is a conflicting pair.
    ///
    /// # Panics
    /// Panics on out-of-range ids.
    #[inline]
    pub fn are_conflicting(&self, i: EventId, j: EventId) -> bool {
        assert!(
            i.index() < self.n && j.index() < self.n,
            "are_conflicting: id out of range"
        );
        if i == j {
            return false;
        }
        self.bit(i.index(), j.index())
    }

    /// Row bitset of event `v` (used by the per-arrangement mask check).
    #[inline]
    fn row(&self, v: usize) -> &[u64] {
        &self.bits[v * self.words_per_row..(v + 1) * self.words_per_row]
    }

    /// `true` iff `v` conflicts with **any** event whose bit is set in
    /// `mask` (a bitset with the same word layout as a graph row).
    ///
    /// This is the hot query of Oracle-Greedy: the oracle keeps a running
    /// mask of arranged events and tests each candidate with one pass of
    /// AND over `⌈|V|/64⌉` words.
    #[inline]
    pub fn conflicts_with_mask(&self, v: EventId, mask: &[u64]) -> bool {
        debug_assert_eq!(mask.len(), self.words_per_row);
        self.row(v.index())
            .iter()
            .zip(mask)
            .any(|(&r, &m)| r & m != 0)
    }

    /// Allocates a zeroed mask with this graph's word layout.
    pub fn empty_mask(&self) -> Vec<u64> {
        vec![0; self.words_per_row]
    }

    /// Number of `u64` words in a mask row — callers that reuse a mask
    /// buffer across rounds size it with `resize(mask_words(), 0)`.
    #[inline]
    pub fn mask_words(&self) -> usize {
        self.words_per_row
    }

    /// Sets event `v`'s bit in `mask`.
    #[inline]
    pub fn mark_mask(&self, v: EventId, mask: &mut [u64]) {
        debug_assert_eq!(mask.len(), self.words_per_row);
        mask[v.index() / 64] |= 1u64 << (v.index() % 64);
    }

    /// `true` iff `v` conflicts with any event in `chosen` (slice form of
    /// [`ConflictGraph::conflicts_with_mask`]; linear in `chosen.len()`).
    pub fn conflicts_with_any(&self, v: EventId, chosen: &[EventId]) -> bool {
        chosen.iter().any(|&c| self.are_conflicting(v, c))
    }

    /// Degree of `v`: number of events it conflicts with.
    pub fn degree(&self, v: EventId) -> usize {
        self.row(v.index())
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates over the neighbours (conflicting partners) of `v`.
    pub fn neighbours(&self, v: EventId) -> impl Iterator<Item = EventId> + '_ {
        let row = self.row(v.index());
        row.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(EventId(wi * 64 + b))
                }
            })
        })
    }

    /// Connected components of the conflict graph, each a sorted list of
    /// event ids, ordered by their smallest member. Isolated events form
    /// singleton components, so the component lists partition `0..n`.
    ///
    /// Sharding keys off this: a component is the unit of capacity
    /// contention (events in different components never appear together
    /// in a conflict check), so a partition that keeps components intact
    /// lets each shard run its slice of Oracle-Greedy without consulting
    /// any other shard's adjacency. The ordering is a pure function of
    /// the graph, which the deterministic shard plan relies on.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut seen = vec![false; self.n];
        let mut out = Vec::new();
        let mut queue = Vec::new();
        for start in 0..self.n {
            if seen[start] {
                continue;
            }
            seen[start] = true;
            queue.clear();
            queue.push(start);
            let mut comp = Vec::new();
            while let Some(v) = queue.pop() {
                comp.push(v);
                for nb in self.neighbours(EventId(v)) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        queue.push(nb.index());
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// Iterates over all conflicting pairs `(i, j)` with `i < j`.
    pub fn pairs(&self) -> impl Iterator<Item = (EventId, EventId)> + '_ {
        (0..self.n).flat_map(move |i| {
            self.neighbours(EventId(i))
                .filter(move |j| j.index() > i)
                .map(move |j| (EventId(i), j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = ConflictGraph::new(5);
        assert_eq!(g.num_events(), 5);
        assert_eq!(g.num_conflicts(), 0);
        assert_eq!(g.conflict_ratio(), 0.0);
        assert!(!g.are_conflicting(EventId(0), EventId(1)));
    }

    #[test]
    fn add_and_query_symmetric() {
        let mut g = ConflictGraph::new(4);
        g.add_conflict(EventId(0), EventId(2));
        assert!(g.are_conflicting(EventId(0), EventId(2)));
        assert!(g.are_conflicting(EventId(2), EventId(0)));
        assert!(!g.are_conflicting(EventId(0), EventId(1)));
        assert_eq!(g.num_conflicts(), 1);
    }

    #[test]
    fn add_is_idempotent() {
        let mut g = ConflictGraph::new(3);
        g.add_conflict(EventId(0), EventId(1));
        g.add_conflict(EventId(1), EventId(0));
        assert_eq!(g.num_conflicts(), 1);
    }

    #[test]
    #[should_panic(expected = "conflict with itself")]
    fn self_conflict_panics() {
        let mut g = ConflictGraph::new(3);
        g.add_conflict(EventId(1), EventId(1));
    }

    #[test]
    fn self_query_is_false() {
        let g = ConflictGraph::complete(3);
        assert!(!g.are_conflicting(EventId(1), EventId(1)));
    }

    #[test]
    fn complete_graph_ratio_is_one() {
        let g = ConflictGraph::complete(10);
        assert_eq!(g.num_conflicts(), 45);
        assert_eq!(g.conflict_ratio(), 1.0);
    }

    #[test]
    fn conflict_ratio_matches_table1_formula() {
        let g = ConflictGraph::from_pairs(5, &[(0, 1), (2, 3)]);
        // |CF| = 2, max pairs = 10 => cr = 0.2
        assert!((g.conflict_ratio() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn mask_checks_match_pairwise_checks() {
        let g = ConflictGraph::from_pairs(130, &[(0, 100), (64, 65), (1, 129)]);
        let mut mask = g.empty_mask();
        g.mark_mask(EventId(100), &mut mask);
        g.mark_mask(EventId(65), &mut mask);
        assert!(g.conflicts_with_mask(EventId(0), &mask)); // 0-100
        assert!(g.conflicts_with_mask(EventId(64), &mask)); // 64-65
        assert!(!g.conflicts_with_mask(EventId(1), &mask)); // 129 not in mask
        assert!(!g.conflicts_with_mask(EventId(2), &mask));
    }

    #[test]
    fn conflicts_with_any_slice_form() {
        let g = ConflictGraph::from_pairs(4, &[(0, 1)]);
        assert!(g.conflicts_with_any(EventId(0), &[EventId(3), EventId(1)]));
        assert!(!g.conflicts_with_any(EventId(0), &[EventId(2), EventId(3)]));
        assert!(!g.conflicts_with_any(EventId(0), &[]));
    }

    #[test]
    fn degree_and_neighbours() {
        let g = ConflictGraph::from_pairs(70, &[(0, 1), (0, 65), (0, 69)]);
        assert_eq!(g.degree(EventId(0)), 3);
        let nb: Vec<usize> = g.neighbours(EventId(0)).map(|e| e.index()).collect();
        assert_eq!(nb, vec![1, 65, 69]);
        assert_eq!(g.degree(EventId(2)), 0);
    }

    #[test]
    fn pairs_enumerates_each_once() {
        let src = [(0usize, 1usize), (1, 2), (0, 3)];
        let g = ConflictGraph::from_pairs(4, &src);
        let mut got: Vec<(usize, usize)> = g.pairs().map(|(a, b)| (a.index(), b.index())).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn cross_word_boundaries() {
        // Events straddling the 64-bit word boundary.
        let mut g = ConflictGraph::new(128);
        g.add_conflict(EventId(63), EventId(64));
        assert!(g.are_conflicting(EventId(64), EventId(63)));
        assert_eq!(g.degree(EventId(63)), 1);
        let nb: Vec<usize> = g.neighbours(EventId(64)).map(|e| e.index()).collect();
        assert_eq!(nb, vec![63]);
    }

    #[test]
    fn components_partition_the_event_set() {
        // Two chained components plus isolated events, across the word
        // boundary.
        let g = ConflictGraph::from_pairs(70, &[(0, 65), (65, 3), (10, 11)]);
        let comps = g.components();
        assert_eq!(comps[0], vec![0, 3, 65]);
        // Components appear ordered by smallest member; every event
        // appears exactly once.
        let mut all: Vec<usize> = comps.iter().flatten().copied().collect();
        assert!(comps
            .windows(2)
            .all(|w| w[0].first().unwrap() < w[1].first().unwrap()));
        all.sort_unstable();
        assert_eq!(all, (0..70).collect::<Vec<_>>());
        assert!(comps.contains(&vec![10, 11]));
        // The rest are singletons.
        assert_eq!(comps.len(), 2 + (70 - 5));
    }

    #[test]
    fn components_of_complete_graph_is_one() {
        let g = ConflictGraph::complete(9);
        let comps = g.components();
        assert_eq!(comps, vec![(0..9).collect::<Vec<_>>()]);
        assert_eq!(ConflictGraph::new(0).components(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn single_event_graph() {
        let g = ConflictGraph::new(1);
        assert_eq!(g.conflict_ratio(), 0.0);
        assert_eq!(g.num_conflicts(), 0);
    }
}

//! Cumulative reward / regret accounting (the paper's four quality
//! metrics, Section 5.1).

/// Running totals for one strategy:
///
/// * **accept ratio** — accumulated accepted / accumulated arranged;
/// * **total rewards** — `Σ_t r_{t,A_t}` (Equation 1 summed);
/// * **total regrets** — `Reg(T) = Σ r_{t,A*_t} − Σ r_{t,A_t}`
///   (Equation 2), computed against a reference accounting (OPT on
///   synthetic data, "Full Knowledge" on real data);
/// * **regret ratio** — total regrets / total rewards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegretAccounting {
    arranged: u64,
    accepted: u64,
    rounds: u64,
}

impl RegretAccounting {
    /// Fresh accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reassembles accounting from persisted totals (crash recovery).
    ///
    /// # Panics
    /// Panics if `accepted > arranged` — no valid history can accept
    /// more events than were arranged.
    pub fn from_parts(rounds: u64, arranged: u64, accepted: u64) -> Self {
        assert!(
            accepted <= arranged,
            "from_parts: accepted {accepted} exceeds arranged {arranged}"
        );
        RegretAccounting {
            arranged,
            accepted,
            rounds,
        }
    }

    /// Records one round: `arranged` slots offered, `reward` of them
    /// accepted.
    ///
    /// # Panics
    /// Panics if `reward > arranged` — a user cannot accept more events
    /// than were arranged.
    pub fn record_round(&mut self, arranged: usize, reward: u32) {
        assert!(
            reward as usize <= arranged,
            "record_round: reward {reward} exceeds arranged {arranged}"
        );
        self.arranged += arranged as u64;
        self.accepted += reward as u64;
        self.rounds += 1;
    }

    /// Rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total arranged slots so far.
    pub fn total_arranged(&self) -> u64 {
        self.arranged
    }

    /// Total rewards `Σ r_{t,A_t}` so far.
    pub fn total_rewards(&self) -> u64 {
        self.accepted
    }

    /// Cumulative accept ratio; 0 when nothing has been arranged yet.
    pub fn accept_ratio(&self) -> f64 {
        if self.arranged == 0 {
            0.0
        } else {
            self.accepted as f64 / self.arranged as f64
        }
    }

    /// `Reg(T)` against a reference strategy's accounting. Under common
    /// random numbers a lucky policy can transiently beat the
    /// greedy-oracle OPT, so the value is signed.
    pub fn regret_vs(&self, reference: &RegretAccounting) -> i64 {
        reference.accepted as i64 - self.accepted as i64
    }

    /// Regret ratio = total regrets / total rewards; 0 when no rewards
    /// have been collected yet.
    pub fn regret_ratio_vs(&self, reference: &RegretAccounting) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.regret_vs(reference) as f64 / self.accepted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_accounting_is_zero() {
        let a = RegretAccounting::new();
        assert_eq!(a.total_rewards(), 0);
        assert_eq!(a.total_arranged(), 0);
        assert_eq!(a.accept_ratio(), 0.0);
        assert_eq!(a.rounds(), 0);
    }

    #[test]
    fn accumulates_rounds() {
        let mut a = RegretAccounting::new();
        a.record_round(2, 1);
        a.record_round(3, 3);
        a.record_round(0, 0);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.total_arranged(), 5);
        assert_eq!(a.total_rewards(), 4);
        assert!((a.accept_ratio() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn regret_is_signed_difference() {
        let mut alg = RegretAccounting::new();
        let mut opt = RegretAccounting::new();
        alg.record_round(2, 1);
        opt.record_round(2, 2);
        assert_eq!(alg.regret_vs(&opt), 1);
        assert_eq!(opt.regret_vs(&alg), -1);
        assert!((alg.regret_ratio_vs(&opt) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn regret_ratio_zero_without_rewards() {
        let alg = RegretAccounting::new();
        let mut opt = RegretAccounting::new();
        opt.record_round(1, 1);
        assert_eq!(alg.regret_ratio_vs(&opt), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds arranged")]
    fn reward_cannot_exceed_arranged() {
        let mut a = RegretAccounting::new();
        a.record_round(1, 2);
    }
}

//! # fasea-core
//!
//! Problem model for **Feedback-Aware Social Event-participant
//! Arrangement** (FASEA, SIGMOD 2017).
//!
//! The FASEA problem (Definition 3 of the paper): a set of events `V`,
//! each with a capacity `c_v`, and a set of conflicting event pairs `CF`
//! are given. At each time step `t` a user `u_t` arrives with capacity
//! `c_{u_t}`, a context vector `x_{t,v} ∈ R^d` (‖x‖ ≤ 1) is revealed for
//! every event, and an **irrevocable** arrangement `A_t` (at most `c_u`
//! mutually non-conflicting, non-full events) must be proposed before the
//! next user appears. The user accepts each arranged event independently
//! with probability `x_{t,v}ᵀ θ` for a fixed unknown `θ` (‖θ‖ ≤ 1);
//! accepted events lose one unit of capacity. The objective is the total
//! number of accepted events, equivalently minimising the regret
//! `Reg(T) = Σ r_{t,A*_t} − Σ r_{t,A_t}` against the optimal strategy
//! that knows `θ`.
//!
//! This crate defines the shared vocabulary every other crate speaks:
//!
//! * [`EventId`], [`ConflictGraph`] — events and Definition 1's
//!   conflicting event pairs, with the conflict ratio
//!   `cr = |CF| / (|V|(|V|−1)/2)`.
//! * [`ContextMatrix`] — the per-round `|V| × d` block of revealed
//!   contexts.
//! * [`Arrangement`], [`validate_arrangement`] — proposed event sets and
//!   the three feasibility constraints of Definition 3.
//! * [`LinearPayoffModel`] — the hidden `θ` with Definition 2's linear
//!   expected reward and the clamped acceptance probability.
//! * [`Environment`] — the simulated platform: holds remaining
//!   capacities, draws acceptance feedback with common random numbers,
//!   and enforces irrevocability.
//! * [`ProblemMode`] — FASEA proper, or the paper's "basic contextual
//!   bandit" ablation (no capacities, no conflicts, one event per round;
//!   Figures 11–13).
//! * [`RegretAccounting`] — cumulative rewards / regrets / accept ratio.
//! * [`ChurnSchedule`], [`LifecycleAction`] — deterministic event
//!   lifecycle (open/close/re-plan) schedules applied at round
//!   boundaries, so regret is measured against a *moving* optimum.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod arrangement;
mod churn;
mod conflict;
mod context;
mod environment;
mod error;
mod instance;
mod payoff;
mod regret;
mod reward_model;

pub use arrangement::{validate_arrangement, Arrangement, Feedback};
pub use churn::{ChurnSchedule, LifecycleAction};
pub use conflict::ConflictGraph;
pub use context::ContextMatrix;
pub use environment::{Environment, RoundOutcome};
pub use error::ArrangementError;
pub use instance::{EventId, ProblemInstance, ProblemMode, UserArrival};
pub use payoff::LinearPayoffModel;
pub use regret::RegretAccounting;
pub use reward_model::RewardModel;

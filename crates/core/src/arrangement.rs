//! Arrangements, feedback, and Definition 3's feasibility constraints.

use crate::{ArrangementError, ConflictGraph, EventId};

/// A proposed arrangement `A_t`: the events offered to the current user,
/// in the order the arrangement oracle picked them (non-increasing
/// estimated reward for Oracle-Greedy).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Arrangement {
    events: Vec<EventId>,
}

impl Arrangement {
    /// The empty arrangement (legal: a platform may offer nothing, e.g.
    /// when every event is full or conflicts exclude everything).
    pub fn empty() -> Self {
        Arrangement { events: Vec::new() }
    }

    /// Creates an arrangement from an event list (order preserved).
    pub fn new(events: Vec<EventId>) -> Self {
        Arrangement { events }
    }

    /// Number of arranged events `|A_t|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was arranged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The arranged events.
    #[inline]
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Appends an event.
    pub fn push(&mut self, v: EventId) {
        self.events.push(v);
    }

    /// Removes all events, keeping the allocation. The batched scoring
    /// path (`Policy::select_into`) reuses one arrangement buffer across
    /// rounds, so steady-state selection stays allocation-free.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// `true` iff `v` is arranged.
    pub fn contains(&self, v: EventId) -> bool {
        self.events.contains(&v)
    }

    /// Iterates over arranged events.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events.iter().copied()
    }
}

impl FromIterator<EventId> for Arrangement {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        Arrangement {
            events: iter.into_iter().collect(),
        }
    }
}

/// The user's feedback on an arrangement: `accepted[i]` answers whether
/// `arrangement.events()[i]` was accepted (reward 1) or rejected
/// (reward 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feedback {
    accepted: Vec<bool>,
}

impl Feedback {
    /// Creates feedback aligned with an arrangement's event order.
    pub fn new(accepted: Vec<bool>) -> Self {
        Feedback { accepted }
    }

    /// Per-slot acceptance flags.
    pub fn accepted(&self) -> &[bool] {
        &self.accepted
    }

    /// The round reward `r_{t,A_t}` — the number of accepted events
    /// (Equation 1 of the paper).
    pub fn reward(&self) -> u32 {
        self.accepted.iter().filter(|&&a| a).count() as u32
    }

    /// Number of slots (equals `|A_t|`).
    pub fn len(&self) -> usize {
        self.accepted.len()
    }

    /// `true` if the arrangement was empty.
    pub fn is_empty(&self) -> bool {
        self.accepted.is_empty()
    }

    /// Zips `(event, accepted)` with the arrangement it answers.
    ///
    /// # Panics
    /// Panics if lengths disagree.
    pub fn zip<'a>(
        &'a self,
        arrangement: &'a Arrangement,
    ) -> impl Iterator<Item = (EventId, bool)> + 'a {
        assert_eq!(
            self.accepted.len(),
            arrangement.len(),
            "Feedback::zip: arrangement/feedback length mismatch"
        );
        arrangement.iter().zip(self.accepted.iter().copied())
    }
}

/// Validates an arrangement against Definition 3's constraints:
///
/// 1. every event exists and appears at most once,
/// 2. `|A_t| ≤ c_u` and every arranged event has remaining capacity,
/// 3. no two arranged events conflict.
///
/// `remaining` is indexed by event id and holds current (not initial)
/// capacities.
pub fn validate_arrangement(
    arrangement: &Arrangement,
    conflicts: &ConflictGraph,
    remaining: &[u32],
    user_capacity: u32,
) -> Result<(), ArrangementError> {
    let n = conflicts.num_events();
    if arrangement.len() > user_capacity as usize {
        return Err(ArrangementError::UserCapacityExceeded {
            arranged: arrangement.len(),
            capacity: user_capacity,
        });
    }
    let events = arrangement.events();
    for (i, &v) in events.iter().enumerate() {
        if v.index() >= n {
            return Err(ArrangementError::UnknownEvent(v));
        }
        if events[..i].contains(&v) {
            return Err(ArrangementError::DuplicateEvent(v));
        }
        if remaining[v.index()] == 0 {
            return Err(ArrangementError::EventFull(v));
        }
        for &w in &events[..i] {
            if conflicts.are_conflicting(v, w) {
                return Err(ArrangementError::ConflictViolated(w, v));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<EventId> {
        v.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn empty_arrangement_is_valid() {
        let g = ConflictGraph::new(3);
        let a = Arrangement::empty();
        assert!(validate_arrangement(&a, &g, &[1, 1, 1], 0).is_ok());
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn valid_arrangement_passes() {
        let g = ConflictGraph::from_pairs(4, &[(0, 1)]);
        let a = Arrangement::new(ids(&[0, 2, 3]));
        assert!(validate_arrangement(&a, &g, &[1, 1, 1, 1], 3).is_ok());
    }

    #[test]
    fn user_capacity_enforced() {
        let g = ConflictGraph::new(3);
        let a = Arrangement::new(ids(&[0, 1, 2]));
        let err = validate_arrangement(&a, &g, &[1, 1, 1], 2).unwrap_err();
        assert_eq!(
            err,
            ArrangementError::UserCapacityExceeded {
                arranged: 3,
                capacity: 2
            }
        );
    }

    #[test]
    fn full_event_rejected() {
        let g = ConflictGraph::new(2);
        let a = Arrangement::new(ids(&[1]));
        let err = validate_arrangement(&a, &g, &[1, 0], 1).unwrap_err();
        assert_eq!(err, ArrangementError::EventFull(EventId(1)));
    }

    #[test]
    fn conflicts_rejected() {
        let g = ConflictGraph::from_pairs(3, &[(0, 2)]);
        let a = Arrangement::new(ids(&[0, 2]));
        let err = validate_arrangement(&a, &g, &[1, 1, 1], 2).unwrap_err();
        assert_eq!(
            err,
            ArrangementError::ConflictViolated(EventId(0), EventId(2))
        );
    }

    #[test]
    fn duplicates_rejected() {
        let g = ConflictGraph::new(3);
        let a = Arrangement::new(ids(&[1, 1]));
        let err = validate_arrangement(&a, &g, &[1, 1, 1], 2).unwrap_err();
        assert_eq!(err, ArrangementError::DuplicateEvent(EventId(1)));
    }

    #[test]
    fn unknown_event_rejected() {
        let g = ConflictGraph::new(2);
        let a = Arrangement::new(ids(&[5]));
        let err = validate_arrangement(&a, &g, &[1, 1], 1).unwrap_err();
        assert_eq!(err, ArrangementError::UnknownEvent(EventId(5)));
    }

    #[test]
    fn feedback_reward_counts_accepts() {
        let f = Feedback::new(vec![true, false, true]);
        assert_eq!(f.reward(), 2);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert_eq!(Feedback::new(vec![]).reward(), 0);
    }

    #[test]
    fn feedback_zip_pairs_in_order() {
        let a = Arrangement::new(ids(&[3, 1]));
        let f = Feedback::new(vec![false, true]);
        let pairs: Vec<(usize, bool)> = f.zip(&a).map(|(e, ok)| (e.index(), ok)).collect();
        assert_eq!(pairs, vec![(3, false), (1, true)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn feedback_zip_length_mismatch_panics() {
        let a = Arrangement::new(ids(&[0]));
        let f = Feedback::new(vec![true, false]);
        let _ = f.zip(&a).count();
    }

    #[test]
    fn arrangement_from_iterator_and_contains() {
        let a: Arrangement = (0..3).map(EventId).collect();
        assert!(a.contains(EventId(2)));
        assert!(!a.contains(EventId(3)));
        assert_eq!(a.iter().count(), 3);
    }
}

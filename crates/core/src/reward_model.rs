//! The reward-model abstraction behind the environment.

use crate::{ContextMatrix, EventId};

/// Ground truth that decides user feedback.
///
/// Definition 2's linear model ([`crate::LinearPayoffModel`]) is the
/// paper's synthetic ground truth; the real dataset replaces it with
/// deterministic per-event Yes/No labels (users were asked for fixed
/// ground-truth feedbacks, Section 5.1). Both are [`RewardModel`]s, so
/// the same [`crate::Environment`] and simulation loop drive both halves
/// of the evaluation.
pub trait RewardModel {
    /// Context dimension this model expects.
    fn dim(&self) -> usize;

    /// Probability in `[0, 1]` that the user accepts event `v` under
    /// contexts `ctx`.
    fn accept_probability(&self, ctx: &ContextMatrix, v: EventId) -> f64;

    /// The (possibly unclamped) expected reward used for ranking by the
    /// clairvoyant strategies and the Kendall ground truth.
    fn expected_reward(&self, ctx: &ContextMatrix, v: EventId) -> f64;
}

impl RewardModel for crate::LinearPayoffModel {
    fn dim(&self) -> usize {
        crate::LinearPayoffModel::dim(self)
    }

    fn accept_probability(&self, ctx: &ContextMatrix, v: EventId) -> f64 {
        crate::LinearPayoffModel::accept_probability(self, ctx, v)
    }

    fn expected_reward(&self, ctx: &ContextMatrix, v: EventId) -> f64 {
        crate::LinearPayoffModel::expected_reward(self, ctx, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasea_linalg::Vector;

    #[test]
    fn linear_model_implements_trait() {
        let m = crate::LinearPayoffModel::new(Vector::from([1.0, 0.0]));
        let ctx = ContextMatrix::from_rows(1, 2, vec![0.4, 0.9]);
        let dyn_m: &dyn RewardModel = &m;
        assert_eq!(dyn_m.dim(), 2);
        assert!((dyn_m.expected_reward(&ctx, EventId(0)) - 0.4).abs() < 1e-15);
        assert!((dyn_m.accept_probability(&ctx, EventId(0)) - 0.4).abs() < 1e-15);
    }
}

//! Errors for arrangement validation.

use crate::EventId;
use std::fmt;

/// Why a proposed arrangement violates Definition 3's constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrangementError {
    /// The arrangement references an event id ≥ |V|.
    UnknownEvent(EventId),
    /// The same event appears twice in one arrangement.
    DuplicateEvent(EventId),
    /// More events than the user's capacity `c_u` were arranged.
    UserCapacityExceeded {
        /// Arranged count.
        arranged: usize,
        /// The user's capacity.
        capacity: u32,
    },
    /// An event with no remaining capacity was arranged.
    EventFull(EventId),
    /// Two events in the arrangement are conflicting.
    ConflictViolated(EventId, EventId),
}

impl fmt::Display for ArrangementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrangementError::UnknownEvent(v) => write!(f, "unknown event {v}"),
            ArrangementError::DuplicateEvent(v) => {
                write!(f, "event {v} arranged more than once")
            }
            ArrangementError::UserCapacityExceeded { arranged, capacity } => write!(
                f,
                "arranged {arranged} events but user capacity is {capacity}"
            ),
            ArrangementError::EventFull(v) => write!(f, "event {v} has no remaining capacity"),
            ArrangementError::ConflictViolated(a, b) => {
                write!(f, "events {a} and {b} are conflicting")
            }
        }
    }
}

impl std::error::Error for ArrangementError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_events() {
        assert_eq!(
            ArrangementError::UnknownEvent(EventId(2)).to_string(),
            "unknown event v3"
        );
        assert_eq!(
            ArrangementError::ConflictViolated(EventId(0), EventId(1)).to_string(),
            "events v1 and v2 are conflicting"
        );
        let e = ArrangementError::UserCapacityExceeded {
            arranged: 4,
            capacity: 2,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(ArrangementError::EventFull(EventId(0)));
        assert!(e.to_string().contains("v1"));
    }
}

//! The simulated EBSN platform.

use crate::{
    validate_arrangement, Arrangement, ArrangementError, Feedback, LinearPayoffModel,
    ProblemInstance, RewardModel, UserArrival,
};
use fasea_stats::CoinStream;

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundOutcome {
    /// The user's per-slot feedback, aligned with the arrangement.
    pub feedback: Feedback,
    /// The round reward `r_{t,A_t}` (number of accepted events).
    pub reward: u32,
}

/// The online platform a policy interacts with.
///
/// Owns the immutable [`ProblemInstance`], the hidden
/// [`LinearPayoffModel`], a [`CoinStream`] for acceptance draws, and the
/// mutable remaining capacities. Each call to [`Environment::step`]
/// plays one round of Definition 3:
///
/// 1. the proposed arrangement is validated against current capacities,
///    the user's capacity and the conflict graph (irrevocability is
///    implicit — there is no API to undo a step);
/// 2. each arranged event `v` is accepted iff
///    `u(t, v) < clamp(x_{t,v}ᵀθ, 0, 1)` where `u` is the common-random-
///    number stream — so two environments cloned from the same state
///    expose *identical* coins to different policies;
/// 3. accepted events lose one capacity unit.
///
/// Cloning an `Environment` snapshots the capacity state; the simulator
/// clones one pristine environment per policy.
///
/// Generic over the ground truth `M`: [`LinearPayoffModel`] (the
/// default) for synthetic data, a deterministic label table for the real
/// dataset.
#[derive(Debug, Clone)]
pub struct Environment<M: RewardModel = LinearPayoffModel> {
    instance: ProblemInstance,
    model: M,
    coins: CoinStream,
    remaining: Vec<u32>,
    rounds_played: u64,
}

impl<M: RewardModel> Environment<M> {
    /// Creates a fresh environment with full capacities.
    ///
    /// # Panics
    /// Panics if the model dimension differs from the instance dimension.
    pub fn new(instance: ProblemInstance, model: M, coins: CoinStream) -> Self {
        assert_eq!(
            instance.dim(),
            model.dim(),
            "Environment: instance dim {} != model dim {}",
            instance.dim(),
            model.dim()
        );
        let remaining = instance.capacities().to_vec();
        Environment {
            instance,
            model,
            coins,
            remaining,
            rounds_played: 0,
        }
    }

    /// The immutable problem description.
    pub fn instance(&self) -> &ProblemInstance {
        &self.instance
    }

    /// The hidden reward model. Only the simulator and the OPT reference
    /// strategy may look at this; learning policies receive feedback
    /// exclusively through [`Environment::step`].
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Current remaining capacities, indexed by event.
    pub fn remaining(&self) -> &[u32] {
        &self.remaining
    }

    /// Remaining capacity of one event.
    pub fn remaining_capacity(&self, v: crate::EventId) -> u32 {
        self.remaining[v.index()]
    }

    /// Number of events that still have capacity.
    pub fn available_events(&self) -> usize {
        self.remaining.iter().filter(|&&c| c > 0).count()
    }

    /// `true` once every event is full — OPT's reward stops growing here,
    /// which produces the paper's sudden total-regret drop (Figure 1).
    pub fn is_exhausted(&self) -> bool {
        self.available_events() == 0
    }

    /// Rounds played so far.
    pub fn rounds_played(&self) -> u64 {
        self.rounds_played
    }

    /// Applies one lifecycle action: sets `event`'s remaining capacity
    /// to `capacity`, clamped to the instance's planned capacity (a
    /// re-plan can shrink, close, or restore an event, never grow it
    /// beyond what the fingerprinted instance promised). Idempotent —
    /// re-applying the same action is a no-op, which is what makes
    /// churn replay after crash recovery safe. Returns the capacity
    /// actually installed.
    ///
    /// # Panics
    /// Panics if `event` is out of range for the instance.
    pub fn apply_lifecycle(&mut self, event: u32, capacity: u32) -> u32 {
        let e = event as usize;
        assert!(
            e < self.remaining.len(),
            "apply_lifecycle: event {event} out of range ({} events)",
            self.remaining.len()
        );
        let clamped = capacity.min(self.instance.capacities()[e]);
        self.remaining[e] = clamped;
        clamped
    }

    /// Plays one round: validates `arrangement` for `user` at time `t`,
    /// draws feedback, and decrements capacities of accepted events.
    ///
    /// # Errors
    /// Returns the first constraint violation without mutating any state.
    pub fn step(
        &mut self,
        t: u64,
        user: &UserArrival,
        arrangement: &Arrangement,
    ) -> Result<RoundOutcome, ArrangementError> {
        validate_arrangement(
            arrangement,
            self.instance.conflicts(),
            &self.remaining,
            user.capacity,
        )?;
        let mut accepted = Vec::with_capacity(arrangement.len());
        for &v in arrangement.events() {
            let p = self.model.accept_probability(&user.contexts, v);
            let u = self.coins.uniform(t, v.index() as u64);
            let ok = u < p;
            if ok {
                // Validation guarantees remaining > 0.
                self.remaining[v.index()] -= 1;
            }
            accepted.push(ok);
        }
        self.rounds_played += 1;
        let feedback = Feedback::new(accepted);
        let reward = feedback.reward();
        Ok(RoundOutcome { feedback, reward })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConflictGraph, ContextMatrix, EventId, ProblemMode};
    use fasea_linalg::Vector;

    fn env_with(theta: Vec<f64>, caps: Vec<u32>, seed: u64) -> Environment {
        let n = caps.len();
        let d = theta.len();
        let inst = ProblemInstance::new(caps, ConflictGraph::new(n), d, ProblemMode::Fasea);
        Environment::new(
            inst,
            LinearPayoffModel::new(Vector::from(theta)),
            CoinStream::new(seed),
        )
    }

    fn sure_accept_contexts(n: usize) -> ContextMatrix {
        // x = [1] with theta = [1] => p = 1.
        ContextMatrix::from_rows(n, 1, vec![1.0; n])
    }

    #[test]
    fn accepting_reduces_capacity() {
        let mut env = env_with(vec![1.0], vec![2, 2], 1);
        let user = UserArrival::new(2, sure_accept_contexts(2));
        let arr = Arrangement::new(vec![EventId(0), EventId(1)]);
        let out = env.step(0, &user, &arr).unwrap();
        assert_eq!(out.reward, 2);
        assert_eq!(env.remaining(), &[1, 1]);
        assert_eq!(env.rounds_played(), 1);
    }

    #[test]
    fn zero_probability_events_are_rejected() {
        let mut env = env_with(vec![1.0], vec![5], 1);
        // x = [-1] => p = clamp(-1) = 0.
        let ctx = ContextMatrix::from_rows(1, 1, vec![-1.0]);
        let user = UserArrival::new(1, ctx);
        let out = env
            .step(0, &user, &Arrangement::new(vec![EventId(0)]))
            .unwrap();
        assert_eq!(out.reward, 0);
        assert_eq!(out.feedback.accepted(), &[false]);
        assert_eq!(env.remaining(), &[5]);
    }

    #[test]
    fn invalid_arrangement_leaves_state_untouched() {
        let mut env = env_with(vec![1.0], vec![1, 1], 1);
        let user = UserArrival::new(1, sure_accept_contexts(2));
        // Exceeds user capacity.
        let arr = Arrangement::new(vec![EventId(0), EventId(1)]);
        let err = env.step(0, &user, &arr).unwrap_err();
        assert!(matches!(err, ArrangementError::UserCapacityExceeded { .. }));
        assert_eq!(env.remaining(), &[1, 1]);
        assert_eq!(env.rounds_played(), 0);
    }

    #[test]
    fn conflicting_arrangement_rejected() {
        let inst = ProblemInstance::new(
            vec![1, 1],
            ConflictGraph::from_pairs(2, &[(0, 1)]),
            1,
            ProblemMode::Fasea,
        );
        let mut env = Environment::new(
            inst,
            LinearPayoffModel::new(Vector::from([1.0])),
            CoinStream::new(0),
        );
        let user = UserArrival::new(2, sure_accept_contexts(2));
        let arr = Arrangement::new(vec![EventId(0), EventId(1)]);
        assert!(matches!(
            env.step(0, &user, &arr),
            Err(ArrangementError::ConflictViolated(_, _))
        ));
    }

    #[test]
    fn full_event_cannot_be_arranged_again() {
        let mut env = env_with(vec![1.0], vec![1], 1);
        let user = UserArrival::new(1, sure_accept_contexts(1));
        let arr = Arrangement::new(vec![EventId(0)]);
        assert_eq!(env.step(0, &user, &arr).unwrap().reward, 1);
        assert!(env.is_exhausted());
        let err = env.step(1, &user, &arr).unwrap_err();
        assert_eq!(err, ArrangementError::EventFull(EventId(0)));
    }

    #[test]
    fn cloned_environments_see_identical_coins() {
        let env1 = env_with(vec![0.7], vec![100; 4], 42);
        let mut env2 = env1.clone();
        let mut env1 = env1;
        let ctx = ContextMatrix::from_rows(4, 1, vec![0.9, 0.8, 0.7, 0.6]);
        let user = UserArrival::new(4, ctx);
        let arr = Arrangement::new((0..4).map(EventId).collect());
        for t in 0..50 {
            let a = env1.step(t, &user, &arr).unwrap();
            let b = env2.step(t, &user, &arr).unwrap();
            assert_eq!(a.feedback, b.feedback, "coin divergence at t={t}");
        }
    }

    #[test]
    fn acceptance_rate_matches_probability() {
        // p = 0.3 for a single event; over many rounds the acceptance
        // frequency must approach 0.3.
        let mut env = env_with(vec![0.3], vec![u32::MAX], 7);
        let ctx = ContextMatrix::from_rows(1, 1, vec![1.0]);
        let user = UserArrival::new(1, ctx);
        let arr = Arrangement::new(vec![EventId(0)]);
        let mut accepted = 0u32;
        let n = 20_000;
        for t in 0..n {
            accepted += env.step(t, &user, &arr).unwrap().reward;
        }
        let rate = accepted as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn empty_arrangement_is_a_legal_round() {
        let mut env = env_with(vec![1.0], vec![1], 1);
        let user = UserArrival::new(3, sure_accept_contexts(1));
        let out = env.step(0, &user, &Arrangement::empty()).unwrap();
        assert_eq!(out.reward, 0);
        assert!(out.feedback.is_empty());
        assert_eq!(env.rounds_played(), 1);
    }

    #[test]
    #[should_panic(expected = "dim")]
    fn model_instance_dim_mismatch_panics() {
        let inst = ProblemInstance::new(vec![1], ConflictGraph::new(1), 2, ProblemMode::Fasea);
        let _ = Environment::new(
            inst,
            LinearPayoffModel::new(Vector::from([1.0])),
            CoinStream::new(0),
        );
    }

    #[test]
    fn apply_lifecycle_sets_clamps_and_idempotent() {
        let mut env = env_with(vec![1.0], vec![3, 5], 1);
        assert_eq!(env.apply_lifecycle(0, 0), 0); // close
        assert_eq!(env.remaining(), &[0, 5]);
        assert_eq!(env.apply_lifecycle(0, 9), 3); // clamped to planned 3
        assert_eq!(env.remaining(), &[3, 5]);
        assert_eq!(env.apply_lifecycle(1, 2), 2); // shrink
        assert_eq!(env.apply_lifecycle(1, 2), 2); // idempotent
        assert_eq!(env.remaining(), &[3, 2]);
        // A closed event cannot be arranged.
        env.apply_lifecycle(0, 0);
        let user = UserArrival::new(1, sure_accept_contexts(2));
        let err = env
            .step(0, &user, &Arrangement::new(vec![EventId(0)]))
            .unwrap_err();
        assert_eq!(err, ArrangementError::EventFull(EventId(0)));
    }

    #[test]
    fn available_events_counts_nonfull() {
        let mut env = env_with(vec![1.0], vec![1, 0, 3], 1);
        assert_eq!(env.available_events(), 2);
        let user = UserArrival::new(1, sure_accept_contexts(3));
        env.step(0, &user, &Arrangement::new(vec![EventId(0)]))
            .unwrap();
        assert_eq!(env.available_events(), 1);
    }
}

//! Problem instance description: events, capacities, mode, user arrivals.

use crate::ConflictGraph;

/// Identifier of an event: its index into the instance's event list.
///
/// Kept as a transparent newtype so event indices cannot be confused with
/// time steps or feature indices in APIs that take several `usize`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub usize);

impl EventId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0 + 1) // 1-based, matching the paper's v₁…
    }
}

/// Which variant of the problem is being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemMode {
    /// Full FASEA (Definition 3): capacities, conflicts, up to `c_u`
    /// events per round.
    Fasea,
    /// The paper's "basic contextual bandit" ablation (Figures 11–13):
    /// capacities of events are unlimited, no events conflict, and
    /// exactly one event is arranged per round.
    BasicContextual,
}

/// Immutable description of a FASEA problem instance.
///
/// Holds everything that is fixed before the first user arrives: the
/// event capacities `c_v`, the conflict graph `CF`, the context dimension
/// `d` and the [`ProblemMode`]. The *dynamic* remaining capacities live
/// in [`crate::Environment`].
#[derive(Debug, Clone)]
pub struct ProblemInstance {
    capacities: Vec<u32>,
    conflicts: ConflictGraph,
    dim: usize,
    mode: ProblemMode,
}

impl ProblemInstance {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if `capacities.len() != conflicts.num_events()` or `dim == 0`.
    pub fn new(
        capacities: Vec<u32>,
        conflicts: ConflictGraph,
        dim: usize,
        mode: ProblemMode,
    ) -> Self {
        assert_eq!(
            capacities.len(),
            conflicts.num_events(),
            "ProblemInstance: capacity list and conflict graph disagree on |V|"
        );
        assert!(dim > 0, "ProblemInstance: dim must be positive");
        ProblemInstance {
            capacities,
            conflicts,
            dim,
            mode,
        }
    }

    /// Convenience constructor for the basic-contextual-bandit mode:
    /// `n` events with unbounded capacity (`u32::MAX`) and no conflicts.
    pub fn basic(n: usize, dim: usize) -> Self {
        ProblemInstance::new(
            vec![u32::MAX; n],
            ConflictGraph::new(n),
            dim,
            ProblemMode::BasicContextual,
        )
    }

    /// Number of events `|V|`.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.capacities.len()
    }

    /// Context dimension `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Mode of the instance.
    #[inline]
    pub fn mode(&self) -> ProblemMode {
        self.mode
    }

    /// Initial capacity `c_v` of event `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn capacity(&self, v: EventId) -> u32 {
        self.capacities[v.index()]
    }

    /// The full initial-capacity slice, indexed by event.
    pub fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    /// The conflict graph `CF`.
    pub fn conflicts(&self) -> &ConflictGraph {
        &self.conflicts
    }

    /// Total capacity across all events (saturating; the basic mode uses
    /// `u32::MAX` sentinels).
    pub fn total_capacity(&self) -> u64 {
        self.capacities.iter().map(|&c| c as u64).sum()
    }

    /// Iterates over all event ids.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> {
        (0..self.num_events()).map(EventId)
    }
}

/// One online user arrival: capacity plus the revealed context block.
#[derive(Debug, Clone)]
pub struct UserArrival {
    /// The user's capacity `c_u` — the maximum number of events they are
    /// willing to attend this round.
    pub capacity: u32,
    /// Revealed contexts `x_{t,v}` for every event, shape `|V| × d`.
    pub contexts: crate::ContextMatrix,
}

impl UserArrival {
    /// Creates an arrival.
    pub fn new(capacity: u32, contexts: crate::ContextMatrix) -> Self {
        UserArrival { capacity, contexts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContextMatrix;

    #[test]
    fn event_id_display_is_one_based() {
        assert_eq!(EventId(0).to_string(), "v1");
        assert_eq!(EventId(3).to_string(), "v4");
        assert_eq!(EventId(7).index(), 7);
    }

    #[test]
    fn instance_accessors() {
        let inst =
            ProblemInstance::new(vec![2, 3, 4], ConflictGraph::new(3), 5, ProblemMode::Fasea);
        assert_eq!(inst.num_events(), 3);
        assert_eq!(inst.dim(), 5);
        assert_eq!(inst.capacity(EventId(1)), 3);
        assert_eq!(inst.total_capacity(), 9);
        assert_eq!(inst.mode(), ProblemMode::Fasea);
        assert_eq!(inst.event_ids().count(), 3);
    }

    #[test]
    fn basic_mode_has_unbounded_capacity_and_no_conflicts() {
        let inst = ProblemInstance::basic(10, 4);
        assert_eq!(inst.mode(), ProblemMode::BasicContextual);
        assert_eq!(inst.capacity(EventId(9)), u32::MAX);
        assert_eq!(inst.conflicts().num_conflicts(), 0);
    }

    #[test]
    #[should_panic(expected = "disagree on |V|")]
    fn mismatched_sizes_panic() {
        let _ = ProblemInstance::new(vec![1, 2], ConflictGraph::new(3), 2, ProblemMode::Fasea);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_panics() {
        let _ = ProblemInstance::new(vec![1], ConflictGraph::new(1), 0, ProblemMode::Fasea);
    }

    #[test]
    fn user_arrival_holds_contexts() {
        let ctx = ContextMatrix::zeros(2, 3);
        let u = UserArrival::new(4, ctx);
        assert_eq!(u.capacity, 4);
        assert_eq!(u.contexts.num_events(), 2);
    }
}

//! The hidden linear payoff model (Definition 2).

use crate::{ContextMatrix, EventId};
use fasea_linalg::Vector;

/// The fixed, unknown weight vector `θ` with Definition 2's linear
/// expected reward `E[r_{t,v} | x_{t,v}] = x_{t,v}ᵀ θ`.
///
/// Two views of the same dot product are exposed:
///
/// * [`LinearPayoffModel::expected_reward`] — the raw linear value, which
///   is what the optimal strategy ranks events by (it may be negative or
///   exceed 1 transiently, since only `‖x‖ ≤ 1` and `‖θ‖ ≤ 1` are
///   guaranteed);
/// * [`LinearPayoffModel::accept_probability`] — the same value clamped
///   to `[0, 1]`, which is what the Bernoulli feedback draw uses
///   ("the feedback of an event is 1 with probability `xᵀθ`", Section
///   5.1 — probabilities saturate outside the unit interval).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearPayoffModel {
    theta: Vector,
}

impl LinearPayoffModel {
    /// Wraps a weight vector. `θ` is used as given; call
    /// [`LinearPayoffModel::new_normalized`] to enforce `‖θ‖ ≤ 1`.
    ///
    /// # Panics
    /// Panics if `theta` is empty or non-finite.
    pub fn new(theta: Vector) -> Self {
        assert!(
            theta.dim() > 0,
            "LinearPayoffModel: theta must be non-empty"
        );
        assert!(theta.is_finite(), "LinearPayoffModel: theta must be finite");
        LinearPayoffModel { theta }
    }

    /// Wraps and unit-normalises a weight vector, matching the paper's
    /// synthetic data pipeline ("θ and feature vectors are normalized to
    /// unit lengths").
    pub fn new_normalized(theta: Vector) -> Self {
        LinearPayoffModel::new(theta.normalized())
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.theta.dim()
    }

    /// Borrows `θ`.
    pub fn theta(&self) -> &Vector {
        &self.theta
    }

    /// Raw expected reward `x_{t,v}ᵀ θ` of event `v` under contexts `ctx`.
    #[inline]
    pub fn expected_reward(&self, ctx: &ContextMatrix, v: EventId) -> f64 {
        ctx.dot(v, self.theta.as_slice())
    }

    /// Acceptance probability: expected reward clamped to `[0, 1]`.
    #[inline]
    pub fn accept_probability(&self, ctx: &ContextMatrix, v: EventId) -> f64 {
        self.expected_reward(ctx, v).clamp(0.0, 1.0)
    }

    /// Raw expected rewards of all events, indexed by event id.
    pub fn expected_rewards(&self, ctx: &ContextMatrix) -> Vec<f64> {
        (0..ctx.num_events())
            .map(|v| self.expected_reward(ctx, EventId(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_reward_is_dot_product() {
        let model = LinearPayoffModel::new(Vector::from([0.5, -0.5]));
        let ctx = ContextMatrix::from_rows(2, 2, vec![1.0, 0.0, 0.6, 0.8]);
        assert!((model.expected_reward(&ctx, EventId(0)) - 0.5).abs() < 1e-15);
        assert!((model.expected_reward(&ctx, EventId(1)) - (0.3 - 0.4)).abs() < 1e-15);
    }

    #[test]
    fn accept_probability_clamps() {
        let model = LinearPayoffModel::new(Vector::from([1.0]));
        let ctx = ContextMatrix::from_rows(3, 1, vec![-0.5, 0.3, 1.0]);
        assert_eq!(model.accept_probability(&ctx, EventId(0)), 0.0);
        assert!((model.accept_probability(&ctx, EventId(1)) - 0.3).abs() < 1e-15);
        assert_eq!(model.accept_probability(&ctx, EventId(2)), 1.0);
    }

    #[test]
    fn new_normalized_enforces_unit_norm() {
        let model = LinearPayoffModel::new_normalized(Vector::from([3.0, 4.0]));
        assert!((model.theta().norm() - 1.0).abs() < 1e-12);
        assert!((model.theta()[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn expected_rewards_batch_matches_single() {
        let model = LinearPayoffModel::new(Vector::from([0.2, 0.8]));
        let ctx = ContextMatrix::from_fn(4, 2, |v, j| (v + j) as f64 * 0.1);
        let batch = model.expected_rewards(&ctx);
        for (v, &value) in batch.iter().enumerate() {
            assert_eq!(value, model.expected_reward(&ctx, EventId(v)));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_theta_panics() {
        let _ = LinearPayoffModel::new(Vector::zeros(0));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_theta_panics() {
        let _ = LinearPayoffModel::new(Vector::from([f64::NAN]));
    }
}

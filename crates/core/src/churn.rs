//! Deterministic event lifecycle (churn) schedules.
//!
//! The paper's protocol fixes the event set up front; a real EBSN
//! platform re-plans while the arrival stream is live — organisers
//! close events, expire them, or change the number of seats. A
//! [`ChurnSchedule`] is the deterministic description of that process:
//! a sorted list of [`LifecycleAction`]s, each saying "immediately
//! before round `at`, set event `event`'s remaining capacity to
//! `capacity`". Capacity `0` closes (or expires) the event; a later
//! action on the same event re-opens it.
//!
//! Determinism is the point. The schedule is pure data, generated from
//! a seed by [`ChurnSchedule::generate`] or supplied explicitly, and
//! every consumer (the simulator, the durable service's WAL, the
//! sharded coordinator) applies the *same* actions at the *same* round
//! boundaries. Durable runs additionally log each applied action as a
//! `Lifecycle` WAL record so that crash recovery replays the churn
//! byte-identically, and the OPT reference strategy sees the same
//! moving capacity vector — which is what turns the paper's fixed-OPT
//! regret into a regret against a *moving* optimum.
//!
//! Applied capacities are clamped to the instance's planned capacity
//! (see [`crate::Environment::apply_lifecycle`]): a re-plan can shrink
//! or restore an event, never grow it beyond the capacity the
//! fingerprinted instance promised.

/// One scheduled capacity re-plan: immediately before round `at`, set
/// event `event`'s remaining capacity to `capacity` (0 = close).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleAction {
    /// Round index the action fires before (actions at `at == t` apply
    /// before the round-`t` user is served).
    pub at: u64,
    /// The event being re-planned.
    pub event: u32,
    /// The new remaining capacity (0 closes the event).
    pub capacity: u32,
}

/// A deterministic, sorted schedule of [`LifecycleAction`]s.
///
/// Actions are ordered by `(at, event)`; multiple actions on the same
/// event at the same round apply in order, so the last one wins —
/// set-capacity semantics make replay idempotent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnSchedule {
    actions: Vec<LifecycleAction>,
}

impl ChurnSchedule {
    /// Builds a schedule from explicit actions (sorted internally by
    /// `(at, event)`; the supplied order breaks ties beyond that).
    pub fn new(mut actions: Vec<LifecycleAction>) -> Self {
        actions.sort_by_key(|a| (a.at, a.event));
        ChurnSchedule { actions }
    }

    /// An empty schedule (no churn).
    pub fn none() -> Self {
        ChurnSchedule::default()
    }

    /// Generates a deterministic open/close/re-plan schedule: every
    /// `period` rounds one event (chosen by hashing the seed and the
    /// tick index) is either closed, re-planned to a smaller capacity,
    /// or restored to its planned capacity, cycling so closed events
    /// re-open later. Pure function of its arguments.
    ///
    /// Returns an empty schedule when `period == 0`, there are no
    /// events, or the horizon is too short for a single tick.
    pub fn generate(capacities: &[u32], horizon: u64, period: u64, seed: u64) -> Self {
        if period == 0 || capacities.is_empty() {
            return ChurnSchedule::none();
        }
        let n = capacities.len() as u64;
        let mut actions = Vec::new();
        // Track the capacity the schedule itself has driven each event
        // to, so closes and re-opens alternate per event.
        let mut current: Vec<u32> = capacities.to_vec();
        let mut tick = 0u64;
        let mut at = period;
        while at < horizon {
            let h = splitmix(seed ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let event = (h % n) as usize;
            let planned = capacities[event];
            let capacity = if current[event] == 0 {
                // Re-open at the planned capacity.
                planned
            } else if h & (1 << 40) != 0 || planned <= 1 {
                // Close / expire.
                0
            } else {
                // Re-plan: shrink to a deterministic value in [1, planned).
                1 + ((h >> 41) % (planned as u64 - 1).max(1)) as u32
            };
            current[event] = capacity;
            actions.push(LifecycleAction {
                at,
                event: event as u32,
                capacity,
            });
            tick += 1;
            at += period;
        }
        ChurnSchedule::new(actions)
    }

    /// All actions, sorted by `(at, event)`.
    pub fn actions(&self) -> &[LifecycleAction] {
        &self.actions
    }

    /// The actions that fire immediately before round `t` (possibly
    /// empty). Binary search: `O(log n + k)`.
    pub fn actions_at(&self, t: u64) -> &[LifecycleAction] {
        let lo = self.actions.partition_point(|a| a.at < t);
        let hi = self.actions.partition_point(|a| a.at <= t);
        &self.actions[lo..hi]
    }

    /// `true` when the schedule holds no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Total number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }
}

/// SplitMix64 finaliser — the stateless hash behind
/// [`ChurnSchedule::generate`].
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_sorted_and_queryable_by_round() {
        let s = ChurnSchedule::new(vec![
            LifecycleAction {
                at: 9,
                event: 2,
                capacity: 0,
            },
            LifecycleAction {
                at: 3,
                event: 1,
                capacity: 4,
            },
            LifecycleAction {
                at: 9,
                event: 0,
                capacity: 7,
            },
        ]);
        assert_eq!(s.len(), 3);
        assert!(s.actions_at(0).is_empty());
        assert_eq!(s.actions_at(3).len(), 1);
        let at9 = s.actions_at(9);
        assert_eq!(at9.len(), 2);
        // Ties at the same round are ordered by event id.
        assert_eq!(at9[0].event, 0);
        assert_eq!(at9[1].event, 2);
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let caps = vec![5, 3, 8, 1];
        let a = ChurnSchedule::generate(&caps, 200, 10, 42);
        let b = ChurnSchedule::generate(&caps, 200, 10, 42);
        assert_eq!(a, b, "same seed must reproduce the schedule");
        assert!(!a.is_empty());
        for act in a.actions() {
            assert!(act.at < 200);
            assert!((act.event as usize) < caps.len());
            assert!(act.capacity <= caps[act.event as usize]);
        }
        let c = ChurnSchedule::generate(&caps, 200, 10, 43);
        assert_ne!(a, c, "different seed must move the schedule");
    }

    #[test]
    fn generate_reopens_closed_events() {
        // With a long horizon every event that closes must eventually
        // re-open to its planned capacity (the alternation rule).
        let caps = vec![4, 4];
        let s = ChurnSchedule::generate(&caps, 10_000, 7, 9);
        let mut saw_close = false;
        let mut saw_reopen_after_close = false;
        let mut closed = [false; 2];
        for a in s.actions() {
            let e = a.event as usize;
            if a.capacity == 0 {
                saw_close = true;
                closed[e] = true;
            } else if closed[e] {
                assert_eq!(a.capacity, caps[e], "re-open restores planned capacity");
                saw_reopen_after_close = true;
                closed[e] = false;
            }
        }
        assert!(saw_close && saw_reopen_after_close);
    }

    #[test]
    fn degenerate_inputs_yield_empty_schedules() {
        assert!(ChurnSchedule::generate(&[3, 3], 100, 0, 1).is_empty());
        assert!(ChurnSchedule::generate(&[], 100, 5, 1).is_empty());
        assert!(ChurnSchedule::generate(&[3], 5, 5, 1).is_empty());
        assert!(ChurnSchedule::none().is_empty());
    }
}

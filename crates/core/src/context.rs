//! Per-round revealed contexts.

use crate::EventId;
use fasea_linalg::Vector;

/// The `|V| × d` block of context vectors `x_{t,v}` revealed when a user
/// arrives.
///
/// Stored as one contiguous row-major buffer (row = event) so the hot
/// per-event scoring loops of the policies stream linearly through
/// memory. Rows are exposed as slices (no copies) via
/// [`ContextMatrix::context`].
#[derive(Debug, Clone, PartialEq)]
pub struct ContextMatrix {
    num_events: usize,
    dim: usize,
    data: Vec<f64>,
}

impl ContextMatrix {
    /// Creates an all-zero context block.
    pub fn zeros(num_events: usize, dim: usize) -> Self {
        ContextMatrix {
            num_events,
            dim,
            data: vec![0.0; num_events * dim],
        }
    }

    /// Builds from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != num_events * dim`.
    pub fn from_rows(num_events: usize, dim: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            num_events * dim,
            "ContextMatrix::from_rows: bad data length"
        );
        ContextMatrix {
            num_events,
            dim,
            data,
        }
    }

    /// Builds by evaluating `f(event, feature)` at every entry.
    pub fn from_fn(num_events: usize, dim: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(num_events * dim);
        for v in 0..num_events {
            for j in 0..dim {
                data.push(f(v, j));
            }
        }
        ContextMatrix {
            num_events,
            dim,
            data,
        }
    }

    /// Number of events (rows).
    #[inline]
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Feature dimension `d` (columns).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Context `x_{t,v}` of event `v` as a borrowed slice.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn context(&self, v: EventId) -> &[f64] {
        let i = v.index();
        assert!(i < self.num_events, "context: event out of range");
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row access, used by generators that normalise in place.
    #[inline]
    pub fn context_mut(&mut self, v: EventId) -> &mut [f64] {
        let i = v.index();
        assert!(i < self.num_events, "context_mut: event out of range");
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Copies row `v` into an owned [`Vector`].
    pub fn context_vector(&self, v: EventId) -> Vector {
        Vector::from(self.context(v))
    }

    /// Dot product `x_{t,v} · w` without copying the row.
    #[inline]
    pub fn dot(&self, v: EventId, w: &[f64]) -> f64 {
        debug_assert_eq!(w.len(), self.dim);
        fasea_linalg::Vector::from(self.context(v)).dot(&Vector::from(w))
    }

    /// Normalises every row to unit Euclidean length in place (zero rows
    /// stay zero), establishing the paper's `‖x_{t,v}‖ ≤ 1` precondition.
    pub fn normalize_rows(&mut self) {
        for v in 0..self.num_events {
            let row = &mut self.data[v * self.dim..(v + 1) * self.dim];
            let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > f64::EPSILON {
                for x in row {
                    *x /= norm;
                }
            }
        }
    }

    /// `true` if every row satisfies `‖x‖ ≤ 1 + tol`.
    pub fn rows_norm_bounded(&self, tol: f64) -> bool {
        (0..self.num_events).all(|v| {
            let row = self.context(EventId(v));
            row.iter().map(|x| x * x).sum::<f64>().sqrt() <= 1.0 + tol
        })
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Raw row-major data (used by memory accounting).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous() {
        let m = ContextMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.context(EventId(0)), &[1.0, 2.0, 3.0]);
        assert_eq!(m.context(EventId(1)), &[4.0, 5.0, 6.0]);
        assert_eq!(m.num_events(), 2);
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn from_fn_layout() {
        let m = ContextMatrix::from_fn(3, 2, |v, j| (v * 10 + j) as f64);
        assert_eq!(m.context(EventId(2)), &[20.0, 21.0]);
    }

    #[test]
    fn dot_matches_manual() {
        let m = ContextMatrix::from_rows(1, 3, vec![1.0, -2.0, 0.5]);
        let w = [2.0, 1.0, 4.0];
        assert!((m.dot(EventId(0), &w) - (2.0 - 2.0 + 2.0)).abs() < 1e-15);
    }

    #[test]
    fn normalize_rows_bounds_norms() {
        let mut m = ContextMatrix::from_rows(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        m.normalize_rows();
        assert!(m.rows_norm_bounded(1e-12));
        assert!((m.context(EventId(0))[0] - 0.6).abs() < 1e-12);
        assert_eq!(m.context(EventId(1)), &[0.0, 0.0]); // zero row preserved
    }

    #[test]
    fn context_vector_copies() {
        let m = ContextMatrix::from_rows(1, 2, vec![0.5, 0.7]);
        let v = m.context_vector(EventId(0));
        assert_eq!(v.as_slice(), &[0.5, 0.7]);
    }

    #[test]
    fn mutation_via_context_mut() {
        let mut m = ContextMatrix::zeros(2, 2);
        m.context_mut(EventId(1))[0] = 9.0;
        assert_eq!(m.context(EventId(1)), &[9.0, 0.0]);
        assert_eq!(m.context(EventId(0)), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "bad data length")]
    fn from_rows_checks_length() {
        let _ = ContextMatrix::from_rows(2, 2, vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "event out of range")]
    fn out_of_range_row_panics() {
        let m = ContextMatrix::zeros(1, 1);
        let _ = m.context(EventId(1));
    }

    #[test]
    fn finiteness_check() {
        let mut m = ContextMatrix::zeros(1, 2);
        assert!(m.is_finite());
        m.context_mut(EventId(0))[1] = f64::INFINITY;
        assert!(!m.is_finite());
    }
}

//! Property-based tests for fasea-core invariants.

use fasea_core::{
    validate_arrangement, Arrangement, ConflictGraph, ContextMatrix, Environment, EventId,
    LinearPayoffModel, ProblemInstance, ProblemMode, RegretAccounting, UserArrival,
};
use fasea_linalg::Vector;
use fasea_stats::CoinStream;
use proptest::prelude::*;

/// Strategy: a small conflict graph as (n, pair list).
fn conflict_graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..20).prop_flat_map(|n| {
        let pairs = proptest::collection::vec((0..n, 0..n), 0..30)
            .prop_map(move |raw| raw.into_iter().filter(|&(a, b)| a != b).collect::<Vec<_>>());
        (Just(n), pairs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conflict relation is symmetric and irreflexive, and the ratio is
    /// consistent with the pair count.
    #[test]
    fn conflict_graph_invariants((n, pairs) in conflict_graph_strategy()) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        for i in 0..n {
            prop_assert!(!g.are_conflicting(EventId(i), EventId(i)));
            for j in 0..n {
                prop_assert_eq!(
                    g.are_conflicting(EventId(i), EventId(j)),
                    g.are_conflicting(EventId(j), EventId(i))
                );
            }
        }
        let max_pairs = n * (n - 1) / 2;
        let expect = g.num_conflicts() as f64 / max_pairs as f64;
        prop_assert!((g.conflict_ratio() - expect).abs() < 1e-15);
        prop_assert!(g.num_conflicts() <= max_pairs);
        // Degrees sum to twice the edge count.
        let deg_sum: usize = (0..n).map(|i| g.degree(EventId(i))).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_conflicts());
    }

    /// Mask-based conflict queries agree with pairwise queries.
    #[test]
    fn mask_queries_agree((n, pairs) in conflict_graph_strategy(), chosen_bits in any::<u64>()) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let chosen: Vec<EventId> = (0..n)
            .filter(|i| (chosen_bits >> (i % 64)) & 1 == 1)
            .map(EventId)
            .collect();
        let mut mask = g.empty_mask();
        for &c in &chosen {
            g.mark_mask(c, &mut mask);
        }
        for v in 0..n {
            prop_assert_eq!(
                g.conflicts_with_mask(EventId(v), &mask),
                g.conflicts_with_any(EventId(v), &chosen),
                "event {}", v
            );
        }
    }

    /// validate_arrangement accepts exactly the feasible arrangements
    /// produced by a reference checker.
    #[test]
    fn validation_matches_reference(
        (n, pairs) in conflict_graph_strategy(),
        picks in proptest::collection::vec(0usize..20, 0..8),
        caps in proptest::collection::vec(0u32..3, 2..20),
        cu in 0u32..6
    ) {
        let g = ConflictGraph::from_pairs(n, &pairs);
        let mut caps = caps;
        caps.resize(n, 1);
        let events: Vec<EventId> = picks.into_iter().filter(|&p| p < n).map(EventId).collect();
        let arr = Arrangement::new(events.clone());

        // Reference checker.
        let mut feasible = events.len() <= cu as usize;
        for (i, &v) in events.iter().enumerate() {
            if caps[v.index()] == 0 { feasible = false; }
            if events[..i].contains(&v) { feasible = false; }
            for &w in &events[..i] {
                if g.are_conflicting(v, w) { feasible = false; }
            }
        }
        prop_assert_eq!(
            validate_arrangement(&arr, &g, &caps, cu).is_ok(),
            feasible
        );
    }

    /// Environment conservation law: capacity consumed == rewards earned,
    /// and rewards never exceed arranged slots.
    #[test]
    fn environment_conservation(
        theta in proptest::collection::vec(-1.0f64..1.0, 1..6),
        seed in any::<u64>(),
        rounds in 1u64..40
    ) {
        let d = theta.len();
        let n = 6usize;
        let inst = ProblemInstance::new(
            vec![100; n],
            ConflictGraph::new(n),
            d,
            ProblemMode::Fasea,
        );
        let total_before: u64 = inst.total_capacity();
        let mut env = Environment::new(
            inst,
            LinearPayoffModel::new_normalized(Vector::from(theta)),
            CoinStream::new(seed),
        );
        let mut acc = RegretAccounting::new();
        for t in 0..rounds {
            let mut ctx = ContextMatrix::from_fn(n, d, |v, j| {
                ((t as usize + v * 3 + j * 7) % 11) as f64 / 11.0 - 0.3
            });
            ctx.normalize_rows();
            let user = UserArrival::new(3, ctx);
            let arr = Arrangement::new(vec![EventId((t as usize) % n)]);
            let out = env.step(t, &user, &arr).unwrap();
            prop_assert!(out.reward as usize <= arr.len());
            acc.record_round(arr.len(), out.reward);
        }
        let total_after: u64 = env.remaining().iter().map(|&c| c as u64).sum();
        prop_assert_eq!(total_before - total_after, acc.total_rewards());
        prop_assert!(acc.accept_ratio() >= 0.0 && acc.accept_ratio() <= 1.0);
    }

    /// Clamped acceptance probabilities are honoured: p=0 never accepts,
    /// p=1 always accepts, regardless of the coin seed.
    #[test]
    fn deterministic_extremes(seed in any::<u64>(), t in 0u64..1000) {
        let inst = ProblemInstance::new(
            vec![10, 10],
            ConflictGraph::new(2),
            1,
            ProblemMode::Fasea,
        );
        let mut env = Environment::new(
            inst,
            LinearPayoffModel::new(Vector::from([1.0])),
            CoinStream::new(seed),
        );
        let ctx = ContextMatrix::from_rows(2, 1, vec![1.0, -1.0]);
        let user = UserArrival::new(2, ctx);
        let arr = Arrangement::new(vec![EventId(0), EventId(1)]);
        let out = env.step(t, &user, &arr).unwrap();
        prop_assert_eq!(out.feedback.accepted(), &[true, false]);
    }
}

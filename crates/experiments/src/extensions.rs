//! Extension experiments beyond the paper's evaluation, implementing
//! its two Remarks (Section 2):
//!
//! * `ext1` — Remark 1: per-user θ's. Sweeps population heterogeneity
//!   and races a shared learner against per-user learners over shared
//!   event capacities.
//! * `ext2` — Remark 2: time-varying event sets `V_t`. Runs the paper's
//!   algorithm set under a rotating weekday-style calendar.

use crate::common::exp_dir;
use crate::Options;
use fasea_bandit::{Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea_datagen::{
    MultiUserConfig, MultiUserWorkload, RotatingSchedule, SyntheticConfig, SyntheticWorkload,
};
use fasea_sim::{run_multi_user, run_rotating, AsciiTable, LearnerArchitecture};

/// Remark 1: shared vs per-user learners across heterogeneity.
pub fn per_user_models(opts: &Options) -> Result<(), String> {
    let dim = 10usize;
    let population = 8usize;
    let horizon = opts.horizon.min(20_000); // per-cell cost is 2 runs
    let dir = exp_dir(opts, "ext1");

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut table = AsciiTable::new(&["heterogeneity", "cos-sim", "shared", "per-user", "OPT"]);
    for &h in &[0.0f64, 0.25, 0.5, 0.75, 1.0] {
        let workload = MultiUserWorkload::generate(MultiUserConfig {
            base: SyntheticConfig {
                num_events: 100,
                dim,
                horizon,
                seed: opts.seed,
                ..Default::default()
            },
            population,
            heterogeneity: h,
        });
        let shared = run_multi_user(
            &workload,
            LearnerArchitecture::Shared(Box::new(LinUcb::new(dim, 1.0, 2.0))),
            horizon,
            opts.seed ^ 0xE1,
        );
        let per_user = run_multi_user(
            &workload,
            LearnerArchitecture::PerUser(Box::new(move |_u| {
                Box::new(LinUcb::new(dim, 1.0, 2.0)) as Box<dyn Policy>
            })),
            horizon,
            opts.seed ^ 0xE1,
        );
        let sim = workload.mean_pairwise_similarity();
        table.row(vec![
            format!("{h:.2}"),
            format!("{sim:.3}"),
            shared.accounting.total_rewards().to_string(),
            per_user.accounting.total_rewards().to_string(),
            shared.opt_rewards.to_string(),
        ]);
        rows.push(vec![
            h,
            sim,
            shared.accounting.total_rewards() as f64,
            per_user.accounting.total_rewards() as f64,
            shared.opt_rewards as f64,
        ]);
    }
    println!("ext1 — Remark 1 (per-user θ), {horizon} rounds, {population} users:");
    println!("{}", table.render());
    fasea_sim::write_csv(
        &dir.join("ext1_architectures.csv"),
        &["heterogeneity", "cos_sim", "shared", "per_user", "opt"],
        &rows,
    )
    .map_err(|e| e.to_string())
}

/// Remark 2: the paper's algorithm set under a rotating calendar.
pub fn rotating_events(opts: &Options) -> Result<(), String> {
    let dim = 10usize;
    let num_events = 100usize;
    let horizon = opts.horizon.min(20_000);
    let dir = exp_dir(opts, "ext2");

    let workload = SyntheticWorkload::generate(SyntheticConfig {
        num_events,
        dim,
        horizon,
        seed: opts.seed,
        ..Default::default()
    });
    let schedule = RotatingSchedule::new(num_events, 7, 50, 0.15, opts.seed ^ 0xE2);
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(LinUcb::new(dim, 1.0, 2.0)),
        Box::new(ThompsonSampling::new(dim, 1.0, 0.1, opts.seed ^ 1)),
        Box::new(Exploit::new(dim, 1.0)),
        Box::new(RandomPolicy::new(opts.seed ^ 2)),
    ];
    let results = run_rotating(&workload, &schedule, &mut policies, horizon, opts.seed ^ 3);

    let mut table = AsciiTable::new(&["Algorithm", "rewards", "accept ratio", "regret"]);
    let mut rows = Vec::new();
    for r in &results {
        let regret = r.opt_rewards as i64 - r.accounting.total_rewards() as i64;
        table.row(vec![
            r.name.clone(),
            r.accounting.total_rewards().to_string(),
            format!("{:.3}", r.accounting.accept_ratio()),
            regret.to_string(),
        ]);
        rows.push(vec![
            r.accounting.total_rewards() as f64,
            r.accounting.accept_ratio(),
            regret as f64,
        ]);
    }
    println!("ext2 — Remark 2 (rotating V_t), {horizon} rounds, 7 slots:");
    println!("{}", table.render());
    fasea_sim::write_csv(
        &dir.join("ext2_rotating.csv"),
        &["rewards", "accept_ratio", "regret"],
        &rows,
    )
    .map_err(|e| e.to_string())
}

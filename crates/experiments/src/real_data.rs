//! Figure 10 and Table 7: the real-dataset experiments.

use crate::common::{exp_dir, paper_policy_set, AlgoParams};
use crate::Options;
use fasea_bandit::{Policy, StaticScorePolicy};
use fasea_datagen::RealDataset;
use fasea_sim::sweep::run_parallel;
use fasea_sim::{real_runner::full_knowledge_ratio, run_real, AsciiTable, CuMode, RealRunConfig};

/// Seed of the canonical real-dataset analogue (the collection year).
pub const REAL_DATA_SEED: u64 = 2016;

fn policy_set_with_online(dataset: &RealDataset, user: usize, seed: u64) -> Vec<Box<dyn Policy>> {
    let mut policies = paper_policy_set(fasea_datagen::real::DIM, AlgoParams::default(), seed);
    policies.push(Box::new(StaticScorePolicy::new(
        "Online",
        dataset.online_greedy_scores(user),
    )));
    policies
}

/// Figure 10: user u₁ — accept ratio over the first 1000 rounds and
/// total regret over 10 000 rounds, for `c_u = 5` and `c_u = full`.
pub fn figure10(opts: &Options) -> Result<(), String> {
    let dataset = RealDataset::generate(REAL_DATA_SEED);
    let dir = exp_dir(opts, "fig10");
    for mode in [CuMode::Five, CuMode::Full] {
        let rounds = opts.real_regret_rounds;
        let checkpoints: Vec<u64> = (1..=rounds.min(1000))
            .filter(|t| t % 10 == 0)
            .chain(((rounds.min(1000) + 1)..=rounds).filter(|t| t % 100 == 0))
            .collect();
        let cfg = RealRunConfig {
            user: 0,
            cu_mode: mode,
            rounds,
            checkpoints,
        };
        let mut policies = policy_set_with_online(&dataset, 0, opts.seed);
        let results = run_real(&dataset, &cfg, &mut policies);

        // Accept-ratio series (first 1000 rounds) and regret series (all).
        let mut header = vec!["t".to_string()];
        header.extend(results.iter().map(|r| r.name.clone()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let n_cp = results[0].checkpoints.len();
        let mut ar_rows = Vec::new();
        let mut regret_rows = Vec::new();
        for i in 0..n_cp {
            let t = results[0].checkpoints[i].0;
            let mut ar = vec![t as f64];
            let mut rg = vec![t as f64];
            for r in &results {
                ar.push(r.checkpoints[i].1);
                rg.push(r.checkpoints[i].2 as f64);
            }
            if t <= 1000 {
                ar_rows.push(ar);
            }
            regret_rows.push(rg);
        }
        let label = format!("u1_cu{}", mode.label());
        fasea_sim::write_csv(
            &dir.join(format!("{label}_accept_ratio.csv")),
            &header_refs,
            &ar_rows,
        )
        .map_err(|e| e.to_string())?;
        fasea_sim::write_csv(
            &dir.join(format!("{label}_total_regrets.csv")),
            &header_refs,
            &regret_rows,
        )
        .map_err(|e| e.to_string())?;

        let fk = full_knowledge_ratio(&dataset, 0, mode);
        let summary: Vec<String> = results
            .iter()
            .map(|r| format!("{}={:.2}", r.name, r.accounting.accept_ratio()))
            .collect();
        println!(
            "[fig10 c_u={}] final accept ratios: {}, Full Knowledge={fk:.2}",
            mode.label(),
            summary.join(", ")
        );
    }
    Ok(())
}

/// Table 7: accept ratios after `opts.real_rounds` rounds for every
/// user × capacity regime, plus the analytic Full Knowledge row, the
/// Online \[39\] comparator and the `c_u` row.
pub fn table7(opts: &Options) -> Result<(), String> {
    let dataset = RealDataset::generate(REAL_DATA_SEED);
    let dir = exp_dir(opts, "table7");
    for mode in [CuMode::Five, CuMode::Full] {
        // One job per user; each runs the six policies for this cell.
        let jobs: Vec<_> = (0..dataset.num_users())
            .map(|user| {
                let dataset = dataset.clone();
                let opts = opts.clone();
                move || {
                    let cfg = RealRunConfig {
                        user,
                        cu_mode: mode,
                        rounds: opts.real_rounds,
                        checkpoints: vec![opts.real_rounds],
                    };
                    let mut policies =
                        policy_set_with_online(&dataset, user, opts.seed ^ user as u64);
                    let results = run_real(&dataset, &cfg, &mut policies);
                    let ratios: Vec<(String, f64)> = results
                        .iter()
                        .map(|r| (r.name.clone(), r.accounting.accept_ratio()))
                        .collect();
                    (user, ratios)
                }
            })
            .collect();
        let per_user = run_parallel(jobs, opts.threads);

        // Rows: UCB, TS, eGreedy, Exploit, Random, Full Kn., Online, c_u.
        let policy_names: Vec<String> = per_user[0].1.iter().map(|(n, _)| n.clone()).collect();
        let mut header = vec!["row".to_string()];
        header.extend((1..=dataset.num_users()).map(|u| format!("u{u}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = AsciiTable::new(&header_refs);
        let mut csv = fasea_sim::CsvWriter::create(
            &dir.join(format!("table7_cu{}.csv", mode.label())),
            &header_refs,
        )
        .map_err(|e| e.to_string())?;

        let mut emit = |name: &str, values: Vec<String>| -> Result<(), String> {
            let mut fields = vec![name.to_string()];
            fields.extend(values);
            table.row(fields.clone());
            csv.row(&fields).map_err(|e| e.to_string())
        };

        for name in &policy_names {
            let values: Vec<String> = per_user
                .iter()
                .map(|(_, ratios)| {
                    let (_, r) = ratios.iter().find(|(n, _)| n == name).unwrap();
                    format!("{r:.2}")
                })
                .collect();
            emit(name, values)?;
        }
        let fk_values: Vec<String> = (0..dataset.num_users())
            .map(|u| format!("{:.2}", full_knowledge_ratio(&dataset, u, mode)))
            .collect();
        emit("Full Kn.", fk_values)?;
        let cu_values: Vec<String> = (0..dataset.num_users())
            .map(|u| mode.capacity(&dataset, u).to_string())
            .collect();
        emit("c_u", cu_values)?;
        csv.finish().map_err(|e| e.to_string())?;

        println!("Table 7, c_u = {}:", mode.label());
        println!("{}", table.render());
    }
    Ok(())
}

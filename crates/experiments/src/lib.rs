//! # fasea-experiments
//!
//! Regenerates every table and figure of the FASEA paper's evaluation
//! (Section 5). Each experiment is a function that runs the relevant
//! simulations and writes CSV series into an output directory; the
//! `fasea-exp` binary dispatches on a subcommand per experiment id.
//!
//! | Subcommand | Paper artefact |
//! |---|---|
//! | `fig1` | Figure 1 — default-setting accept ratio / rewards / regrets / regret ratio (also writes Figure 2's Kendall series) |
//! | `fig2` | Figure 2 — Kendall rank correlation vs OPT |
//! | `fig3` | Figure 3 — effect of \|V\| ∈ {100, 1000} |
//! | `fig4` | Figure 4 — effect of d ∈ {1, 5, 10, 15} |
//! | `fig5` | Figure 5 — θ/x under Normal, Power, Shuffle |
//! | `fig6` | Figure 6 — c_v ∼ N(100,100) and N(500,200) |
//! | `fig7` | Figure 7 — cr ∈ {0, 0.5, 0.75, 1} |
//! | `fig8` | Figure 8 — λ ∈ {0.5, 1, 2} |
//! | `fig9` | Figure 9 — α / δ / ε parameter sweeps |
//! | `fig10` | Figure 10 — real dataset, user u₁ |
//! | `fig11`–`fig13` | Figures 11–13 — basic contextual bandit ablations |
//! | `table5` | Table 5 — time/memory vs \|V\| |
//! | `table6` | Table 6 — time/memory vs d |
//! | `table7` | Table 7 — real-dataset accept ratios, all 19 users |
//! | `ext1` | Remark 1 extension — per-user θ's, shared vs per-user learners |
//! | `ext2` | Remark 2 extension — rotating event sets `V_t` |
//! | `verify` | machine-check the paper's qualitative shapes against `results/` |
//! | `plots` | emit a gnuplot script next to every series CSV |
//! | `all` | every experiment above (not `verify`/`plots`) |
//!
//! The default horizon is the paper's `T = 100 000`; pass `--t N` to
//! scale down for smoke runs (the shipped integration tests use small
//! horizons). Output lands under `results/<id>/`.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod basic;
pub mod bench_check;
pub mod common;
pub mod default_setting;
pub mod extensions;
pub mod multi_user_cmd;
pub mod params;
pub mod real_data;
pub mod serve_cmd;
pub mod sweeps;
pub mod tables;
pub mod verify;

use std::path::PathBuf;

/// Global experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Horizon `T` for synthetic runs (paper: 100 000).
    pub horizon: u64,
    /// Output directory root (default `results/`).
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Max parallel experiment cells (0 = available parallelism).
    pub threads: usize,
    /// Rounds for real-data accept-ratio runs (paper: 1000).
    pub real_rounds: u64,
    /// Rounds for the real-data regret panel (paper: 10 000).
    pub real_regret_rounds: u64,
    /// Independent replications of the default-setting experiment
    /// (different workload + feedback seeds); 1 reproduces the paper's
    /// single-run figures, larger values add mean ± std error bars.
    pub replications: u32,
    /// Intra-round scoring threads per simulation (0/1 = serial; N > 1
    /// installs a shared [`fasea_bandit::ScorePool`] — results are
    /// bit-identical either way).
    pub score_threads: usize,
    /// Arrangement oracle every simulation runs through
    /// (`--oracle greedy|tabu`; greedy reproduces the paper exactly).
    pub oracle: fasea_bandit::OracleOptions,
    /// Event-churn period in rounds (`--churn N`): every `N` rounds one
    /// event is closed, shrunk or re-opened by a deterministic
    /// [`fasea_core::ChurnSchedule`]. 0 (the default) keeps the paper's
    /// static event universe.
    pub churn_period: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            horizon: 100_000,
            out_dir: PathBuf::from("results"),
            seed: 0x5EED_FA5E_A001,
            threads: 0,
            real_rounds: 1000,
            real_regret_rounds: 10_000,
            replications: 1,
            score_threads: 0,
            oracle: fasea_bandit::OracleOptions::greedy(),
            churn_period: 0,
        }
    }
}

/// Runs one experiment by id. Returns an error message for unknown ids.
pub fn run_experiment(id: &str, opts: &Options) -> Result<(), String> {
    match id {
        "fig1" | "fig2" => default_setting::run(opts),
        "fig3" => sweeps::effect_of_num_events(opts),
        "fig4" => sweeps::effect_of_dimension(opts),
        "fig5" => sweeps::effect_of_distributions(opts),
        "fig6" => sweeps::effect_of_event_capacity(opts),
        "fig7" => sweeps::effect_of_conflicts(opts),
        "fig8" => params::effect_of_lambda(opts),
        "fig9" => params::effect_of_alpha_delta_epsilon(opts),
        "fig10" => real_data::figure10(opts),
        "fig11" => basic::vary_num_events(opts),
        "fig12" => basic::vary_dimension(opts),
        "fig13" => basic::vary_distributions(opts),
        "table5" => tables::table5(opts),
        "table6" => tables::table6(opts),
        "table7" => real_data::table7(opts),
        "ext1" => extensions::per_user_models(opts),
        "ext2" => extensions::rotating_events(opts),
        "verify" => verify::verify(opts),
        "plots" => {
            // Emit a gnuplot script next to every series CSV produced by
            // earlier runs, so figures render with stock gnuplot.
            let mut total = 0usize;
            for id in ALL_EXPERIMENTS.iter().chain(["fig2"].iter()) {
                total += fasea_sim::plot::write_scripts_for_dir(&opts.out_dir.join(id), true)
                    .map_err(|e| e.to_string())?;
            }
            println!(
                "wrote {total} gnuplot scripts under {}",
                opts.out_dir.display()
            );
            Ok(())
        }
        "all" => {
            for id in ALL_EXPERIMENTS {
                println!("=== {id} ===");
                run_experiment(id, opts)?;
            }
            Ok(())
        }
        other => Err(format!(
            "unknown experiment '{other}'; valid: {:?} or 'all'",
            ALL_EXPERIMENTS
        )),
    }
}

/// Every individual experiment id, in paper order, plus the two Remark
/// extensions. (`fig2` is produced by the `fig1` run and therefore not
/// repeated.)
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
    "fig13", "table5", "table6", "table7", "ext1", "ext2",
];

//! Tables 5 and 6: average per-round running time and memory.

use crate::common::{exp_dir, run_cell, AlgoParams};
use crate::Options;
use fasea_datagen::SyntheticConfig;
use fasea_sim::sweep::run_parallel;
use fasea_sim::{AsciiTable, SimulationResult};
use std::path::Path;

/// Policy display order for the efficiency tables (paper order; OPT is
/// excluded as in the paper).
const TABLE_POLICIES: [&str; 5] = ["UCB", "TS", "eGreedy", "Exploit", "Random"];

fn efficiency_rows(results: &[(String, SimulationResult)]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut time_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for name in TABLE_POLICIES {
        let mut time_row = Vec::new();
        let mut mem_row = Vec::new();
        for (_, result) in results {
            let p = result
                .policies
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("policy {name} missing from results"));
            time_row.push(p.avg_round_secs);
            mem_row.push(p.memory_mb);
        }
        time_rows.push(time_row);
        mem_rows.push(mem_row);
    }
    (time_rows, mem_rows)
}

fn print_and_write(
    dir: &Path,
    id: &str,
    col_label: &str,
    results: &[(String, SimulationResult)],
) -> Result<(), String> {
    let (time_rows, mem_rows) = efficiency_rows(results);
    let mut header = vec!["Algorithm".to_string()];
    header.extend(results.iter().map(|(l, _)| l.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    for (title, rows, path, fmt) in [
        (
            "Avg Time (sec)",
            &time_rows,
            dir.join(format!("{id}_avg_time.csv")),
            false,
        ),
        (
            "Memory (MB)",
            &mem_rows,
            dir.join(format!("{id}_memory.csv")),
            true,
        ),
    ] {
        let mut table = AsciiTable::new(&header_refs);
        let mut csv_rows = Vec::new();
        for (i, name) in TABLE_POLICIES.iter().enumerate() {
            let mut fields = vec![name.to_string()];
            fields.extend(rows[i].iter().map(|&x| {
                if fmt {
                    format!("{x:.2}")
                } else {
                    format!("{x:.2e}")
                }
            }));
            table.row(fields);
            csv_rows.push(rows[i].clone());
        }
        println!("{id} — {title} (columns: {col_label})");
        println!("{}", table.render());
        // CSV: numeric body with one row per algorithm (alg order fixed).
        let csv_header: Vec<&str> = header_refs[1..].to_vec();
        fasea_sim::write_csv(&path, &csv_header, &csv_rows).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Table 5: `|V| ∈ {100, 500, 1000}` at the default setting.
pub fn table5(opts: &Options) -> Result<(), String> {
    let jobs: Vec<_> = [100usize, 500, 1000]
        .iter()
        .map(|&n| {
            let opts = opts.clone();
            move || {
                let config = SyntheticConfig {
                    num_events: n,
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                };
                (
                    format!("|V|={n}"),
                    run_cell(config, AlgoParams::default(), &opts, false),
                )
            }
        })
        .collect();
    let results = run_parallel(jobs, opts.threads);
    print_and_write(&exp_dir(opts, "table5"), "table5", "|V|", &results)
}

/// Table 6: `d ∈ {1, 5, 10, 15}` at the default setting.
pub fn table6(opts: &Options) -> Result<(), String> {
    let jobs: Vec<_> = [1usize, 5, 10, 15]
        .iter()
        .map(|&d| {
            let opts = opts.clone();
            move || {
                let config = SyntheticConfig {
                    dim: d,
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                };
                (
                    format!("d={d}"),
                    run_cell(config, AlgoParams::default(), &opts, false),
                )
            }
        })
        .collect();
    let results = run_parallel(jobs, opts.threads);
    print_and_write(&exp_dir(opts, "table6"), "table6", "d", &results)
}

//! Figures 1 and 2: the default-setting run.
//!
//! One simulation at the Table 4 defaults produces all five series the
//! two figures plot: cumulative accept ratio, total rewards, total
//! regrets, regret ratio (Figure 1 a–d) and the Kendall rank correlation
//! of each policy's selection scores against the ground-truth expected
//! rewards (Figure 2).

use crate::common::{
    exp_dir, print_summary, run_cell, write_kendall_csv, write_metric_csvs, AlgoParams,
};
use crate::Options;
use fasea_datagen::SyntheticConfig;
use fasea_stats::crn::mix64;
use fasea_stats::RunningStats;

/// Runs the default-setting experiment and writes
/// `results/fig1/default_*.csv` plus `results/fig2/default_kendall.csv`.
/// With `--reps N > 1`, additionally replicates the run across N
/// independent seeds and writes per-replication final metrics plus a
/// mean ± std summary to `results/fig1/replications.csv`.
pub fn run(opts: &Options) -> Result<(), String> {
    if opts.replications > 1 {
        replicate(opts)?;
    }
    let config = SyntheticConfig {
        seed: opts.seed,
        horizon: opts.horizon,
        ..Default::default()
    };
    let result = run_cell(config, AlgoParams::default(), opts, true);
    print_summary("fig1 default", &result);
    if let Some(t) = result.reference_exhausted_at {
        println!(
            "  OPT exhausted all event capacity at t = {t} — expect the paper's sudden \
             total-regret drop near this round (paper observed t = 65664)."
        );
    }
    let fig1 = exp_dir(opts, "fig1");
    write_metric_csvs(&fig1, "default", &result).map_err(|e| e.to_string())?;
    let fig2 = exp_dir(opts, "fig2");
    write_kendall_csv(&fig2, "default", &result).map_err(|e| e.to_string())?;

    // Figure 1c's shape, straight in the log: total regret vs t.
    let series: Vec<(&str, Vec<f64>)> = result
        .policies
        .iter()
        .map(|p| {
            (
                p.name.as_str(),
                p.checkpoints
                    .iter()
                    .map(|c| c.total_regret as f64)
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();
    let series_refs: Vec<(&str, &[f64])> = series.iter().map(|(n, s)| (*n, s.as_slice())).collect();
    println!("total regret vs t (Figure 1c shape):");
    println!("{}", fasea_sim::ascii_chart(&series_refs, 72, 14));
    Ok(())
}

/// Replicates the default-setting run across independent seeds and
/// summarises final accept ratios as mean ± std per policy.
fn replicate(opts: &Options) -> Result<(), String> {
    let reps = opts.replications;
    let mut per_policy: Vec<(String, RunningStats)> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for r in 0..reps {
        let seed = mix64(opts.seed ^ (r as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let config = SyntheticConfig {
            seed,
            horizon: opts.horizon,
            ..Default::default()
        };
        let rep_opts = Options {
            seed,
            ..opts.clone()
        };
        let result = run_cell(config, AlgoParams::default(), &rep_opts, false);
        if per_policy.is_empty() {
            per_policy = result
                .policies
                .iter()
                .map(|p| (p.name.clone(), RunningStats::new()))
                .collect();
        }
        let mut row = vec![r as f64];
        for (i, p) in result.policies.iter().enumerate() {
            per_policy[i].1.push(p.accounting.accept_ratio());
            row.push(p.accounting.accept_ratio());
        }
        rows.push(row);
        print_summary(&format!("fig1 rep {}", r + 1), &result);
    }
    let mut header = vec!["rep".to_string()];
    header.extend(per_policy.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    fasea_sim::write_csv(
        &exp_dir(opts, "fig1").join("replications.csv"),
        &header_refs,
        &rows,
    )
    .map_err(|e| e.to_string())?;
    println!("final accept ratios over {reps} replications (mean ± std):");
    for (name, stats) in &per_policy {
        println!(
            "  {name:<8} {:.4} ± {:.4}",
            stats.mean(),
            stats.sample_variance().sqrt()
        );
    }
    Ok(())
}

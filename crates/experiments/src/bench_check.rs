//! `fasea-exp check-bench` — schema gate for the committed
//! `BENCH_*.json` files.
//!
//! Every bench in `crates/bench/benches/` can emit a machine-readable
//! result table via `FASEA_BENCH_JSON`; the repository commits those
//! tables (`BENCH_scoring.json`, `BENCH_wal.json`, `BENCH_serve.json`,
//! …) as the record of the measured numbers. This module validates
//! that each file still parses and keeps the shared shape, so a bench
//! edit that drifts the output format fails `scripts/check.sh` instead
//! of silently producing an unreadable artefact:
//!
//! * the top level is a JSON object with a string `"bench"`, a string
//!   `"units"`, and a non-empty `"cells"` array;
//! * every cell is an object whose values are strings, finite numbers,
//!   booleans, or `null` — no nested containers, so any CSV/tooling
//!   consumer can flatten a cell without recursion.
//!
//! The parser is a ~100-line recursive-descent reader over `str` —
//! deliberately std-only, matching the workspace's no-new-dependencies
//! rule, and strict enough for the gate (it rejects trailing input,
//! unknown escapes it cannot decode, and non-finite numbers).

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parsed JSON value. Only what the bench files need.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (the bench writers never emit NaN/inf).
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, key-ordered for deterministic error messages.
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            what: what.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte 0x{other:02x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Number(n)),
            Ok(_) => self.err(format!("non-finite number '{text}'")),
            Err(_) => self.err(format!("invalid number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        Some(b'u') => {
                            // \uXXXX — enough for the bench writers,
                            // which never emit surrogate pairs.
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    self.pos += 4;
                                    c
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole UTF-8 scalar, not just one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            at: self.pos,
                            what: "invalid UTF-8 in string".into(),
                        })?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after document");
    }
    Ok(value)
}

/// Validates one bench-result document against the shared schema.
///
/// # Errors
/// A human-readable description of the first violation.
pub fn check_bench_doc(doc: &Json) -> Result<(), String> {
    let Json::Object(top) = doc else {
        return Err(format!(
            "top level must be an object, got {}",
            doc.type_name()
        ));
    };
    for key in ["bench", "units"] {
        match top.get(key) {
            Some(Json::String(s)) if !s.is_empty() => {}
            Some(other) => {
                return Err(format!(
                    "\"{key}\" must be a non-empty string, got {}",
                    other.type_name()
                ))
            }
            None => return Err(format!("missing required key \"{key}\"")),
        }
    }
    let cells = match top.get("cells") {
        Some(Json::Array(cells)) => cells,
        Some(other) => {
            return Err(format!(
                "\"cells\" must be an array, got {}",
                other.type_name()
            ))
        }
        None => return Err("missing required key \"cells\"".into()),
    };
    if cells.is_empty() {
        return Err("\"cells\" must not be empty".into());
    }
    // Optional metadata: benches whose numbers depend on available
    // parallelism (e.g. shard_scaling) record the host's core count so
    // the committed table is interpretable — when present it must be a
    // positive number.
    if let Some(host_cores) = top.get("host_cores") {
        match host_cores {
            Json::Number(n) if *n > 0.0 => {}
            other => {
                return Err(format!(
                    "\"host_cores\" must be a positive number when present, got {}",
                    match other {
                        Json::Number(n) => format!("{n}"),
                        other => other.type_name().to_string(),
                    }
                ))
            }
        }
    }
    for (i, cell) in cells.iter().enumerate() {
        let Json::Object(fields) = cell else {
            return Err(format!(
                "cells[{i}] must be an object, got {}",
                cell.type_name()
            ));
        };
        if fields.is_empty() {
            return Err(format!("cells[{i}] must not be empty"));
        }
        for (key, value) in fields {
            match value {
                Json::Null | Json::Bool(_) | Json::Number(_) | Json::String(_) => {}
                nested => {
                    return Err(format!(
                        "cells[{i}].{key} must be a scalar or null, got {}",
                        nested.type_name()
                    ))
                }
            }
        }
    }
    check_single_core_speedups(top, cells)?;
    if matches!(top.get("bench"), Some(Json::String(name)) if name == "oracle_compare") {
        check_oracle_compare_doc(top, cells)?;
    }
    if matches!(top.get("bench"), Some(Json::String(name)) if name == "models_residency") {
        check_models_residency_doc(top, cells)?;
    }
    Ok(())
}

/// A speedup above 1× measured on a single-core host cannot come from
/// parallel execution — it is timer noise, queueing-artefact, or a
/// config error — so a table claiming one on `host_cores: 1` must also
/// carry a top-level `"caveat"` string explaining the number, or the
/// gate rejects it. Applies to `parallel_speedup` and every
/// `speedup_vs_*` cell field.
fn check_single_core_speedups(top: &BTreeMap<String, Json>, cells: &[Json]) -> Result<(), String> {
    if !matches!(top.get("host_cores"), Some(Json::Number(n)) if *n == 1.0) {
        return Ok(());
    }
    let has_caveat = matches!(top.get("caveat"), Some(Json::String(s)) if !s.is_empty());
    for (i, cell) in cells.iter().enumerate() {
        let Json::Object(fields) = cell else {
            unreachable!("cell shape checked by the shared schema");
        };
        for (key, value) in fields {
            let is_speedup = key == "parallel_speedup" || key.starts_with("speedup_vs_");
            if !is_speedup {
                continue;
            }
            if let Json::Number(n) = value {
                if *n > 1.0 && !has_caveat {
                    return Err(format!(
                        "cells[{i}].{key} claims a {n}x speedup on a single-core host \
                         (host_cores: 1); add a top-level \"caveat\" string explaining \
                         the number or re-measure on a multi-core host"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The bench-specific schema for `BENCH_oracle.json` (the
/// `oracle_compare` bench): latency numbers comparing oracles are only
/// interpretable when each row names the oracle and the instance size,
/// carries a throughput, and the file records the host's parallelism.
fn check_oracle_compare_doc(top: &BTreeMap<String, Json>, cells: &[Json]) -> Result<(), String> {
    if top.get("host_cores").is_none() {
        return Err("oracle_compare: missing required key \"host_cores\"".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        let Json::Object(fields) = cell else {
            unreachable!("cell shape checked by the shared schema");
        };
        match fields.get("oracle") {
            Some(Json::String(s)) if !s.is_empty() => {}
            Some(other) => {
                return Err(format!(
                    "oracle_compare: cells[{i}].oracle must be a non-empty string, got {}",
                    other.type_name()
                ))
            }
            None => return Err(format!("oracle_compare: cells[{i}] is missing \"oracle\"")),
        }
        for key in ["num_events", "rounds_per_sec"] {
            match fields.get(key) {
                Some(Json::Number(n)) if *n > 0.0 => {}
                Some(other) => {
                    return Err(format!(
                        "oracle_compare: cells[{i}].{key} must be a positive number, got {}",
                        match other {
                            Json::Number(n) => format!("{n}"),
                            other => other.type_name().to_string(),
                        }
                    ))
                }
                None => return Err(format!("oracle_compare: cells[{i}] is missing \"{key}\"")),
            }
        }
    }
    Ok(())
}

/// The bench-specific schema for `BENCH_models.json` (the
/// `models_residency` bench): residency numbers are only interpretable
/// when each cell says which tiering mode produced them — the cohort
/// count (`0` = flat), the per-user state representation, the sketch
/// rank, and how many selections the cohort tier actually served — and
/// the file records the host's parallelism.
fn check_models_residency_doc(top: &BTreeMap<String, Json>, cells: &[Json]) -> Result<(), String> {
    if top.get("host_cores").is_none() {
        return Err("models_residency: missing required key \"host_cores\"".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        let Json::Object(fields) = cell else {
            unreachable!("cell shape checked by the shared schema");
        };
        match fields.get("state") {
            Some(Json::String(s)) if !s.is_empty() => {}
            Some(other) => {
                return Err(format!(
                    "models_residency: cells[{i}].state must be a non-empty string, got {}",
                    other.type_name()
                ))
            }
            None => return Err(format!("models_residency: cells[{i}] is missing \"state\"")),
        }
        for key in ["cohorts", "sketch_rank", "cohort_hits"] {
            match fields.get(key) {
                Some(Json::Number(n)) if *n >= 0.0 => {}
                Some(other) => {
                    return Err(format!(
                        "models_residency: cells[{i}].{key} must be a non-negative number, got {}",
                        match other {
                            Json::Number(n) => format!("{n}"),
                            other => other.type_name().to_string(),
                        }
                    ))
                }
                None => return Err(format!("models_residency: cells[{i}] is missing \"{key}\"")),
            }
        }
    }
    Ok(())
}

/// Reads and validates one `BENCH_*.json` file.
///
/// # Errors
/// I/O, parse, or schema failures, prefixed with the file name.
pub fn check_bench_file(path: &Path) -> Result<(), String> {
    let name = path.display();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{name}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{name}: {e}"))?;
    check_bench_doc(&doc).map_err(|e| format!("{name}: {e}"))
}

/// `fasea-exp check-bench [FILE...]`: validates the given files, or —
/// with no arguments — every `BENCH_*.json` in the current directory.
///
/// # Errors
/// The first failing file's diagnostic, or a note that no files were
/// found (an empty gate would pass vacuously forever).
pub fn check_bench_main(args: &[String]) -> Result<(), String> {
    let files: Vec<std::path::PathBuf> = if args.is_empty() {
        let mut found: Vec<_> = std::fs::read_dir(".")
            .map_err(|e| format!("read current directory: {e}"))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name().is_some_and(|n| {
                    let n = n.to_string_lossy();
                    n.starts_with("BENCH_") && n.ends_with(".json")
                })
            })
            .collect();
        found.sort();
        found
    } else {
        args.iter().map(std::path::PathBuf::from).collect()
    };
    if files.is_empty() {
        return Err("no BENCH_*.json files found — nothing to check".into());
    }
    for file in &files {
        check_bench_file(file)?;
        println!("check-bench OK: {}", file.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(text: &str) -> Json {
        parse_json(text).unwrap()
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(obj("null"), Json::Null);
        assert_eq!(obj(" true "), Json::Bool(true));
        assert_eq!(obj("-12.5e1"), Json::Number(-125.0));
        assert_eq!(obj(r#""a\nbé""#), Json::String("a\nbé".into()));
        assert_eq!(
            obj(r#"[1, "x", null]"#),
            Json::Array(vec![
                Json::Number(1.0),
                Json::String("x".into()),
                Json::Null
            ])
        );
        let Json::Object(map) = obj(r#"{"a": 1, "b": [true]}"#) else {
            panic!("not an object");
        };
        assert_eq!(map.get("a"), Some(&Json::Number(1.0)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "1 2",
            "nul",
            "\"open",
            "1e999",
        ] {
            assert!(parse_json(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn accepts_the_bench_writers_shape() {
        let doc = obj(r#"{
              "bench": "wal_append", "units": "ns_per_round", "host_cores": 1,
              "caveat": "single-core host: speedups reflect fewer fsyncs, not parallelism",
              "cells": [
                {"mode": "direct", "policy": "always", "batch": null, "round_ns": 450921.4,
                 "speedup_vs_direct_always": null},
                {"mode": "group", "policy": "always", "batch": 8, "round_ns": 125000.0,
                 "speedup_vs_direct_always": 3.60}
              ]
            }"#);
        check_bench_doc(&doc).unwrap();
    }

    #[test]
    fn oracle_compare_schema_is_enforced() {
        let good = obj(r#"{
              "bench": "oracle_compare", "units": "rounds_per_sec", "host_cores": 4,
              "cells": [
                {"oracle": "greedy", "num_events": 500, "rounds_per_sec": 400000.0,
                 "attendance": 4.998, "arranged": 5},
                {"oracle": "tabu-max", "num_events": 500, "rounds_per_sec": 35000.0,
                 "attendance": 4.998, "arranged": 5}
              ]
            }"#);
        check_bench_doc(&good).unwrap();

        let cases = [
            // host_cores is required for this bench, not just optional.
            (
                r#"{"bench": "oracle_compare", "units": "rounds_per_sec",
                    "cells": [{"oracle": "greedy", "num_events": 500, "rounds_per_sec": 1.0}]}"#,
                "host_cores",
            ),
            // Every cell must name its oracle.
            (
                r#"{"bench": "oracle_compare", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"num_events": 500, "rounds_per_sec": 1.0}]}"#,
                "oracle",
            ),
            // Throughput must be a positive number.
            (
                r#"{"bench": "oracle_compare", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"oracle": "greedy", "num_events": 500, "rounds_per_sec": 0}]}"#,
                "rounds_per_sec",
            ),
            // The instance size must be present.
            (
                r#"{"bench": "oracle_compare", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"oracle": "greedy", "rounds_per_sec": 1.0}]}"#,
                "num_events",
            ),
        ];
        for (text, needle) in cases {
            let err = check_bench_doc(&obj(text)).unwrap_err();
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }

    #[test]
    fn models_residency_schema_is_enforced() {
        let good = obj(r#"{
              "bench": "models_residency", "units": "rounds_per_sec", "host_cores": 4,
              "cells": [
                {"users": 100000, "budget_mb": 0, "cohorts": 0, "state": "exact",
                 "sketch_rank": 0, "cohort_hits": 0, "rounds_per_sec": 50000.0},
                {"users": 100000, "budget_mb": 64, "cohorts": 256, "state": "sketched",
                 "sketch_rank": 4, "cohort_hits": 81234, "rounds_per_sec": 61000.0}
              ]
            }"#);
        check_bench_doc(&good).unwrap();

        let cases = [
            // host_cores is required for this bench, not just optional.
            (
                r#"{"bench": "models_residency", "units": "rounds_per_sec",
                    "cells": [{"cohorts": 0, "state": "exact", "sketch_rank": 0,
                               "cohort_hits": 0}]}"#,
                "host_cores",
            ),
            // Every cell must say which state representation produced it.
            (
                r#"{"bench": "models_residency", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"cohorts": 0, "sketch_rank": 0, "cohort_hits": 0}]}"#,
                "state",
            ),
            // state must be a non-empty string.
            (
                r#"{"bench": "models_residency", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"cohorts": 0, "state": "", "sketch_rank": 0,
                               "cohort_hits": 0}]}"#,
                "state",
            ),
            // The cohort count must be present (0 is the flat chain).
            (
                r#"{"bench": "models_residency", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"state": "exact", "sketch_rank": 0, "cohort_hits": 0}]}"#,
                "cohorts",
            ),
            // Numbers must be non-negative.
            (
                r#"{"bench": "models_residency", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"cohorts": -1, "state": "exact", "sketch_rank": 0,
                               "cohort_hits": 0}]}"#,
                "cohorts",
            ),
            (
                r#"{"bench": "models_residency", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"cohorts": 0, "state": "exact", "cohort_hits": 0}]}"#,
                "sketch_rank",
            ),
            (
                r#"{"bench": "models_residency", "units": "rounds_per_sec", "host_cores": 1,
                    "cells": [{"cohorts": 0, "state": "exact", "sketch_rank": 0}]}"#,
                "cohort_hits",
            ),
        ];
        for (text, needle) in cases {
            let err = check_bench_doc(&obj(text)).unwrap_err();
            assert!(err.contains(needle), "{err} should mention {needle}");
        }
    }

    #[test]
    fn the_committed_models_table_passes() {
        // The repo commits BENCH_models.json at the workspace root; the
        // gate must accept it (new tier fields included) when present.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_models.json");
        if path.exists() {
            check_bench_file(&path).unwrap();
        }
    }

    #[test]
    fn single_core_speedup_claims_require_a_caveat() {
        // A >1x parallel speedup measured where no parallelism exists
        // must be explained or rejected.
        let bare = r#"{"bench": "x", "units": "y", "host_cores": 1,
            "cells": [{"mode": "group", "speedup_vs_direct_always": 2.19}]}"#;
        let err = check_bench_doc(&obj(bare)).unwrap_err();
        assert!(err.contains("caveat"), "{err}");
        assert!(err.contains("speedup_vs_direct_always"), "{err}");

        let parallel = r#"{"bench": "x", "units": "y", "host_cores": 1,
            "cells": [{"threads": 4, "parallel_speedup": 1.5}]}"#;
        assert!(check_bench_doc(&obj(parallel))
            .unwrap_err()
            .contains("parallel_speedup"));

        // The same table passes once the caveat explains the number.
        let explained = r#"{"bench": "x", "units": "y", "host_cores": 1,
            "caveat": "speedup reflects fewer fsyncs per round, not parallel execution",
            "cells": [{"mode": "group", "speedup_vs_direct_always": 2.19}]}"#;
        check_bench_doc(&obj(explained)).unwrap();

        // An empty caveat is no caveat.
        let empty = r#"{"bench": "x", "units": "y", "host_cores": 1, "caveat": "",
            "cells": [{"mode": "group", "speedup_vs_direct_always": 2.19}]}"#;
        assert!(check_bench_doc(&obj(empty)).is_err());

        // Sub-1x ratios, null entries, and multi-core hosts are all fine
        // without a caveat.
        for ok in [
            r#"{"bench": "x", "units": "y", "host_cores": 1,
                "cells": [{"parallel_speedup": 0.97}, {"speedup_vs_serial": null}]}"#,
            r#"{"bench": "x", "units": "y", "host_cores": 8,
                "cells": [{"parallel_speedup": 6.4}]}"#,
            r#"{"bench": "x", "units": "y",
                "cells": [{"parallel_speedup": 3.0}]}"#,
        ] {
            check_bench_doc(&obj(ok)).unwrap();
        }
    }

    #[test]
    fn the_committed_oracle_table_passes() {
        // The repo commits BENCH_oracle.json at the workspace root; the
        // gate must accept it as long as it is present.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_oracle.json");
        if path.exists() {
            check_bench_file(&path).unwrap();
        }
    }

    #[test]
    fn rejects_schema_violations() {
        let cases = [
            (r#"[1]"#, "top level"),
            (r#"{"units": "x", "cells": [{"a": 1}]}"#, "\"bench\""),
            (r#"{"bench": "x", "cells": [{"a": 1}]}"#, "\"units\""),
            (r#"{"bench": "x", "units": "y"}"#, "\"cells\""),
            (r#"{"bench": "x", "units": "y", "cells": []}"#, "empty"),
            (r#"{"bench": "x", "units": "y", "cells": [7]}"#, "cells[0]"),
            (
                r#"{"bench": "x", "units": "y", "cells": [{"a": [1]}]}"#,
                "scalar",
            ),
            (
                r#"{"bench": "x", "units": "y", "host_cores": 0, "cells": [{"a": 1}]}"#,
                "\"host_cores\"",
            ),
            (
                r#"{"bench": "x", "units": "y", "host_cores": "8", "cells": [{"a": 1}]}"#,
                "\"host_cores\"",
            ),
        ];
        for (text, needle) in cases {
            let err = check_bench_doc(&obj(text)).unwrap_err();
            assert!(err.contains(needle), "error {err:?} missing {needle:?}");
        }
    }
}

//! Figures 11–13: the "basic contextual bandit" ablation.
//!
//! Capacities of events are unlimited, no events conflict, and exactly
//! one event is arranged per round — the classical contextual bandit.
//! The paper uses this to show TS's poor FASEA performance is not an
//! artefact of the combinatorial extension.

use crate::common::{exp_dir, print_summary, run_cell, write_metric_csvs, AlgoParams};
use crate::Options;
use fasea_datagen::{SyntheticConfig, ValueDistribution};
use fasea_sim::sweep::run_parallel;

fn run_basic_cells(
    id: &str,
    cells: Vec<(String, SyntheticConfig)>,
    opts: &Options,
) -> Result<(), String> {
    let dir = exp_dir(opts, id);
    let jobs: Vec<_> = cells
        .into_iter()
        .map(|(label, config)| {
            let opts = opts.clone();
            move || {
                let result = run_cell(config.into_basic(), AlgoParams::default(), &opts, false);
                (label, result)
            }
        })
        .collect();
    for (label, result) in run_parallel(jobs, opts.threads) {
        print_summary(&format!("{id} {label}"), &result);
        write_metric_csvs(&dir, &label, &result).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Figure 11: basic bandit, `|V| ∈ {100, 500, 1000}`.
pub fn vary_num_events(opts: &Options) -> Result<(), String> {
    let cells = [100usize, 500, 1000]
        .iter()
        .map(|&n| {
            (
                format!("v{n}"),
                SyntheticConfig {
                    num_events: n,
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                },
            )
        })
        .collect();
    run_basic_cells("fig11", cells, opts)
}

/// Figure 12: basic bandit, `d ∈ {1, 5, 10, 15}`.
pub fn vary_dimension(opts: &Options) -> Result<(), String> {
    let cells = [1usize, 5, 10, 15]
        .iter()
        .map(|&d| {
            (
                format!("d{d}"),
                SyntheticConfig {
                    dim: d,
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                },
            )
        })
        .collect();
    run_basic_cells("fig12", cells, opts)
}

/// Figure 13: basic bandit under Normal, Power and Shuffle.
pub fn vary_distributions(opts: &Options) -> Result<(), String> {
    let cells = [
        ("normal", ValueDistribution::Normal),
        ("power", ValueDistribution::Power),
        ("shuffle", ValueDistribution::Shuffle),
    ]
    .iter()
    .map(|&(label, dist)| {
        (
            label.to_string(),
            SyntheticConfig {
                theta_dist: dist,
                x_dist: dist,
                seed: opts.seed,
                horizon: opts.horizon,
                ..Default::default()
            },
        )
    })
    .collect();
    run_basic_cells("fig13", cells, opts)
}

//! Figures 8 and 9: algorithm-parameter sweeps.
//!
//! Figure 8 varies the shared ridge strength λ for all algorithms;
//! Figure 9 varies each algorithm's private knob alone (α for UCB, δ for
//! TS, ε for eGreedy) against the OPT reference.

use crate::common::{exp_dir, print_summary, run_cell, write_metric_csvs, AlgoParams};
use crate::Options;
use fasea_bandit::{EpsilonGreedy, LinUcb, Policy, ThompsonSampling};
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};
use fasea_sim::sweep::run_parallel;
use fasea_sim::{run_simulation, RunConfig, SimulationResult};

/// Figure 8: λ ∈ {0.5, 1, 2} for all algorithms.
pub fn effect_of_lambda(opts: &Options) -> Result<(), String> {
    let dir = exp_dir(opts, "fig8");
    let jobs: Vec<_> = [0.5f64, 1.0, 2.0]
        .iter()
        .map(|&lambda| {
            let opts = opts.clone();
            move || {
                let config = SyntheticConfig {
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                };
                let params = AlgoParams {
                    lambda,
                    ..Default::default()
                };
                let result = run_cell(config, params, &opts, false);
                (format!("lambda{}", (lambda * 10.0) as u32), result)
            }
        })
        .collect();
    for (label, result) in run_parallel(jobs, opts.threads) {
        print_summary(&format!("fig8 {label}"), &result);
        write_metric_csvs(&dir, &label, &result).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Runs one single-policy simulation (plus OPT) — the Figure 9 cells
/// compare parameter values of a single algorithm.
fn run_single_policy(policy: Box<dyn Policy>, opts: &Options) -> SimulationResult {
    let config = SyntheticConfig {
        seed: opts.seed,
        horizon: opts.horizon,
        ..Default::default()
    };
    let workload = SyntheticWorkload::generate(config);
    let mut policies = vec![policy];
    run_simulation(
        &workload,
        &mut policies,
        &RunConfig::paper(opts.horizon).with_score_threads(opts.score_threads),
    )
}

/// Figure 9: α ∈ {1, 1.5, 2, 2.5} for UCB; δ ∈ {0.05, 0.1, 0.2} for TS;
/// ε ∈ {0.05, 0.1, 0.2} for eGreedy.
pub fn effect_of_alpha_delta_epsilon(opts: &Options) -> Result<(), String> {
    let dir = exp_dir(opts, "fig9");
    let d = 20usize;
    let lambda = 1.0;
    type PolicyFactory = Box<dyn FnOnce() -> Box<dyn Policy> + Send>;
    let mut jobs_spec: Vec<(String, PolicyFactory)> = Vec::new();
    for alpha in [1.0f64, 1.5, 2.0, 2.5] {
        jobs_spec.push((
            format!("ucb_alpha{}", (alpha * 10.0) as u32),
            Box::new(move || Box::new(LinUcb::new(d, lambda, alpha)) as Box<dyn Policy>),
        ));
    }
    let ts_seed = opts.seed ^ 0x7501;
    for delta in [0.05f64, 0.1, 0.2] {
        jobs_spec.push((
            format!("ts_delta{}", (delta * 100.0) as u32),
            Box::new(move || {
                Box::new(ThompsonSampling::new(d, lambda, delta, ts_seed)) as Box<dyn Policy>
            }),
        ));
    }
    let eg_seed = opts.seed ^ 0xE6;
    for epsilon in [0.05f64, 0.1, 0.2] {
        jobs_spec.push((
            format!("egreedy_eps{}", (epsilon * 100.0) as u32),
            Box::new(move || {
                Box::new(EpsilonGreedy::new(d, lambda, epsilon, eg_seed)) as Box<dyn Policy>
            }),
        ));
    }

    let jobs: Vec<_> = jobs_spec
        .into_iter()
        .map(|(label, factory)| {
            let opts = opts.clone();
            move || {
                let result = run_single_policy(factory(), &opts);
                (label, result)
            }
        })
        .collect();
    for (label, result) in run_parallel(jobs, opts.threads) {
        print_summary(&format!("fig9 {label}"), &result);
        write_metric_csvs(&dir, &label, &result).map_err(|e| e.to_string())?;
    }
    Ok(())
}

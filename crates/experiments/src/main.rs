//! `fasea-exp` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! fasea-exp <experiment> [--t N] [--out DIR] [--seed S] [--threads N]
//!           [--score-threads N] [--real-rounds N] [--real-regret-rounds N]
//!           [--reps N] [--oracle greedy|tabu] [--churn N]
//!
//! experiments: fig1 fig2 fig3 … fig13 table5 table6 table7
//!              ext1 ext2 verify plots all
//! ```

use fasea_experiments::{
    bench_check, multi_user_cmd, run_experiment, serve_cmd, Options, ALL_EXPERIMENTS,
};

fn print_usage() {
    eprintln!(
        "usage: fasea-exp <experiment> [--t N] [--out DIR] [--seed S] [--threads N] \
         [--score-threads N] [--real-rounds N] [--real-regret-rounds N] [--reps N] \
         [--oracle greedy|tabu] [--churn N]\n\
         experiments: {} verify plots all\n\
         defaults: --t 100000 (the paper's horizon), --out results, 1000/10000 real rounds, 1 rep\n\
         --threads fans experiment cells out; --score-threads N parallelises scoring *inside*\n\
         each simulation round (0 = serial, results bit-identical either way)\n\
         --oracle picks the arrangement oracle (greedy = the paper's Algorithm 2);\n\
         --churn N closes/shrinks/re-opens one event every N rounds (0 = static universe)\n\
         network service:\n\
         fasea-exp serve   [--addr H:P] [--dir DIR] [--seed S] [--events N] [--dim D]\n\
                           [--workers N] [--score-threads N] [--policy ucb|ts|egreedy]\n\
                           [--fsync always|everyn|never] [--group-commit 1]\n\
                           [--snapshot-every N] [--shards N] [--oracle greedy|tabu]\n\
                           [--churn N] [--churn-horizon H] [--pipeline-depth N]\n\
         fasea-exp loadgen [--addr H:P] [--rounds N] [--clients N] [--seed S] [--events N]\n\
                           [--dim D] [--policy P] [--users N] [--verify-local 1] [--shutdown 1]\n\
                           [--oracle greedy|tabu] [--churn N] [--churn-horizon H]\n\
         personalized model store:\n\
         fasea-exp multi-user [--users N] [--t N] [--events N] [--dim D] [--seed S]\n\
                           [--heterogeneity H] [--policy multi-ucb|multi-ts]\n\
                           [--budget-mb M] [--warm-budget-kb K] [--spill-dir DIR]\n\
                           [--verify-determinism 1]\n\
         fasea-exp check-bench [FILE...]   validate BENCH_*.json result tables",
        ALL_EXPERIMENTS.join(" ")
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let id = args[0].clone();
    // The serving and checking subcommands take their own flag sets.
    if id == "serve" || id == "loadgen" || id == "check-bench" || id == "multi-user" {
        let result = match id.as_str() {
            "serve" => serve_cmd::serve_main(&args[1..]),
            "loadgen" => serve_cmd::loadgen_main(&args[1..]),
            "multi-user" => multi_user_cmd::multi_user_main(&args[1..]),
            _ => bench_check::check_bench_main(&args[1..]),
        };
        if let Err(e) = result {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let mut opts = Options::default();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            std::process::exit(2);
        });
        let parse_u64 = |v: &str| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("invalid number '{v}' for {flag}");
                std::process::exit(2);
            })
        };
        match flag {
            "--t" => opts.horizon = parse_u64(&value),
            "--seed" => opts.seed = parse_u64(&value),
            "--threads" => opts.threads = parse_u64(&value) as usize,
            "--score-threads" => opts.score_threads = parse_u64(&value) as usize,
            "--real-rounds" => opts.real_rounds = parse_u64(&value),
            "--real-regret-rounds" => opts.real_regret_rounds = parse_u64(&value),
            "--reps" => opts.replications = parse_u64(&value) as u32,
            "--out" => opts.out_dir = value.clone().into(),
            "--oracle" => {
                opts.oracle = fasea_bandit::OracleOptions::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown oracle '{value}' (greedy|tabu)");
                    std::process::exit(2);
                })
            }
            "--churn" => opts.churn_period = parse_u64(&value),
            other => {
                eprintln!("unknown flag {other}");
                print_usage();
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let started = std::time::Instant::now();
    match run_experiment(&id, &opts) {
        Ok(()) => {
            println!(
                "done: {id} in {:.1}s — output under {}",
                started.elapsed().as_secs_f64(),
                opts.out_dir.display()
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(1);
        }
    }
}

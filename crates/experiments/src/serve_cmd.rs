//! `fasea-exp serve` and `fasea-exp loadgen` — run the FASEA network
//! service and drive load against it.
//!
//! Both sides derive the *same* synthetic workload from `--seed`
//! (instance, payoff model, arrival stream), and the loadgen computes
//! feedback with common random numbers keyed on `(t, v)` exactly like
//! [`fasea_core::Environment`]. Because contexts travel the wire as
//! exact IEEE-754 bytes and rounds execute strictly sequentially, the
//! server's final accept/regret accounting is **byte-identical** to an
//! in-process run of the same seed — `loadgen --verify-local` checks
//! precisely that.
//!
//! ```text
//! fasea-exp serve   [--addr HOST:PORT] [--dir DIR] [--seed S] [--events N]
//!                   [--dim D] [--workers N] [--score-threads N]
//!                   [--policy ucb|ts|egreedy|multi-ucb|multi-ts]
//!                   [--users N] [--model-budget-mb M]
//!                   [--cohorts N] [--cohort-folds K]
//!                   [--state exact|sketched] [--sketch-rank R]
//!                   [--fsync always|everyn|never]
//!                   [--group-commit 0|1] [--snapshot-every N]
//!                   [--shards N] [--oracle greedy|tabu]
//!                   [--churn N] [--churn-horizon H]
//!                   [--pipeline-depth N]
//! fasea-exp loadgen [--addr HOST:PORT] [--rounds N] [--clients N] [--seed S]
//!                   [--events N] [--dim D] [--policy ...] [--users N]
//!                   [--cohorts N] [--cohort-folds K]
//!                   [--state exact|sketched] [--sketch-rank R]
//!                   [--verify-local] [--shutdown]
//!                   [--oracle greedy|tabu] [--churn N] [--churn-horizon H]
//! ```
//!
//! `--oracle` swaps the arrangement oracle (non-greedy oracles perturb
//! the fingerprint, so both sides must agree); `--churn N` drives a
//! deterministic event-lifecycle schedule — the server re-plans
//! capacities at each round boundary and logs every applied action as a
//! durable `Lifecycle` record, and the loadgen's `--verify-local`
//! replica replays the identical schedule in-process.
//!
//! The `multi-*` policies route every estimator lookup through a
//! `fasea-models` [`EstimatorStore`] keyed on a deterministic
//! round → user schedule over `--users` recurring users;
//! `--model-budget-mb` bounds the hot tier, spilling cold models to
//! `DIR/model-spill` through the store's CRC-framed log. `--cohorts`
//! turns on the store's three-level cohort prior chain and `--state
//! sketched` demotes private state as rank-`--sketch-rank` sketches;
//! both change decisions, so they perturb the wire fingerprint and
//! must match between server and loadgen. `--verify-local` requires
//! `--state exact`: sketched demotions trade bit-parity for regret
//! parity, so the unbounded in-process replica cannot match a
//! budgeted sketched server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fasea_bandit::{EpsilonGreedy, LinUcb, Policy, ThompsonSampling};
use fasea_core::EventId;
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};
use fasea_models::{EstimatorStore, PersonalizedTs, PersonalizedUcb, StoreConfig, UserSchedule};
use fasea_serve::{
    BackendService, ClientConfig, ClientError, ErrorCode, ServeClient, Server, ServerConfig,
    WireStats,
};
use fasea_shard::ShardedArrangementService;
use fasea_sim::{
    service_fingerprint_with_oracle, ArrangementService, DurableArrangementService, DurableOptions,
};
use fasea_stats::crn::mix64;
use fasea_stats::CoinStream;
use fasea_store::FsyncPolicy;

/// Workload knobs shared by `serve` and `loadgen`. Both processes must
/// agree on these for the fingerprint handshake to pass.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Master seed.
    pub seed: u64,
    /// Events `|V|`.
    pub events: usize,
    /// Context dimension `d`.
    pub dim: usize,
    /// Policy id: `ucb`, `ts`, `egreedy`, `multi-ucb`, or `multi-ts`.
    pub policy: String,
    /// Recurring-user population for the `multi-*` policies.
    pub users: usize,
    /// Hot-tier budget in MiB for the `multi-*` policies
    /// (0 = unbounded, no spill directory needed).
    pub model_budget_mb: u64,
    /// Cohort count for the `multi-*` model store's prior chain
    /// (0 = flat). Changes decisions, so it perturbs the fingerprint —
    /// server and loadgen must agree.
    pub cohorts: usize,
    /// Cold observations folded into a cohort prior before a user
    /// COW-materializes (with `cohorts > 0`).
    pub cohort_folds: u64,
    /// Per-user state mode for the `multi-*` store: `exact` or
    /// `sketched`. Sketched demotion is lossy by design, so a bounded
    /// sketched server will not replay bit-equal under
    /// `--verify-local`; the flag still perturbs the fingerprint so
    /// both sides must agree.
    pub state: String,
    /// Sketch rank `r` (with `--state sketched`).
    pub sketch_rank: usize,
    /// Arrangement oracle (`--oracle greedy|tabu`). Non-greedy oracles
    /// perturb the service fingerprint, so both sides must agree.
    pub oracle: fasea_bandit::OracleOptions,
    /// Event-churn period in rounds (`--churn N`, 0 = static universe).
    /// Server and loadgen must pass the same value for
    /// `--verify-local` to replay the same moving capacity vector.
    pub churn_period: u64,
    /// Horizon the churn schedule is generated up to (`--churn-horizon`;
    /// actions past it never fire). Part of the shared spec like the
    /// seed: both sides must agree.
    pub churn_horizon: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 0x5EED_FA5E_A5E2,
            events: 40,
            dim: 5,
            policy: "ucb".into(),
            users: 10_000,
            model_budget_mb: 0,
            cohorts: 0,
            cohort_folds: 8,
            state: "exact".into(),
            sketch_rank: 4,
            oracle: fasea_bandit::OracleOptions::greedy(),
            churn_period: 0,
            churn_horizon: 100_000,
        }
    }
}

impl WorkloadSpec {
    /// Generates the deterministic workload for this spec.
    pub fn workload(&self) -> SyntheticWorkload {
        SyntheticWorkload::generate(SyntheticConfig {
            num_events: self.events,
            dim: self.dim,
            seed: self.seed,
            ..SyntheticConfig::default()
        })
    }

    /// Builds the policy for this spec (deterministic per seed).
    /// `multi-*` policies require `model_budget_mb == 0` here; use
    /// [`WorkloadSpec::policy_in`] to supply a spill directory.
    pub fn policy(&self) -> Result<Box<dyn Policy>, String> {
        self.policy_in(None)
    }

    /// Builds the policy, with a spill directory for budget-bounded
    /// `multi-*` model stores. The directory is created on demand.
    pub fn policy_in(
        &self,
        spill_dir: Option<&std::path::Path>,
    ) -> Result<Box<dyn Policy>, String> {
        match self.policy.as_str() {
            "ucb" => Ok(Box::new(LinUcb::new(self.dim, 1.0, 2.0))),
            "ts" => Ok(Box::new(ThompsonSampling::new(
                self.dim,
                1.0,
                0.1,
                mix64(self.seed ^ 0x7507_11CE),
            ))),
            "egreedy" => Ok(Box::new(EpsilonGreedy::new(
                self.dim,
                1.0,
                0.1,
                mix64(self.seed ^ 0xE9_4EED),
            ))),
            "multi-ucb" | "multi-ts" => {
                let mut config = if self.model_budget_mb == 0 {
                    StoreConfig::unbounded(self.dim, 1.0)
                } else {
                    let dir = spill_dir
                        .ok_or("--model-budget-mb needs a durable --dir for the spill log")?;
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("create {}: {e}", dir.display()))?;
                    let hot = (self.model_budget_mb as usize) << 20;
                    StoreConfig::bounded(self.dim, 1.0, hot, hot / 4, dir)
                };
                if self.cohorts > 0 {
                    config =
                        config.with_cohorts(self.cohorts, self.cohort_salt(), self.cohort_folds);
                }
                match self.state.as_str() {
                    "exact" => {}
                    "sketched" => config = config.with_sketched(self.sketch_rank),
                    other => return Err(format!("unknown --state '{other}' (exact|sketched)")),
                }
                let store =
                    EstimatorStore::new(config).map_err(|e| format!("open model store: {e}"))?;
                // The same schedule salt the multi-user workload
                // generator uses, so server-side models line up with
                // datagen's per-user ground truth.
                let schedule = UserSchedule::new(mix64(self.seed ^ 0x5C4E_D01E), self.users);
                if self.policy == "multi-ucb" {
                    Ok(Box::new(PersonalizedUcb::new(store, schedule, 2.0)))
                } else {
                    Ok(Box::new(PersonalizedTs::new(
                        store,
                        schedule,
                        0.1,
                        mix64(self.seed ^ 0x7507_11CE),
                    )))
                }
            }
            other => Err(format!(
                "unknown policy '{other}' (ucb|ts|egreedy|multi-ucb|multi-ts)"
            )),
        }
    }

    /// The deterministic cohort salt of this spec — the same
    /// seed-derived constant `fasea-exp multi-user` uses, distinct
    /// from the schedule salt so cohort assignment and round→user
    /// mapping stay independent.
    pub fn cohort_salt(&self) -> u64 {
        mix64(self.seed ^ 0xC040_0947)
    }

    /// The extra service-fingerprint salt this spec's model store
    /// configuration contributes: zero for the default flat/exact
    /// store (existing logs stay valid), non-zero whenever cohorts or
    /// sketched state would change decisions.
    pub fn model_fingerprint_salt(&self) -> u64 {
        let mut salt = 0u64;
        if self.cohorts > 0 {
            salt ^= mix64(0x00C0_0947 ^ self.cohorts as u64)
                ^ mix64(self.cohort_salt() ^ self.cohort_folds);
        }
        if self.state == "sketched" {
            salt ^= mix64(0x005C_E7C4 ^ self.sketch_rank as u64);
        }
        salt
    }

    /// The coin stream every load client (and the in-process reference)
    /// uses for acceptance draws — keyed only on the master seed, so
    /// feedback for `(t, v)` is identical no matter which client
    /// executes the round.
    pub fn feedback_coins(&self) -> CoinStream {
        CoinStream::new(mix64(self.seed ^ 0xFEED_BACC_0FFE_E123))
    }

    /// The churn schedule this spec asks for (empty unless `--churn`).
    /// A pure function of the spec, so the server and the loadgen's
    /// `--verify-local` replica derive the identical moving universe.
    pub fn churn(&self) -> fasea_core::ChurnSchedule {
        if self.churn_period == 0 {
            return fasea_core::ChurnSchedule::none();
        }
        let workload = self.workload();
        fasea_core::ChurnSchedule::generate(
            workload.instance.capacities(),
            self.churn_horizon,
            self.churn_period,
            mix64(self.seed ^ 0xC4A2_11FE),
        )
    }

    /// The wire fingerprint for this spec: the instance/policy
    /// fingerprint with the configured oracle mixed in (greedy — the
    /// default — contributes nothing).
    pub fn fingerprint(&self) -> Result<u64, String> {
        let workload = self.workload();
        let policy = self.policy()?;
        Ok(fasea_sim::fold_fingerprint_salt(
            service_fingerprint_with_oracle(&workload.instance, policy.name(), &self.oracle),
            self.model_fingerprint_salt(),
        ))
    }
}

pub(crate) fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    if !args.len().is_multiple_of(2) {
        return Err("flags come in --name value pairs".into());
    }
    args.chunks(2)
        .map(|pair| {
            let flag = pair[0]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a --flag, got '{}'", pair[0]))?;
            Ok((flag.to_string(), pair[1].clone()))
        })
        .collect()
}

pub(crate) fn parse_u64(flag: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("invalid number '{value}' for --{flag}"))
}

/// `fasea-exp serve`: open (or recover) the durable service and serve
/// it until a client sends `SHUTDOWN` (or the process is killed).
///
/// # Errors
/// Flag parse failures, store open failures, and bind failures.
pub fn serve_main(args: &[String]) -> Result<(), String> {
    let mut spec = WorkloadSpec::default();
    let mut addr = "127.0.0.1:4650".to_string();
    let mut dir = std::path::PathBuf::from("serve-state");
    let mut config = ServerConfig::default();
    let mut fsync = FsyncPolicy::EveryN(32);
    let mut score_threads: usize = 0;
    let mut group_commit = false;
    let mut shards: usize = 0;
    for (flag, value) in parse_flags(args)? {
        match flag.as_str() {
            "addr" => addr = value,
            "dir" => dir = value.into(),
            "seed" => spec.seed = parse_u64(&flag, &value)?,
            "events" => spec.events = parse_u64(&flag, &value)? as usize,
            "dim" => spec.dim = parse_u64(&flag, &value)? as usize,
            "workers" => config.workers = parse_u64(&flag, &value)? as usize,
            "score-threads" => score_threads = parse_u64(&flag, &value)? as usize,
            "policy" => spec.policy = value,
            "users" => spec.users = parse_u64(&flag, &value)?.max(1) as usize,
            "model-budget-mb" => spec.model_budget_mb = parse_u64(&flag, &value)?,
            "cohorts" => spec.cohorts = parse_u64(&flag, &value)? as usize,
            "cohort-folds" => spec.cohort_folds = parse_u64(&flag, &value)?,
            "state" => spec.state = value,
            "sketch-rank" => spec.sketch_rank = parse_u64(&flag, &value)? as usize,
            "fsync" => {
                fsync = match value.as_str() {
                    "always" => FsyncPolicy::Always,
                    "everyn" => FsyncPolicy::EveryN(32),
                    "never" => FsyncPolicy::Never,
                    other => return Err(format!("unknown --fsync '{other}'")),
                }
            }
            // Group commit: appends flow through the batching syncer
            // thread, FEEDBACK acks are withheld until the durable
            // watermark covers them, and snapshots run in the
            // background. Same acked-implies-durable guarantee, one
            // fsync shared across concurrent sessions.
            "group-commit" => group_commit = value == "true" || value == "1",
            // Sharded backend: partition the event universe over N
            // shard actors with cross-shard two-phase commit. 0 (the
            // default) keeps the classic single-actor service; any
            // N ≥ 1 serves the identical byte-for-byte state through
            // fasea-shard (N = 1 exercises the 2PC machinery with no
            // actual cross-shard traffic).
            "shards" => shards = parse_u64(&flag, &value)? as usize,
            "snapshot-every" => {
                config.snapshot_every_rounds = Some(parse_u64(&flag, &value)?).filter(|&n| n > 0)
            }
            "oracle" => {
                spec.oracle = fasea_bandit::OracleOptions::parse(&value)
                    .ok_or_else(|| format!("unknown --oracle '{value}' (greedy|tabu)"))?
            }
            "churn" => spec.churn_period = parse_u64(&flag, &value)?,
            "churn-horizon" => spec.churn_horizon = parse_u64(&flag, &value)?,
            // Optimistic concurrent admission: grant up to N consecutive
            // rounds at once. Arrangements and the WAL stay bit-equal to
            // depth 1 (conflicts re-score in round order); see DESIGN §15.
            "pipeline-depth" => config.pipeline_depth = parse_u64(&flag, &value)?.max(1) as usize,
            other => return Err(format!("unknown flag --{other} for serve")),
        }
    }
    let workload = spec.workload();
    let policy = spec.policy_in(Some(&dir.join("model-spill")))?;
    let fingerprint = fasea_sim::fold_fingerprint_salt(
        service_fingerprint_with_oracle(&workload.instance, policy.name(), &spec.oracle),
        spec.model_fingerprint_salt(),
    );
    config.churn = spec.churn();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let options = DurableOptions::new()
        .with_fsync(fsync)
        .with_score_threads(score_threads)
        .with_group_commit(group_commit)
        .with_oracle(spec.oracle)
        .with_fingerprint_salt(spec.model_fingerprint_salt());
    let svc: BackendService = if shards >= 1 {
        ShardedArrangementService::open(&dir, workload.instance, policy, options, shards)
            .map_err(|e| format!("open sharded service in {}: {e}", dir.display()))?
            .into()
    } else {
        DurableArrangementService::open(&dir, workload.instance, policy, options)
            .map_err(|e| format!("open durable service in {}: {e}", dir.display()))?
            .into()
    };
    let health = svc.health();
    println!(
        "recovered rounds={} pending={} next_seq={} shards={}",
        health.rounds_completed,
        health.has_pending,
        health.next_seq,
        svc.num_shards(),
    );
    let num_shards = svc.num_shards();
    let handle =
        Server::spawn(svc, &addr as &str, config).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "listening on {} fingerprint={fingerprint:#018x} policy={} seed={:#x} events={} dim={} shards={}",
        handle.local_addr(),
        spec.policy,
        spec.seed,
        spec.events,
        spec.dim,
        num_shards,
    );
    let report = handle.join();
    if let Some(err) = report.close.error {
        return Err(format!("close failed: {err}"));
    }
    println!(
        "shut down cleanly: rounds={} snapshot={:?}",
        report.close.rounds_completed,
        report.close.snapshot.as_deref()
    );
    Ok(())
}

struct LoadStats {
    rounds_fed: AtomicU64,
    rewards: AtomicU64,
    protocol_errors: AtomicU64,
    transport_retries: AtomicU64,
    backoffs: AtomicU64,
}

/// `fasea-exp loadgen`: drive `--clients` concurrent sessions against a
/// running server until `--rounds` total rounds are complete, then
/// print server stats and (optionally) verify the server's accounting
/// against an in-process run of the same seed.
///
/// # Errors
/// Flag parse failures, connection failures past the retry budget, any
/// unexpected protocol error, or an accounting mismatch under
/// `--verify-local`.
pub fn loadgen_main(args: &[String]) -> Result<(), String> {
    let mut spec = WorkloadSpec::default();
    let mut addr = "127.0.0.1:4650".to_string();
    let mut rounds: u64 = 10_000;
    let mut clients: usize = 4;
    let mut verify_local = false;
    let mut shutdown = false;
    for (flag, value) in parse_flags(args)? {
        match flag.as_str() {
            "addr" => addr = value,
            "rounds" => rounds = parse_u64(&flag, &value)?,
            "clients" => clients = parse_u64(&flag, &value)?.max(1) as usize,
            "seed" => spec.seed = parse_u64(&flag, &value)?,
            "events" => spec.events = parse_u64(&flag, &value)? as usize,
            "dim" => spec.dim = parse_u64(&flag, &value)? as usize,
            "policy" => spec.policy = value,
            "users" => spec.users = parse_u64(&flag, &value)?.max(1) as usize,
            "cohorts" => spec.cohorts = parse_u64(&flag, &value)? as usize,
            "cohort-folds" => spec.cohort_folds = parse_u64(&flag, &value)?,
            "state" => spec.state = value,
            "sketch-rank" => spec.sketch_rank = parse_u64(&flag, &value)? as usize,
            "verify-local" => verify_local = value == "true" || value == "1",
            "shutdown" => shutdown = value == "true" || value == "1",
            "oracle" => {
                spec.oracle = fasea_bandit::OracleOptions::parse(&value)
                    .ok_or_else(|| format!("unknown --oracle '{value}' (greedy|tabu)"))?
            }
            "churn" => spec.churn_period = parse_u64(&flag, &value)?,
            "churn-horizon" => spec.churn_horizon = parse_u64(&flag, &value)?,
            other => return Err(format!("unknown flag --{other} for loadgen")),
        }
    }
    if verify_local && spec.state == "sketched" {
        return Err(
            "--verify-local needs --state exact: sketched demotions are lossy by design \
             (regret-parity gated, see `fasea-exp multi-user`), so a budgeted server can \
             never be bit-equal to the unbounded in-process replica"
                .to_string(),
        );
    }

    let stats = LoadStats {
        rounds_fed: AtomicU64::new(0),
        rewards: AtomicU64::new(0),
        protocol_errors: AtomicU64::new(0),
        transport_retries: AtomicU64::new(0),
        backoffs: AtomicU64::new(0),
    };
    let spec = Arc::new(spec);
    let started = Instant::now();
    crossbeam::thread::scope(|s| {
        for client_id in 0..clients {
            let spec = Arc::clone(&spec);
            let stats = &stats;
            let addr = &addr;
            s.spawn(move |_| {
                if let Err(e) = drive_client(&spec, addr, rounds, stats) {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("client {client_id}: {e}");
                }
            });
        }
    })
    .map_err(|_| "a load client panicked".to_string())?;
    let elapsed = started.elapsed();

    // One control connection for the final server-side numbers.
    let mut control = ServeClient::connect(addr.clone(), ClientConfig::default())
        .map_err(|e| format!("control connection: {e}"))?;
    let server_stats = control.stats().map_err(|e| format!("STATS failed: {e}"))?;
    let protocol_errors = stats.protocol_errors.load(Ordering::Relaxed);
    println!(
        "loadgen: {} rounds fed by {clients} clients in {:.2}s ({:.0} rounds/s) — \
         client rewards={} transport_retries={} backoffs={} protocol_errors={protocol_errors}",
        stats.rounds_fed.load(Ordering::Relaxed),
        elapsed.as_secs_f64(),
        stats.rounds_fed.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64().max(1e-9),
        stats.rewards.load(Ordering::Relaxed),
        stats.transport_retries.load(Ordering::Relaxed),
        stats.backoffs.load(Ordering::Relaxed),
    );
    print!("{}", server_stats.render());

    let mut failed = protocol_errors > 0;
    if protocol_errors > 0 {
        eprintln!("FAIL: {protocol_errors} protocol error(s) during load");
    }
    if server_stats.rounds_completed < rounds {
        eprintln!(
            "FAIL: server completed {} rounds, wanted ≥ {rounds}",
            server_stats.rounds_completed
        );
        failed = true;
    }
    if verify_local && !verify_against_local(&spec, rounds, &server_stats)? {
        failed = true;
    }
    if shutdown {
        control
            .shutdown_server()
            .map_err(|e| format!("SHUTDOWN failed: {e}"))?;
        println!("server shutdown requested");
    }
    if failed {
        return Err("loadgen checks failed".into());
    }
    Ok(())
}

/// One load client: claim → propose (unless recovering a pending
/// proposal) → CRN feedback, reconnecting through transport errors,
/// until the server's round counter reaches `rounds`.
fn drive_client(
    spec: &WorkloadSpec,
    addr: &str,
    rounds: u64,
    stats: &LoadStats,
) -> Result<(), String> {
    let workload = spec.workload();
    let coins = spec.feedback_coins();
    let mut client = ServeClient::connect(addr.to_string(), ClientConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let expected_fingerprint = spec.fingerprint()?;
    if let Some(info) = client.info() {
        if info.fingerprint != expected_fingerprint {
            return Err(format!(
                "server fingerprint {:#018x} does not match workload {:#018x} — \
                 differing --seed/--events/--dim/--policy/--oracle/--cohorts/--state?",
                info.fingerprint, expected_fingerprint
            ));
        }
    }
    loop {
        match run_one_round(&mut client, &workload, &coins, rounds, stats) {
            Ok(RoundOutcome::Fed) | Ok(RoundOutcome::Idle) => {}
            Ok(RoundOutcome::Done) => return Ok(()),
            Err(e) if e.is_transport() => {
                stats.transport_retries.fetch_add(1, Ordering::Relaxed);
                client.reconnect().map_err(|e| format!("reconnect: {e}"))?;
            }
            Err(ClientError::Protocol { code, detail }) => match code {
                // Typed backpressure / races are part of normal
                // operation, not protocol violations.
                ErrorCode::Overloaded => {
                    stats.backoffs.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(20));
                }
                ErrorCode::ShuttingDown => return Ok(()),
                _ => return Err(format!("protocol error {code}: {detail}")),
            },
            Err(e) => return Err(format!("client error: {e}")),
        }
    }
}

enum RoundOutcome {
    Fed,
    Idle,
    Done,
}

fn run_one_round(
    client: &mut ServeClient,
    workload: &SyntheticWorkload,
    coins: &CoinStream,
    rounds: u64,
    stats: &LoadStats,
) -> Result<RoundOutcome, ClientError> {
    let claimed = client.claim()?;
    let t = claimed.t;
    if t >= rounds {
        client.release()?;
        return Ok(RoundOutcome::Done);
    }
    let arrival = workload.arrivals.arrival(t);
    let arrangement = match claimed.pending {
        Some(pending) => pending,
        None => {
            let (_, arrangement) = client.propose(
                arrival.capacity,
                workload.instance.num_events() as u32,
                workload.instance.dim() as u32,
                arrival.contexts.as_slice().to_vec(),
            )?;
            arrangement
        }
    };
    // The Environment's acceptance rule, reproduced with common random
    // numbers keyed on (t, v): identical no matter which client (or
    // server process incarnation) executes the round.
    let accepts: Vec<bool> = arrangement
        .iter()
        .map(|&v| {
            let event = EventId(v as usize);
            coins.uniform(t, v as u64) < workload.model.accept_probability(&arrival.contexts, event)
        })
        .collect();
    let (_, reward) = client.feedback(&accepts)?;
    stats.rounds_fed.fetch_add(1, Ordering::Relaxed);
    stats.rewards.fetch_add(reward as u64, Ordering::Relaxed);
    if arrangement.is_empty() {
        Ok(RoundOutcome::Idle)
    } else {
        Ok(RoundOutcome::Fed)
    }
}

/// Replays the same workload through an in-process
/// [`ArrangementService`] and compares the accounting triple. CRN
/// feedback makes the comparison exact.
fn verify_against_local(
    spec: &WorkloadSpec,
    rounds: u64,
    server_stats: &WireStats,
) -> Result<bool, String> {
    let workload = spec.workload();
    let policy = spec.policy()?;
    let coins = spec.feedback_coins();
    let churn = spec.churn();
    let mut svc = ArrangementService::new(workload.instance.clone(), policy);
    svc.install_oracle(Some(spec.oracle.build()));
    for t in 0..rounds {
        // The server applies round-t churn before granting round t; the
        // replica must re-plan at the same boundary to stay in lockstep.
        for action in churn.actions_at(t) {
            svc.apply_lifecycle(action.event, action.capacity)
                .map_err(|e| format!("local lifecycle t={t}: {e}"))?;
        }
        let arrival = workload.arrivals.arrival(t);
        let arrangement = svc
            .propose(&arrival)
            .map_err(|e| format!("local propose t={t}: {e}"))?;
        let accepts: Vec<bool> = arrangement
            .events()
            .iter()
            .map(|&v| {
                coins.uniform(t, v.index() as u64)
                    < workload.model.accept_probability(&arrival.contexts, v)
            })
            .collect();
        svc.feedback(&accepts)
            .map_err(|e| format!("local feedback t={t}: {e}"))?;
    }
    let local = (
        svc.rounds_completed(),
        svc.accounting().total_arranged(),
        svc.accounting().total_rewards(),
    );
    let remote = (
        server_stats.rounds_completed,
        server_stats.total_arranged,
        server_stats.total_rewards,
    );
    if local == remote {
        println!(
            "verify-local OK: rounds={} arranged={} rewards={} (networked == in-process)",
            local.0, local.1, local.2
        );
        Ok(true)
    } else {
        eprintln!("FAIL verify-local: in-process {local:?} != server {remote:?}");
        Ok(false)
    }
}

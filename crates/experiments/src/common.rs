//! Shared plumbing for the experiment modules: canonical policy sets,
//! simulation-cell execution and CSV emission.

use crate::Options;
use fasea_bandit::{EpsilonGreedy, Exploit, LinUcb, Policy, RandomPolicy, ThompsonSampling};
use fasea_core::ChurnSchedule;
use fasea_datagen::{SyntheticConfig, SyntheticWorkload};
use fasea_sim::{run_simulation, RunConfig, SimulationResult};
use fasea_stats::crn::mix64;
use std::path::{Path, PathBuf};

/// Default algorithm parameters (Table 4 bold): λ = 1, α = 2, δ = 0.1,
/// ε = 0.1.
#[derive(Debug, Clone, Copy)]
pub struct AlgoParams {
    /// Ridge strength λ.
    pub lambda: f64,
    /// UCB exploration coefficient α.
    pub alpha: f64,
    /// TS confidence parameter δ.
    pub delta: f64,
    /// eGreedy exploration probability ε.
    pub epsilon: f64,
}

impl Default for AlgoParams {
    fn default() -> Self {
        AlgoParams {
            lambda: 1.0,
            alpha: 2.0,
            delta: 0.1,
            epsilon: 0.1,
        }
    }
}

/// The paper's five compared algorithms, in its reporting order.
pub fn paper_policy_set(dim: usize, params: AlgoParams, seed: u64) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(LinUcb::new(dim, params.lambda, params.alpha)),
        Box::new(ThompsonSampling::new(
            dim,
            params.lambda,
            params.delta,
            seed ^ 0x7501,
        )),
        Box::new(EpsilonGreedy::new(
            dim,
            params.lambda,
            params.epsilon,
            seed ^ 0xE6,
        )),
        Box::new(Exploit::new(dim, params.lambda)),
        Box::new(RandomPolicy::new(seed ^ 0x8A4D)),
    ]
}

/// The churn schedule `--churn N` asks for, derived from a workload's
/// planned capacities (empty when the period is 0). Seeded off the
/// workload seed so every policy in a cell — and OPT — sees the same
/// moving universe.
pub fn churn_for(workload: &SyntheticWorkload, horizon: u64, period: u64) -> ChurnSchedule {
    ChurnSchedule::generate(
        workload.instance.capacities(),
        horizon,
        period,
        mix64(workload.config.seed ^ 0xC4A2_11FE),
    )
}

/// Runs one simulation cell: the paper's five policies plus OPT under
/// `config` for `opts.horizon` rounds.
pub fn run_cell(
    config: SyntheticConfig,
    params: AlgoParams,
    opts: &Options,
    kendall: bool,
) -> SimulationResult {
    let workload = SyntheticWorkload::generate(config);
    let mut policies = paper_policy_set(workload.config.dim, params, workload.config.seed);
    let mut run_cfg = RunConfig::paper(opts.horizon)
        .with_score_threads(opts.score_threads)
        .with_oracle(opts.oracle);
    if opts.churn_period > 0 {
        run_cfg = run_cfg.with_churn(churn_for(&workload, opts.horizon, opts.churn_period));
    }
    if kendall {
        run_cfg = run_cfg.with_kendall();
    }
    run_simulation(&workload, &mut policies, &run_cfg)
}

/// Column order used by every series CSV: checkpoint time then each
/// policy then OPT.
pub fn series_header(result: &SimulationResult) -> Vec<String> {
    let mut h = vec!["t".to_string()];
    h.extend(result.policies.iter().map(|p| p.name.clone()));
    h.push(result.reference.name.clone());
    h
}

/// Extracts one metric as CSV rows (one row per checkpoint).
pub fn series_rows(
    result: &SimulationResult,
    metric: impl Fn(&fasea_sim::Checkpoint) -> f64,
) -> Vec<Vec<f64>> {
    let n_cp = result.reference.checkpoints.len();
    (0..n_cp)
        .map(|i| {
            let mut row = vec![result.reference.checkpoints[i].t as f64];
            for p in &result.policies {
                row.push(metric(&p.checkpoints[i]));
            }
            row.push(metric(&result.reference.checkpoints[i]));
            row
        })
        .collect()
}

/// Writes the four paper metrics (accept ratio, total rewards, total
/// regrets, regret ratio) of a simulation into `<dir>/<prefix>_*.csv`.
pub fn write_metric_csvs(
    dir: &Path,
    prefix: &str,
    result: &SimulationResult,
) -> std::io::Result<()> {
    type MetricFn = fn(&fasea_sim::Checkpoint) -> f64;
    let header_owned = series_header(result);
    let header: Vec<&str> = header_owned.iter().map(|s| s.as_str()).collect();
    let metrics: [(&str, MetricFn); 4] = [
        ("accept_ratio", |c| c.accept_ratio),
        ("total_rewards", |c| c.total_rewards as f64),
        ("total_regrets", |c| c.total_regret as f64),
        ("regret_ratio", |c| c.regret_ratio),
    ];
    for (name, f) in metrics {
        fasea_sim::write_csv(
            &dir.join(format!("{prefix}_{name}.csv")),
            &header,
            &series_rows(result, f),
        )?;
    }
    Ok(())
}

/// Writes the Kendall-τ series (Figure 2 format): learning policies
/// only (OPT's τ with itself is trivially 1).
pub fn write_kendall_csv(
    dir: &Path,
    prefix: &str,
    result: &SimulationResult,
) -> std::io::Result<()> {
    let mut header = vec!["t".to_string()];
    header.extend(result.policies.iter().map(|p| p.name.clone()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let n_cp = result
        .policies
        .first()
        .map(|p| p.checkpoints.len())
        .unwrap_or(0);
    let rows: Vec<Vec<f64>> = (0..n_cp)
        .map(|i| {
            let mut row = vec![result.policies[0].checkpoints[i].t as f64];
            for p in &result.policies {
                row.push(p.checkpoints[i].kendall_tau.unwrap_or(f64::NAN));
            }
            row
        })
        .collect();
    fasea_sim::write_csv(
        &dir.join(format!("{prefix}_kendall.csv")),
        &header_refs,
        &rows,
    )
}

/// Prints the end-of-run summary line for one simulation (final rewards
/// per policy, exhaustion time) — the textual check of the figures'
/// qualitative shape.
pub fn print_summary(label: &str, result: &SimulationResult) {
    let mut parts: Vec<String> = result
        .policies
        .iter()
        .map(|p| {
            format!(
                "{}={} (ar {:.3})",
                p.name,
                p.accounting.total_rewards(),
                p.accounting.accept_ratio()
            )
        })
        .collect();
    parts.push(format!(
        "OPT={}",
        result.reference.accounting.total_rewards()
    ));
    let exhausted = result
        .reference_exhausted_at
        .map(|t| format!(" | OPT exhausted at t={t}"))
        .unwrap_or_default();
    println!("[{label}] {}{}", parts.join(", "), exhausted);
}

/// Output directory for one experiment id.
pub fn exp_dir(opts: &Options, id: &str) -> PathBuf {
    opts.out_dir.join(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> Options {
        Options {
            horizon: 300,
            out_dir: std::env::temp_dir().join("fasea_exp_common_test"),
            ..Default::default()
        }
    }

    fn tiny_config(seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            num_events: 15,
            dim: 3,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn cell_runs_and_emits_csvs() {
        let opts = tiny_opts();
        let result = run_cell(tiny_config(1), AlgoParams::default(), &opts, true);
        assert_eq!(result.policies.len(), 5);
        assert_eq!(result.policies[0].name, "UCB");
        assert_eq!(result.policies[4].name, "Random");

        let dir = opts.out_dir.join("unit");
        write_metric_csvs(&dir, "test", &result).unwrap();
        write_kendall_csv(&dir, "test", &result).unwrap();
        for f in [
            "test_accept_ratio.csv",
            "test_total_rewards.csv",
            "test_total_regrets.csv",
            "test_regret_ratio.csv",
            "test_kendall.csv",
        ] {
            let content = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(content.lines().count() > 1, "{f} is empty");
            assert!(content.starts_with("t,"), "{f} header: {content}");
        }
        std::fs::remove_dir_all(&opts.out_dir).ok();
    }

    #[test]
    fn series_rows_align_with_checkpoints() {
        let opts = tiny_opts();
        let result = run_cell(tiny_config(2), AlgoParams::default(), &opts, false);
        let rows = series_rows(&result, |c| c.accept_ratio);
        assert_eq!(rows.len(), result.reference.checkpoints.len());
        // 1 time column + 5 policies + OPT.
        assert_eq!(rows[0].len(), 7);
        assert_eq!(series_header(&result).len(), 7);
    }
}

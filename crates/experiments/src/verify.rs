//! `fasea-exp verify` — machine-checks the paper's qualitative findings
//! against the CSV output of a previous `fasea-exp all` run.
//!
//! The reproduction target is never the paper's absolute numbers (the
//! substrate differs) but the *shape* of its results: who wins, where
//! curves drop, what degrades with `d`. DESIGN.md §5 lists those shapes
//! as success criteria; this module turns each into an executable check
//! over `results/`, so "did the reproduction succeed" is one command
//! rather than a reading exercise.

use crate::Options;
use fasea_sim::CsvTable;
use std::path::Path;

/// Outcome of one shape check.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Short identifier, e.g. `fig1-ordering`.
    pub id: &'static str,
    /// Human-readable statement of the paper's claim.
    pub claim: &'static str,
    /// `Ok(detail)` or `Err(explanation)`.
    pub outcome: Result<String, String>,
}

impl CheckResult {
    fn pass(id: &'static str, claim: &'static str, detail: String) -> Self {
        CheckResult {
            id,
            claim,
            outcome: Ok(detail),
        }
    }
    fn fail(id: &'static str, claim: &'static str, why: String) -> Self {
        CheckResult {
            id,
            claim,
            outcome: Err(why),
        }
    }
    fn skip(id: &'static str, claim: &'static str, missing: &Path) -> Self {
        CheckResult {
            id,
            claim,
            outcome: Err(format!("SKIP — missing {}", missing.display())),
        }
    }
}

fn load(path: &Path) -> Option<CsvTable> {
    CsvTable::read(path).ok()
}

/// Check 1 (Figure 1): final-rewards ordering
/// UCB ≥ Exploit ≈ both > eGreedy > TS > Random, TS > Random.
fn check_fig1_ordering(out: &Path) -> CheckResult {
    const ID: &str = "fig1-ordering";
    const CLAIM: &str = "UCB & Exploit lead, eGreedy close, TS only beats Random";
    let path = out.join("fig1/default_total_rewards.csv");
    let Some(t) = load(&path) else {
        return CheckResult::skip(ID, CLAIM, &path);
    };
    let last = |n: &str| t.last(n).unwrap_or(f64::NAN);
    let (ucb, ts, _eg, ex, rnd) = (
        last("UCB"),
        last("TS"),
        last("eGreedy"),
        last("Exploit"),
        last("Random"),
    );
    // At T = 100k totals can converge once capacity depletes, so test
    // at the reward curves' midpoint, where separation is maximal.
    let mid = t.rows.len() / 2;
    let mid_val = |n: &str| t.column(n).map(|c| c[mid]).unwrap_or(f64::NAN);
    let (m_ucb, m_ts, m_eg, m_ex, m_rnd) = (
        mid_val("UCB"),
        mid_val("TS"),
        mid_val("eGreedy"),
        mid_val("Exploit"),
        mid_val("Random"),
    );
    let ok = m_ucb > m_ts
        && m_ex > m_ts
        && m_eg > m_ts
        && m_ts > m_rnd
        && ucb >= ts
        && ex >= ts
        && ts >= rnd;
    if ok {
        CheckResult::pass(
            ID,
            CLAIM,
            format!("mid-run rewards UCB {m_ucb} / Exploit {m_ex} / eGreedy {m_eg} / TS {m_ts} / Random {m_rnd}"),
        )
    } else {
        CheckResult::fail(
            ID,
            CLAIM,
            format!("ordering violated: UCB {m_ucb}, Exploit {m_ex}, eGreedy {m_eg}, TS {m_ts}, Random {m_rnd}"),
        )
    }
}

/// Check 2 (Figure 1c): the sudden total-regret drop after OPT exhausts
/// capacity — TS's final regret must be well below its running peak.
fn check_fig1_regret_drop(out: &Path) -> CheckResult {
    const ID: &str = "fig1-regret-drop";
    const CLAIM: &str = "total regret drops suddenly once OPT exhausts event capacity";
    let path = out.join("fig1/default_total_regrets.csv");
    let Some(t) = load(&path) else {
        return CheckResult::skip(ID, CLAIM, &path);
    };
    let peak = t.max("TS").unwrap_or(f64::NAN);
    let final_ = t.last("TS").unwrap_or(f64::NAN);
    if final_ < peak * 0.8 {
        CheckResult::pass(ID, CLAIM, format!("TS regret peak {peak} → final {final_}"))
    } else {
        CheckResult::fail(
            ID,
            CLAIM,
            format!("no drop: TS peak {peak}, final {final_} (need final < 0.8·peak)"),
        )
    }
}

/// Check 3 (Figure 2): Kendall τ — UCB → 1, Random ≈ 0, TS noisy/lower.
fn check_fig2_kendall(out: &Path) -> CheckResult {
    const ID: &str = "fig2-kendall";
    const CLAIM: &str = "UCB's ranking converges to truth (τ→1); Random stays ≈0; TS lags";
    let path = out.join("fig2/default_kendall.csv");
    let Some(t) = load(&path) else {
        return CheckResult::skip(ID, CLAIM, &path);
    };
    // Average over the last quarter of checkpoints.
    let avg_tail = |n: &str| -> f64 {
        let col = t.column(n).unwrap_or_default();
        let k = col.len() / 4;
        let tail = &col[col.len().saturating_sub(k.max(1))..];
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    let (ucb, ts, rnd) = (avg_tail("UCB"), avg_tail("TS"), avg_tail("Random"));
    if ucb > 0.85 && rnd.abs() < 0.25 && ucb > ts {
        CheckResult::pass(
            ID,
            CLAIM,
            format!("τ tails: UCB {ucb:.3}, TS {ts:.3}, Random {rnd:.3}"),
        )
    } else {
        CheckResult::fail(
            ID,
            CLAIM,
            format!("τ tails: UCB {ucb:.3}, TS {ts:.3}, Random {rnd:.3}"),
        )
    }
}

/// Check 4 (Figure 4): TS is competitive at d = 1 and degrades with d.
fn check_fig4_dimension(out: &Path) -> CheckResult {
    const ID: &str = "fig4-ts-dimension";
    const CLAIM: &str = "TS competes with UCB at d=1 and degrades as d grows";
    let p1 = out.join("fig4/d1_accept_ratio.csv");
    let p15 = out.join("fig4/d15_accept_ratio.csv");
    let (Some(t1), Some(t15)) = (load(&p1), load(&p15)) else {
        return CheckResult::skip(ID, CLAIM, &p1);
    };
    let ratio = |t: &CsvTable| -> f64 {
        let ts = t.last("TS").unwrap_or(f64::NAN);
        let ucb = t.last("UCB").unwrap_or(f64::NAN);
        ts / ucb
    };
    let (r1, r15) = (ratio(&t1), ratio(&t15));
    if r1 > 0.9 && r1 > r15 + 0.1 {
        CheckResult::pass(
            ID,
            CLAIM,
            format!("TS/UCB accept-ratio: d1 {r1:.3}, d15 {r15:.3}"),
        )
    } else {
        CheckResult::fail(
            ID,
            CLAIM,
            format!("TS/UCB accept-ratio: d1 {r1:.3}, d15 {r15:.3}"),
        )
    }
}

/// Check 5 (Figure 6): with c_v ∼ N(500,200) the regret drop disappears
/// (events never run out) while N(100,100) drops early.
fn check_fig6_capacity(out: &Path) -> CheckResult {
    const ID: &str = "fig6-capacity";
    const CLAIM: &str = "regret drop present for cv~N(100,100), absent for cv~N(500,200)";
    let p_small = out.join("fig6/cv100_total_regrets.csv");
    let p_large = out.join("fig6/cv500_total_regrets.csv");
    let (Some(small), Some(large)) = (load(&p_small), load(&p_large)) else {
        return CheckResult::skip(ID, CLAIM, &p_small);
    };
    let drop = |t: &CsvTable, n: &str| -> f64 {
        let peak = t.max(n).unwrap_or(f64::NAN);
        let fin = t.last(n).unwrap_or(f64::NAN);
        if peak <= 0.0 {
            0.0
        } else {
            1.0 - fin / peak
        }
    };
    let small_drop = drop(&small, "TS");
    let large_drop = drop(&large, "TS");
    if small_drop > 0.2 && large_drop < small_drop {
        CheckResult::pass(
            ID,
            CLAIM,
            format!(
                "TS regret drop: cv100 {:.0}%, cv500 {:.0}%",
                small_drop * 100.0,
                large_drop * 100.0
            ),
        )
    } else {
        CheckResult::fail(
            ID,
            CLAIM,
            format!(
                "TS regret drop: cv100 {:.0}%, cv500 {:.0}%",
                small_drop * 100.0,
                large_drop * 100.0
            ),
        )
    }
}

/// Check 6 (Table 7): UCB's mean real-data accept ratio beats TS's and
/// Random's decisively in both capacity regimes.
fn check_table7(out: &Path) -> CheckResult {
    const ID: &str = "table7-real";
    const CLAIM: &str = "on real data UCB dominates TS and Random across users";
    let path = out.join("table7/table7_cu5.csv");
    let Some(t) = load(&path) else {
        return CheckResult::skip(ID, CLAIM, &path);
    };
    // Rows are algorithms; row order: UCB, TS, eGreedy, Exploit, Random,
    // Online, Full Kn., c_u — column 0 is the row label (NaN after
    // parsing), columns 1.. are users.
    let row_mean = |idx: usize| -> f64 {
        let row = &t.rows[idx];
        let vals = &row[1..];
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let (ucb, ts, random) = (row_mean(0), row_mean(1), row_mean(4));
    if ucb > ts + 0.2 && ucb > random + 0.2 {
        CheckResult::pass(
            ID,
            CLAIM,
            format!("mean accept ratios (c_u=5): UCB {ucb:.2}, TS {ts:.2}, Random {random:.2}"),
        )
    } else {
        CheckResult::fail(
            ID,
            CLAIM,
            format!("mean accept ratios (c_u=5): UCB {ucb:.2}, TS {ts:.2}, Random {random:.2}"),
        )
    }
}

/// Check 7 (Figure 11): TS stays bad under the basic contextual bandit.
fn check_fig11_basic(out: &Path) -> CheckResult {
    const ID: &str = "fig11-basic";
    const CLAIM: &str = "TS underperforms UCB under the basic contextual bandit too";
    let path = out.join("fig11/v500_total_rewards.csv");
    let Some(t) = load(&path) else {
        return CheckResult::skip(ID, CLAIM, &path);
    };
    let ucb = t.last("UCB").unwrap_or(f64::NAN);
    let ts = t.last("TS").unwrap_or(f64::NAN);
    let random = t.last("Random").unwrap_or(f64::NAN);
    if ucb > ts && ts > random {
        CheckResult::pass(
            ID,
            CLAIM,
            format!("rewards: UCB {ucb}, TS {ts}, Random {random}"),
        )
    } else {
        CheckResult::fail(
            ID,
            CLAIM,
            format!("rewards: UCB {ucb}, TS {ts}, Random {random}"),
        )
    }
}

/// Runs all shape checks over `opts.out_dir` and prints a PASS/FAIL
/// report. Returns an error listing the failed checks (skips count as
/// failures — a missing artefact means the reproduction is incomplete).
pub fn verify(opts: &Options) -> Result<(), String> {
    let out = opts.out_dir.clone();
    let checks = [
        check_fig1_ordering(&out),
        check_fig1_regret_drop(&out),
        check_fig2_kendall(&out),
        check_fig4_dimension(&out),
        check_fig6_capacity(&out),
        check_table7(&out),
        check_fig11_basic(&out),
    ];
    let mut failed = Vec::new();
    for c in &checks {
        match &c.outcome {
            Ok(detail) => println!("PASS {:<18} {} — {}", c.id, c.claim, detail),
            Err(why) => {
                println!("FAIL {:<18} {} — {}", c.id, c.claim, why);
                failed.push(c.id);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall {} shape checks passed", checks.len());
        Ok(())
    } else {
        Err(format!(
            "{} of {} checks failed: {:?}",
            failed.len(),
            checks.len(),
            failed
        ))
    }
}

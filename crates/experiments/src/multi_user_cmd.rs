//! `fasea-exp multi-user` — drive a population of recurring users
//! through a store-backed personalized policy (`fasea-models`).
//!
//! ```text
//! fasea-exp multi-user [--users N] [--t N] [--events N] [--dim D]
//!                      [--seed S] [--heterogeneity H]
//!                      [--policy multi-ucb|multi-ts]
//!                      [--budget-mb M] [--warm-budget-kb K]
//!                      [--spill-dir DIR] [--verify-determinism 0|1]
//! ```
//!
//! With `--budget-mb 0` (the default) every materialized model stays
//! hot. A positive budget bounds the exact-f64 tier to that many
//! mebibytes (and the quantized warm tier to `--warm-budget-kb`,
//! default a quarter of the hot budget), spilling the overflow through
//! the CRC-framed spill log under `--spill-dir` (default: a
//! process-private temp directory, removed afterwards).
//!
//! `--verify-determinism 1` runs the same workload twice — once under
//! the budget, once unbounded — and asserts bit-equality of the
//! arrangement digest, the accounting, the OPT co-simulation, and the
//! full policy state blob (estimator bits; for TS also the RNG
//! position): the store's headline contract, checked end to end from
//! the command line.

use crate::serve_cmd::{parse_flags, parse_u64};
use fasea_bandit::Policy;
use fasea_datagen::{MultiUserConfig, MultiUserWorkload, SyntheticConfig};
use fasea_models::{
    EstimatorStore, PersonalizedTs, PersonalizedUcb, StoreConfig, StoreStats, UserSchedule,
};
use fasea_sim::{run_multi_user_stored, AsciiTable, MultiUserRunResult};
use fasea_stats::crn::mix64;
use std::path::{Path, PathBuf};

/// Parsed flags of the `multi-user` subcommand.
#[derive(Debug, Clone)]
pub struct MultiUserSpec {
    /// Population size `U`.
    pub users: usize,
    /// Rounds to run.
    pub horizon: u64,
    /// Events `|V|`.
    pub events: usize,
    /// Context dimension `d`.
    pub dim: usize,
    /// Master seed.
    pub seed: u64,
    /// Population heterogeneity `h ∈ [0, 1]`.
    pub heterogeneity: f64,
    /// `multi-ucb` or `multi-ts`.
    pub policy: String,
    /// Hot-tier budget in MiB (0 = unbounded).
    pub budget_mb: u64,
    /// Warm-tier budget in KiB (0 = a quarter of the hot budget).
    pub warm_budget_kb: u64,
    /// Spill directory (`None` = process-private temp, removed after).
    pub spill_dir: Option<PathBuf>,
    /// Re-run unbounded and assert bit-equality.
    pub verify_determinism: bool,
}

impl Default for MultiUserSpec {
    fn default() -> Self {
        MultiUserSpec {
            users: 10_000,
            horizon: 50_000,
            events: 50,
            dim: 8,
            seed: 0x00FA_5EA0_0517,
            heterogeneity: 0.8,
            policy: "multi-ucb".into(),
            budget_mb: 0,
            warm_budget_kb: 0,
            spill_dir: None,
            verify_determinism: false,
        }
    }
}

/// A store-backed policy, kept as a concrete enum so the driver can
/// reach the [`EstimatorStore`] for stats after the run (the `Policy`
/// trait alone does not expose it).
pub enum StorePolicy {
    /// Per-user UCB.
    Ucb(PersonalizedUcb),
    /// Per-user Thompson Sampling.
    Ts(PersonalizedTs),
}

impl StorePolicy {
    /// The policy as a trait object for the runner.
    pub fn as_policy_mut(&mut self) -> &mut dyn Policy {
        match self {
            StorePolicy::Ucb(p) => p,
            StorePolicy::Ts(p) => p,
        }
    }

    /// The backing store.
    pub fn store(&self) -> &EstimatorStore {
        match self {
            StorePolicy::Ucb(p) => p.store(),
            StorePolicy::Ts(p) => p.store(),
        }
    }

    /// Full state blob (estimator bits; for TS also the RNG state).
    pub fn save_state(&self) -> Vec<u8> {
        match self {
            StorePolicy::Ucb(p) => p.save_state(),
            StorePolicy::Ts(p) => p.save_state(),
        }
    }

    /// TS posterior-RNG digest (None for UCB).
    pub fn rng_digest(&self) -> Option<u64> {
        match self {
            StorePolicy::Ucb(_) => None,
            StorePolicy::Ts(p) => Some(p.rng_digest()),
        }
    }
}

impl MultiUserSpec {
    /// Generates the deterministic multi-user workload for this spec.
    pub fn workload(&self) -> MultiUserWorkload {
        MultiUserWorkload::generate(MultiUserConfig {
            base: SyntheticConfig {
                num_events: self.events,
                dim: self.dim,
                seed: self.seed,
                ..Default::default()
            },
            population: self.users,
            heterogeneity: self.heterogeneity,
        })
    }

    fn store_config(&self, spill_dir: Option<&Path>) -> Result<StoreConfig, String> {
        if self.budget_mb == 0 {
            return Ok(StoreConfig::unbounded(self.dim, 1.0));
        }
        let dir = spill_dir.ok_or("a bounded budget needs a spill directory")?;
        let hot = (self.budget_mb as usize) << 20;
        let warm = if self.warm_budget_kb > 0 {
            (self.warm_budget_kb as usize) << 10
        } else {
            hot / 4
        };
        Ok(StoreConfig::bounded(self.dim, 1.0, hot, warm, dir))
    }

    /// Builds the store-backed policy for this spec. `spill_dir` is
    /// required iff `budget_mb > 0`.
    pub fn build_policy(&self, spill_dir: Option<&Path>) -> Result<StorePolicy, String> {
        let config = self.store_config(spill_dir)?;
        let store = EstimatorStore::new(config).map_err(|e| format!("open store: {e}"))?;
        // Same salt as MultiUserWorkload::generate, so policy and
        // workload agree on who arrives at every round.
        let schedule = UserSchedule::new(mix64(self.seed ^ 0x5C4E_D01E), self.users);
        match self.policy.as_str() {
            "multi-ucb" => Ok(StorePolicy::Ucb(PersonalizedUcb::new(store, schedule, 2.0))),
            "multi-ts" => Ok(StorePolicy::Ts(PersonalizedTs::new(
                store,
                schedule,
                0.1,
                mix64(self.seed ^ 0x7507_11CE),
            ))),
            other => Err(format!("unknown policy '{other}' (multi-ucb|multi-ts)")),
        }
    }
}

/// Entry point of `fasea-exp multi-user`.
///
/// # Errors
/// Flag parse failures, store open failures, or — under
/// `--verify-determinism 1` — any bit divergence between the budgeted
/// and the unbounded run.
pub fn multi_user_main(args: &[String]) -> Result<(), String> {
    let mut spec = MultiUserSpec::default();
    for (flag, value) in parse_flags(args)? {
        match flag.as_str() {
            "users" => spec.users = parse_u64(&flag, &value)? as usize,
            "t" => spec.horizon = parse_u64(&flag, &value)?,
            "events" => spec.events = parse_u64(&flag, &value)? as usize,
            "dim" => spec.dim = parse_u64(&flag, &value)? as usize,
            "seed" => spec.seed = parse_u64(&flag, &value)?,
            "heterogeneity" => {
                spec.heterogeneity = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid number '{value}' for --heterogeneity"))?
            }
            "policy" => spec.policy = value,
            "budget-mb" => spec.budget_mb = parse_u64(&flag, &value)?,
            "warm-budget-kb" => spec.warm_budget_kb = parse_u64(&flag, &value)?,
            "spill-dir" => spec.spill_dir = Some(value.into()),
            "verify-determinism" => spec.verify_determinism = value == "1" || value == "true",
            other => return Err(format!("unknown flag --{other} for multi-user")),
        }
    }

    let own_temp = spec.budget_mb > 0 && spec.spill_dir.is_none();
    let spill_dir = spec.spill_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("fasea-multi-user-{}", std::process::id()))
    });
    let report = run_spec(&spec, &spill_dir);
    if own_temp {
        let _ = std::fs::remove_dir_all(&spill_dir);
    }
    print!("{}", report?);
    Ok(())
}

/// Runs the spec (and, if requested, the unbounded control run),
/// returning the rendered report. Split from [`multi_user_main`] so
/// tests can exercise the full path without a process.
pub fn run_spec(spec: &MultiUserSpec, spill_dir: &Path) -> Result<String, String> {
    let workload = spec.workload();
    let spill = (spec.budget_mb > 0).then_some(spill_dir);
    let mut policy = spec.build_policy(spill)?;
    let result = run_multi_user_stored(
        &workload,
        policy.as_policy_mut(),
        spec.horizon,
        spec.seed ^ 0xFB,
    );

    let mut out = String::new();
    let mut table = AsciiTable::new(&[
        "policy", "users", "rounds", "rewards", "OPT", "regret", "digest",
    ]);
    let regret = result.opt_rewards as i64 - result.accounting.total_rewards() as i64;
    table.row(vec![
        spec.policy.clone(),
        spec.users.to_string(),
        result.accounting.rounds().to_string(),
        result.accounting.total_rewards().to_string(),
        result.opt_rewards.to_string(),
        regret.to_string(),
        format!("{:#018x}", result.arrangement_digest),
    ]);
    out.push_str(&table.render());
    out.push_str(&render_store_stats(&policy.store().stats()));

    if spec.verify_determinism {
        let control_spec = MultiUserSpec {
            budget_mb: 0,
            warm_budget_kb: 0,
            ..spec.clone()
        };
        let mut control = control_spec.build_policy(None)?;
        let control_result = run_multi_user_stored(
            &workload,
            control.as_policy_mut(),
            spec.horizon,
            spec.seed ^ 0xFB,
        );
        verify_bit_equal(&result, &control_result, &policy, &control)?;
        out.push_str("determinism: OK — budgeted run bit-equal to unbounded run\n");
    }
    Ok(out)
}

/// Asserts the budgeted and unbounded runs are bit-equal:
/// arrangements, accounting, OPT, the complete policy state blob and
/// (for TS) the posterior-RNG position.
pub fn verify_bit_equal(
    budgeted: &MultiUserRunResult,
    unbounded: &MultiUserRunResult,
    budgeted_policy: &StorePolicy,
    unbounded_policy: &StorePolicy,
) -> Result<(), String> {
    if budgeted.arrangement_digest != unbounded.arrangement_digest {
        return Err(format!(
            "arrangement digest diverged: {:#x} vs {:#x}",
            budgeted.arrangement_digest, unbounded.arrangement_digest
        ));
    }
    if budgeted.accounting.total_rewards() != unbounded.accounting.total_rewards()
        || budgeted.accounting.total_arranged() != unbounded.accounting.total_arranged()
    {
        return Err("accounting diverged between budgeted and unbounded runs".into());
    }
    if budgeted.opt_rewards != unbounded.opt_rewards {
        return Err("OPT co-simulation diverged (coin stream desync)".into());
    }
    if budgeted_policy.rng_digest() != unbounded_policy.rng_digest() {
        return Err("TS posterior-RNG position diverged".into());
    }
    if budgeted_policy.save_state() != unbounded_policy.save_state() {
        return Err("policy state blobs diverged between budgeted and unbounded runs".into());
    }
    Ok(())
}

fn render_store_stats(s: &StoreStats) -> String {
    format!(
        "store: users={} cold={} hot={} warm={} spilled={} hot_bytes={} warm_bytes={}\n\
         traffic: materializations={} faults={} demotions={} evictions={} \
         spill_live={}B spill_file={}B appends={} compactions={}\n",
        s.users,
        s.cold,
        s.hot,
        s.warm,
        s.spilled,
        s.hot_bytes,
        s.warm_bytes,
        s.cow_materializations,
        s.faults,
        s.demotions,
        s.evictions,
        s.spill_live_bytes,
        s.spill_file_bytes,
        s.spill_appends,
        s.spill_compactions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-multi-user-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small(policy: &str) -> MultiUserSpec {
        MultiUserSpec {
            users: 40,
            horizon: 800,
            events: 20,
            dim: 4,
            seed: 77,
            heterogeneity: 0.9,
            policy: policy.into(),
            budget_mb: 1,
            warm_budget_kb: 1,
            spill_dir: None,
            verify_determinism: true,
        }
    }

    #[test]
    fn verify_determinism_passes_for_both_policies() {
        for policy in ["multi-ucb", "multi-ts"] {
            let dir = temp(policy);
            let report = run_spec(&small(policy), &dir).expect("run_spec failed");
            assert!(report.contains("determinism: OK"), "{report}");
            assert!(report.contains("store: users="), "{report}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn schedule_matches_the_workload_generator() {
        let spec = small("multi-ucb");
        let w = spec.workload();
        let dir = temp("sched");
        let policy = spec.build_policy(Some(&dir)).unwrap();
        let schedule = match &policy {
            StorePolicy::Ucb(p) => p.schedule(),
            StorePolicy::Ts(p) => p.schedule(),
        };
        for t in 0..500 {
            assert_eq!(schedule.user_at(t) as usize, w.user_at(t), "t={t}");
        }
        drop(policy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_policy_is_rejected() {
        let spec = MultiUserSpec {
            policy: "nope".into(),
            budget_mb: 0,
            ..small("nope")
        };
        assert!(spec.build_policy(None).is_err());
    }

    #[test]
    fn bounded_budget_without_spill_dir_is_rejected() {
        let spec = small("multi-ucb");
        assert!(spec.build_policy(None).is_err());
    }
}

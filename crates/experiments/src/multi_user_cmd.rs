//! `fasea-exp multi-user` — drive a population of recurring users
//! through a store-backed personalized policy (`fasea-models`).
//!
//! ```text
//! fasea-exp multi-user [--users N] [--t N] [--events N] [--dim D]
//!                      [--seed S] [--heterogeneity H]
//!                      [--policy multi-ucb|multi-ts]
//!                      [--budget-mb M] [--warm-budget-kb K]
//!                      [--cohorts N] [--cohort-folds K]
//!                      [--state exact|sketched] [--sketch-rank R]
//!                      [--spill-dir DIR] [--verify-determinism 0|1]
//! ```
//!
//! With `--budget-mb 0` (the default) every materialized model stays
//! hot. A positive budget bounds the exact-f64 tier to that many
//! mebibytes (and the quantized warm tier to `--warm-budget-kb`,
//! default a quarter of the hot budget), spilling the overflow through
//! the CRC-framed spill log under `--spill-dir` (default: a
//! process-private temp directory, removed afterwards).
//!
//! `--cohorts N` turns on the three-level cohort prior chain: users
//! hash into `N` cohorts, each cold user's first `--cohort-folds`
//! observations train a shared per-cohort prior instead of
//! materializing private state, and cold selections read through the
//! cohort. `--state sketched` additionally demotes private state as a
//! rank-`--sketch-rank` frequent-directions sketch (`O(r·d)` warm
//! bytes instead of `O(d²)`), reconstructed against the cohort prior
//! on promotion.
//!
//! `--verify-determinism 1` runs the same workload twice — once under
//! the budget, once unbounded — and asserts bit-equality of the
//! arrangement digest, the accounting, the OPT co-simulation, and the
//! full policy state blob (estimator bits; for TS also the RNG
//! position): the store's headline contract, checked end to end from
//! the command line. In `--state sketched` the budgeted run is lossy
//! by design (sketch reconstruction), so the check relaxes to *regret
//! parity*: the budgeted run's regret must stay within tolerance of
//! the exact-state control run.

use crate::serve_cmd::{parse_flags, parse_u64};
use fasea_bandit::Policy;
use fasea_datagen::{MultiUserConfig, MultiUserWorkload, SyntheticConfig};
use fasea_models::{
    EstimatorStore, PersonalizedTs, PersonalizedUcb, StoreConfig, StoreStats, UserSchedule,
};
use fasea_sim::{run_multi_user_stored, AsciiTable, MultiUserRunResult};
use fasea_stats::crn::mix64;
use std::path::{Path, PathBuf};

/// Parsed flags of the `multi-user` subcommand.
#[derive(Debug, Clone)]
pub struct MultiUserSpec {
    /// Population size `U`.
    pub users: usize,
    /// Rounds to run.
    pub horizon: u64,
    /// Events `|V|`.
    pub events: usize,
    /// Context dimension `d`.
    pub dim: usize,
    /// Master seed.
    pub seed: u64,
    /// Population heterogeneity `h ∈ [0, 1]`.
    pub heterogeneity: f64,
    /// `multi-ucb` or `multi-ts`.
    pub policy: String,
    /// Hot-tier budget in MiB (0 = unbounded).
    pub budget_mb: u64,
    /// Warm-tier budget in KiB (0 = a quarter of the hot budget).
    pub warm_budget_kb: u64,
    /// Cohort count for the prior chain (0 = flat, no cohorts).
    pub cohorts: usize,
    /// Cold observations folded into the cohort prior before a user
    /// COW-materializes (only meaningful with `cohorts > 0`).
    pub cohort_folds: u64,
    /// Per-user state mode: `exact` or `sketched`.
    pub state: String,
    /// Sketch rank `r` (only meaningful with `--state sketched`).
    pub sketch_rank: usize,
    /// Spill directory (`None` = process-private temp, removed after).
    pub spill_dir: Option<PathBuf>,
    /// Re-run unbounded and assert bit-equality.
    pub verify_determinism: bool,
}

impl Default for MultiUserSpec {
    fn default() -> Self {
        MultiUserSpec {
            users: 10_000,
            horizon: 50_000,
            events: 50,
            dim: 8,
            seed: 0x00FA_5EA0_0517,
            heterogeneity: 0.8,
            policy: "multi-ucb".into(),
            budget_mb: 0,
            warm_budget_kb: 0,
            cohorts: 0,
            cohort_folds: 8,
            state: "exact".into(),
            sketch_rank: 4,
            spill_dir: None,
            verify_determinism: false,
        }
    }
}

/// A store-backed policy, kept as a concrete enum so the driver can
/// reach the [`EstimatorStore`] for stats after the run (the `Policy`
/// trait alone does not expose it).
pub enum StorePolicy {
    /// Per-user UCB.
    Ucb(PersonalizedUcb),
    /// Per-user Thompson Sampling.
    Ts(PersonalizedTs),
}

impl StorePolicy {
    /// The policy as a trait object for the runner.
    pub fn as_policy_mut(&mut self) -> &mut dyn Policy {
        match self {
            StorePolicy::Ucb(p) => p,
            StorePolicy::Ts(p) => p,
        }
    }

    /// The backing store.
    pub fn store(&self) -> &EstimatorStore {
        match self {
            StorePolicy::Ucb(p) => p.store(),
            StorePolicy::Ts(p) => p.store(),
        }
    }

    /// Full state blob (estimator bits; for TS also the RNG state).
    pub fn save_state(&self) -> Vec<u8> {
        match self {
            StorePolicy::Ucb(p) => p.save_state(),
            StorePolicy::Ts(p) => p.save_state(),
        }
    }

    /// TS posterior-RNG digest (None for UCB).
    pub fn rng_digest(&self) -> Option<u64> {
        match self {
            StorePolicy::Ucb(_) => None,
            StorePolicy::Ts(p) => Some(p.rng_digest()),
        }
    }
}

impl MultiUserSpec {
    /// Generates the deterministic multi-user workload for this spec.
    pub fn workload(&self) -> MultiUserWorkload {
        MultiUserWorkload::generate(MultiUserConfig {
            base: SyntheticConfig {
                num_events: self.events,
                dim: self.dim,
                seed: self.seed,
                ..Default::default()
            },
            population: self.users,
            heterogeneity: self.heterogeneity,
        })
    }

    /// The deterministic cohort salt of this spec — derived from the
    /// master seed with a constant distinct from the schedule salt, so
    /// cohort assignment and round→user mapping stay independent.
    pub fn cohort_salt(&self) -> u64 {
        mix64(self.seed ^ 0xC040_0947)
    }

    fn store_config(&self, spill_dir: Option<&Path>) -> Result<StoreConfig, String> {
        let mut config = if self.budget_mb == 0 {
            StoreConfig::unbounded(self.dim, 1.0)
        } else {
            let dir = spill_dir.ok_or("a bounded budget needs a spill directory")?;
            let hot = (self.budget_mb as usize) << 20;
            let warm = if self.warm_budget_kb > 0 {
                (self.warm_budget_kb as usize) << 10
            } else {
                hot / 4
            };
            StoreConfig::bounded(self.dim, 1.0, hot, warm, dir)
        };
        if self.cohorts > 0 {
            config = config.with_cohorts(self.cohorts, self.cohort_salt(), self.cohort_folds);
        }
        match self.state.as_str() {
            "exact" => {}
            "sketched" => config = config.with_sketched(self.sketch_rank),
            other => return Err(format!("unknown state '{other}' (exact|sketched)")),
        }
        Ok(config)
    }

    /// Builds the store-backed policy for this spec. `spill_dir` is
    /// required iff `budget_mb > 0`.
    pub fn build_policy(&self, spill_dir: Option<&Path>) -> Result<StorePolicy, String> {
        let config = self.store_config(spill_dir)?;
        let store = EstimatorStore::new(config).map_err(|e| format!("open store: {e}"))?;
        // Same salt as MultiUserWorkload::generate, so policy and
        // workload agree on who arrives at every round.
        let schedule = UserSchedule::new(mix64(self.seed ^ 0x5C4E_D01E), self.users);
        match self.policy.as_str() {
            "multi-ucb" => Ok(StorePolicy::Ucb(PersonalizedUcb::new(store, schedule, 2.0))),
            "multi-ts" => Ok(StorePolicy::Ts(PersonalizedTs::new(
                store,
                schedule,
                0.1,
                mix64(self.seed ^ 0x7507_11CE),
            ))),
            other => Err(format!("unknown policy '{other}' (multi-ucb|multi-ts)")),
        }
    }
}

/// Entry point of `fasea-exp multi-user`.
///
/// # Errors
/// Flag parse failures, store open failures, or — under
/// `--verify-determinism 1` — any bit divergence between the budgeted
/// and the unbounded run.
pub fn multi_user_main(args: &[String]) -> Result<(), String> {
    let mut spec = MultiUserSpec::default();
    for (flag, value) in parse_flags(args)? {
        match flag.as_str() {
            "users" => spec.users = parse_u64(&flag, &value)? as usize,
            "t" => spec.horizon = parse_u64(&flag, &value)?,
            "events" => spec.events = parse_u64(&flag, &value)? as usize,
            "dim" => spec.dim = parse_u64(&flag, &value)? as usize,
            "seed" => spec.seed = parse_u64(&flag, &value)?,
            "heterogeneity" => {
                spec.heterogeneity = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid number '{value}' for --heterogeneity"))?
            }
            "policy" => spec.policy = value,
            "budget-mb" => spec.budget_mb = parse_u64(&flag, &value)?,
            "warm-budget-kb" => spec.warm_budget_kb = parse_u64(&flag, &value)?,
            "cohorts" => spec.cohorts = parse_u64(&flag, &value)? as usize,
            "cohort-folds" => spec.cohort_folds = parse_u64(&flag, &value)?,
            "state" => spec.state = value,
            "sketch-rank" => spec.sketch_rank = parse_u64(&flag, &value)? as usize,
            "spill-dir" => spec.spill_dir = Some(value.into()),
            "verify-determinism" => spec.verify_determinism = value == "1" || value == "true",
            other => return Err(format!("unknown flag --{other} for multi-user")),
        }
    }

    let own_temp = spec.budget_mb > 0 && spec.spill_dir.is_none();
    let spill_dir = spec.spill_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("fasea-multi-user-{}", std::process::id()))
    });
    let report = run_spec(&spec, &spill_dir);
    if own_temp {
        let _ = std::fs::remove_dir_all(&spill_dir);
    }
    print!("{}", report?);
    Ok(())
}

/// Runs the spec (and, if requested, the unbounded control run),
/// returning the rendered report. Split from [`multi_user_main`] so
/// tests can exercise the full path without a process.
pub fn run_spec(spec: &MultiUserSpec, spill_dir: &Path) -> Result<String, String> {
    let workload = spec.workload();
    let spill = (spec.budget_mb > 0).then_some(spill_dir);
    let mut policy = spec.build_policy(spill)?;
    let result = run_multi_user_stored(
        &workload,
        policy.as_policy_mut(),
        spec.horizon,
        spec.seed ^ 0xFB,
    );

    let mut out = String::new();
    let mut table = AsciiTable::new(&[
        "policy", "users", "rounds", "rewards", "OPT", "regret", "digest",
    ]);
    let regret = result.opt_rewards as i64 - result.accounting.total_rewards() as i64;
    table.row(vec![
        spec.policy.clone(),
        spec.users.to_string(),
        result.accounting.rounds().to_string(),
        result.accounting.total_rewards().to_string(),
        result.opt_rewards.to_string(),
        regret.to_string(),
        format!("{:#018x}", result.arrangement_digest),
    ]);
    out.push_str(&table.render());
    out.push_str(&render_store_stats(&policy.store().stats()));

    if spec.verify_determinism {
        let control_spec = MultiUserSpec {
            budget_mb: 0,
            warm_budget_kb: 0,
            state: "exact".into(),
            ..spec.clone()
        };
        let mut control = control_spec.build_policy(None)?;
        let control_result = run_multi_user_stored(
            &workload,
            control.as_policy_mut(),
            spec.horizon,
            spec.seed ^ 0xFB,
        );
        if spec.state == "sketched" {
            // Sketch reconstruction is lossy by design; the gate is
            // regret parity with the exact-state control run.
            verify_regret_parity(&result, &control_result)?;
            out.push_str("determinism: OK — sketched run regret within tolerance of exact run\n");
        } else {
            verify_bit_equal(&result, &control_result, &policy, &control)?;
            out.push_str("determinism: OK — budgeted run bit-equal to unbounded run\n");
        }
    }
    Ok(out)
}

/// Asserts the sketched run's regret stays within tolerance of the
/// exact-state control run: the absolute regret gap must not exceed
/// 2% of OPT plus a small-horizon slack.
pub fn verify_regret_parity(
    sketched: &MultiUserRunResult,
    exact: &MultiUserRunResult,
) -> Result<(), String> {
    let regret =
        |r: &MultiUserRunResult| r.opt_rewards as i64 - r.accounting.total_rewards() as i64;
    let gap = (regret(sketched) - regret(exact)).abs();
    let tolerance = (exact.opt_rewards as f64 * 0.02).ceil() as i64 + 25;
    if gap > tolerance {
        return Err(format!(
            "sketched regret diverged: sketched {} vs exact {} (gap {gap} > tolerance {tolerance})",
            regret(sketched),
            regret(exact)
        ));
    }
    Ok(())
}

/// Asserts the budgeted and unbounded runs are bit-equal:
/// arrangements, accounting, OPT, the complete policy state blob and
/// (for TS) the posterior-RNG position.
pub fn verify_bit_equal(
    budgeted: &MultiUserRunResult,
    unbounded: &MultiUserRunResult,
    budgeted_policy: &StorePolicy,
    unbounded_policy: &StorePolicy,
) -> Result<(), String> {
    if budgeted.arrangement_digest != unbounded.arrangement_digest {
        return Err(format!(
            "arrangement digest diverged: {:#x} vs {:#x}",
            budgeted.arrangement_digest, unbounded.arrangement_digest
        ));
    }
    if budgeted.accounting.total_rewards() != unbounded.accounting.total_rewards()
        || budgeted.accounting.total_arranged() != unbounded.accounting.total_arranged()
    {
        return Err("accounting diverged between budgeted and unbounded runs".into());
    }
    if budgeted.opt_rewards != unbounded.opt_rewards {
        return Err("OPT co-simulation diverged (coin stream desync)".into());
    }
    if budgeted_policy.rng_digest() != unbounded_policy.rng_digest() {
        return Err("TS posterior-RNG position diverged".into());
    }
    if budgeted_policy.save_state() != unbounded_policy.save_state() {
        return Err("policy state blobs diverged between budgeted and unbounded runs".into());
    }
    Ok(())
}

fn render_store_stats(s: &StoreStats) -> String {
    format!(
        "store: users={} cold={} hot={} warm={} spilled={} hot_bytes={} warm_bytes={}\n\
         traffic: materializations={} faults={} demotions={} evictions={} \
         spill_live={}B spill_file={}B appends={} compactions={}\n\
         cohorts: materialized={} cohort_bytes={} hits={} folds={} sketch_promotions={}\n",
        s.users,
        s.cold,
        s.hot,
        s.warm,
        s.spilled,
        s.hot_bytes,
        s.warm_bytes,
        s.cow_materializations,
        s.faults,
        s.demotions,
        s.evictions,
        s.spill_live_bytes,
        s.spill_file_bytes,
        s.spill_appends,
        s.spill_compactions,
        s.cohorts_materialized,
        s.cohort_bytes,
        s.cohort_hits,
        s.cohort_folds,
        s.sketch_promotions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-multi-user-cmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small(policy: &str) -> MultiUserSpec {
        MultiUserSpec {
            users: 40,
            horizon: 800,
            events: 20,
            dim: 4,
            seed: 77,
            heterogeneity: 0.9,
            policy: policy.into(),
            budget_mb: 1,
            warm_budget_kb: 1,
            cohorts: 0,
            cohort_folds: 8,
            state: "exact".into(),
            sketch_rank: 2,
            spill_dir: None,
            verify_determinism: true,
        }
    }

    #[test]
    fn verify_determinism_passes_for_both_policies() {
        for policy in ["multi-ucb", "multi-ts"] {
            let dir = temp(policy);
            let report = run_spec(&small(policy), &dir).expect("run_spec failed");
            assert!(report.contains("determinism: OK"), "{report}");
            assert!(report.contains("store: users="), "{report}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn cohort_mode_budgeted_run_is_bit_equal_to_unbounded() {
        let spec = MultiUserSpec {
            cohorts: 8,
            cohort_folds: 3,
            ..small("multi-ucb")
        };
        let dir = temp("cohort-parity");
        let report = run_spec(&spec, &dir).expect("run_spec failed");
        assert!(report.contains("determinism: OK"), "{report}");
        assert!(report.contains("cohorts: materialized="), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sketched_mode_passes_regret_parity_at_d_16() {
        // 400 users at d = 16 overflow the 1 MiB hot budget, so the
        // run demotes (and later promotes) through sketch records —
        // the regret-parity gate is exercised, not vacuous.
        let spec = MultiUserSpec {
            users: 400,
            dim: 16,
            horizon: 1500,
            cohorts: 4,
            cohort_folds: 2,
            state: "sketched".into(),
            sketch_rank: 4,
            ..small("multi-ucb")
        };
        let dir = temp("sketched-parity");
        let report = run_spec(&spec, &dir).expect("run_spec failed");
        assert!(
            report.contains("regret within tolerance"),
            "sketched parity gate missing: {report}"
        );
        assert!(
            !report.contains("demotions=0 "),
            "budget never bound — parity gate vacuous: {report}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_state_is_rejected() {
        let spec = MultiUserSpec {
            state: "fuzzy".into(),
            budget_mb: 0,
            ..small("multi-ucb")
        };
        assert!(spec.build_policy(None).is_err());
    }

    #[test]
    fn schedule_matches_the_workload_generator() {
        let spec = small("multi-ucb");
        let w = spec.workload();
        let dir = temp("sched");
        let policy = spec.build_policy(Some(&dir)).unwrap();
        let schedule = match &policy {
            StorePolicy::Ucb(p) => p.schedule(),
            StorePolicy::Ts(p) => p.schedule(),
        };
        for t in 0..500 {
            assert_eq!(schedule.user_at(t) as usize, w.user_at(t), "t={t}");
        }
        drop(policy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_policy_is_rejected() {
        let spec = MultiUserSpec {
            policy: "nope".into(),
            budget_mb: 0,
            ..small("nope")
        };
        assert!(spec.build_policy(None).is_err());
    }

    #[test]
    fn bounded_budget_without_spill_dir_is_rejected() {
        let spec = small("multi-ucb");
        assert!(spec.build_policy(None).is_err());
    }
}

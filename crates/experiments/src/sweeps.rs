//! Figures 3–7: one-knob sweeps around the default setting.
//!
//! Each figure repeats the default simulation with one Table 4 factor
//! changed. Cells are independent and run in parallel.

use crate::common::{exp_dir, print_summary, run_cell, write_metric_csvs, AlgoParams};
use crate::Options;
use fasea_datagen::{CapacityModel, SyntheticConfig, ValueDistribution};
use fasea_sim::sweep::run_parallel;

/// Runs a set of labelled configs in parallel and writes each cell's
/// metric CSVs into `results/<id>/<label>_*.csv`.
fn run_labelled_cells(
    id: &str,
    cells: Vec<(String, SyntheticConfig)>,
    params: AlgoParams,
    opts: &Options,
) -> Result<(), String> {
    let dir = exp_dir(opts, id);
    let jobs: Vec<_> = cells
        .into_iter()
        .map(|(label, config)| {
            let opts = opts.clone();
            move || {
                let result = run_cell(config, params, &opts, false);
                (label, result)
            }
        })
        .collect();
    for (label, result) in run_parallel(jobs, opts.threads) {
        print_summary(&format!("{id} {label}"), &result);
        write_metric_csvs(&dir, &label, &result).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Figure 3: `|V| ∈ {100, 1000}` (the default 500 is Figure 1).
pub fn effect_of_num_events(opts: &Options) -> Result<(), String> {
    let cells = [100usize, 1000]
        .iter()
        .map(|&n| {
            (
                format!("v{n}"),
                SyntheticConfig {
                    num_events: n,
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                },
            )
        })
        .collect();
    run_labelled_cells("fig3", cells, AlgoParams::default(), opts)
}

/// Figure 4: `d ∈ {1, 5, 10, 15}` (the default 20 is Figure 1).
pub fn effect_of_dimension(opts: &Options) -> Result<(), String> {
    let cells = [1usize, 5, 10, 15]
        .iter()
        .map(|&d| {
            (
                format!("d{d}"),
                SyntheticConfig {
                    dim: d,
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                },
            )
        })
        .collect();
    run_labelled_cells("fig4", cells, AlgoParams::default(), opts)
}

/// Figure 5: `θ` and features under Normal, Power and Shuffle.
pub fn effect_of_distributions(opts: &Options) -> Result<(), String> {
    let cells = [
        ("normal", ValueDistribution::Normal),
        ("power", ValueDistribution::Power),
        ("shuffle", ValueDistribution::Shuffle),
    ]
    .iter()
    .map(|&(label, dist)| {
        (
            label.to_string(),
            SyntheticConfig {
                theta_dist: dist,
                x_dist: dist,
                seed: opts.seed,
                horizon: opts.horizon,
                ..Default::default()
            },
        )
    })
    .collect();
    run_labelled_cells("fig5", cells, AlgoParams::default(), opts)
}

/// Figure 6: `c_v ∼ N(100, 100)` and `N(500, 200)` (default N(200,100)
/// is Figure 1).
pub fn effect_of_event_capacity(opts: &Options) -> Result<(), String> {
    let cells = [
        (
            "cv100",
            CapacityModel {
                mean: 100.0,
                std: 100.0,
            },
        ),
        (
            "cv500",
            CapacityModel {
                mean: 500.0,
                std: 200.0,
            },
        ),
    ]
    .iter()
    .map(|&(label, capacity)| {
        (
            label.to_string(),
            SyntheticConfig {
                capacity,
                seed: opts.seed,
                horizon: opts.horizon,
                ..Default::default()
            },
        )
    })
    .collect();
    run_labelled_cells("fig6", cells, AlgoParams::default(), opts)
}

/// Figure 7: `cr ∈ {0, 0.5, 0.75, 1}` (default 0.25 is Figure 1).
pub fn effect_of_conflicts(opts: &Options) -> Result<(), String> {
    let cells = [0.0f64, 0.5, 0.75, 1.0]
        .iter()
        .map(|&cr| {
            (
                format!("cr{}", (cr * 100.0) as u32),
                SyntheticConfig {
                    conflict_ratio: cr,
                    seed: opts.seed,
                    horizon: opts.horizon,
                    ..Default::default()
                },
            )
        })
        .collect();
    run_labelled_cells("fig7", cells, AlgoParams::default(), opts)
}

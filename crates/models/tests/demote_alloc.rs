//! The zero-allocation bar for the batched demotion sweep.
//!
//! A counting `GlobalAlloc` wraps the system allocator and tallies
//! per-thread allocation bytes/calls. After a warm-up (which grows the
//! victim buffer, the encode buffer, the spill log's staged write
//! buffer, and primes the quantized-model recycling pool), the
//! steady-state [`EstimatorStore::enforce_budget`] sweeps — pop
//! victims, stage spill records into one reused buffer, requantize
//! into pooled warm boxes — must allocate **nothing per demotion**.
//!
//! "Nothing per demotion" is asserted as an amortized bound of 64
//! bytes per demoted model: one spill record frame is ≥1 KiB and one
//! quantized warm box ≥200 B at d = 8, so a single per-victim buffer
//! or box allocation sneaking back into the sweep trips the bound by
//! an order of magnitude. The only allocation the bound tolerates is
//! the LRU index's BTree node churn (a ~192 B leaf split roughly once
//! per 11 inserts as the monotone access keys walk right), which is
//! per-*index-maintenance*, not per-victim, and is why the bar is not
//! literal zero.
//!
//! Caveats encoded here:
//! * the measured region is the demotion sweep only; the fault-in path
//!   legitimately allocates (it decodes a fresh estimator box from the
//!   spill log) and runs outside the measurement;
//! * the round count keeps dead spill frames below the 1 MiB
//!   compaction threshold — compaction rewrites the log and is allowed
//!   to allocate;
//! * exact mode only: sketched warm representations are built fresh
//!   per demotion by design (they are 4× smaller than the quantized
//!   exact rep and carry no pool).

use fasea_models::{EstimatorStore, StoreConfig, UserId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static CALLS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counters are
// const-initialised thread-locals, so no allocation happens on the
// accounting path itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Growth counts as fresh allocation of the new block.
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        CALLS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes and calls allocated on this thread while `f` runs.
fn allocations_during(f: impl FnOnce()) -> (u64, u64) {
    let b0 = BYTES.with(|c| c.get());
    let c0 = CALLS.with(|c| c.get());
    f();
    (BYTES.with(|c| c.get()) - b0, CALLS.with(|c| c.get()) - c0)
}

const DIM: usize = 8;

fn context(t: u64, x: &mut [f64]) {
    let mut h = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA110C;
    for v in x.iter_mut() {
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        *v = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

#[test]
fn steady_state_demotion_sweeps_are_allocation_free() {
    let dir = std::env::temp_dir().join(format!("fasea-demote-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // A hot budget that holds a handful of d=8 exact models and a
    // working set a few times larger, so every round-robin pass faults
    // warm models back in and demotes the LRU hot ones.
    let users = 48u64;
    let config = StoreConfig::bounded(DIM, 1.0, 16 << 10, 4 << 20, &dir);
    let mut store = EstimatorStore::new(config).expect("open store");
    let mut x = vec![0.0f64; DIM];

    // Warm-up: materialize the working set, then run two full
    // round-robin passes so every buffer (victim vec, encode buffer,
    // spill batch buffer, quant pool) reaches its steady-state size.
    let mut t = 0u64;
    for _ in 0..3 {
        for u in 0..users {
            context(t, &mut x);
            let h = store.resolve(UserId(u));
            store.observe(h, &x, (u % 2) as f64, t).expect("observe");
            store.enforce_budget(t).expect("budget");
            t += 1;
        }
    }
    let demotions_before = store.stats().demotions;
    assert!(
        demotions_before > users,
        "fixture never exceeded the hot budget: {demotions_before} demotions"
    );

    // Measure: 96 further rounds. The fault-in inside observe() stays
    // outside the measured region; only the demotion sweep is held to
    // the zero-allocation bar.
    let mut total = (0u64, 0u64);
    for _ in 0..96 {
        let u = t % users;
        context(t, &mut x);
        let h = store.resolve(UserId(u));
        store.observe(h, &x, (u % 2) as f64, t).expect("observe");
        let (b, c) = allocations_during(|| {
            store.enforce_budget(t).expect("budget");
        });
        total = (total.0 + b, total.1 + c);
        t += 1;
    }
    let demoted = store.stats().demotions - demotions_before;
    assert!(
        demoted >= 90,
        "measured region performed too few demotions to be meaningful: {demoted}"
    );
    assert!(
        total.0 <= demoted * 64,
        "steady-state demotion sweeps allocated {} bytes in {} calls over {demoted} \
         demotions — a per-victim buffer, spill frame, or warm box is being \
         allocated inside the sweep",
        total.0,
        total.1
    );
    // Call count sanity: index node churn is sub-once-per-sweep; a
    // per-victim allocation would make calls >= demotions.
    assert!(
        total.1 * 4 <= demoted,
        "allocation calls ({}) scale with demotions ({demoted})",
        total.1
    );
    // The round count above keeps dead frames well under the spill
    // log's 1 MiB compaction threshold; a compaction inside the
    // measured region would be a fixture bug, not a regression.
    assert_eq!(store.stats().spill_compactions, 0, "fixture compacted");

    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn counting_allocator_actually_counts() {
    // Guard against a silently broken harness: a Vec allocation must be
    // visible to the counter, or the bound above is vacuous.
    let (bytes, calls) = allocations_during(|| {
        let v: Vec<u64> = Vec::with_capacity(32);
        std::hint::black_box(&v);
    });
    assert!(bytes >= 32 * 8, "allocation went uncounted: {bytes}");
    assert!(calls >= 1);
}

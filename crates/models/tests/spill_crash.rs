//! Kill-matrix crash safety for the spill log's record tags.
//!
//! The spill log persists three frame kinds — [`KIND_USER_EXACT`],
//! [`KIND_COHORT`], [`KIND_USER_SKETCH`] — and its crash contract is:
//! a reopen after a crash truncates any torn tail back to the last
//! whole frame, every frame wholly before the cut survives
//! byte-identical, and the repaired log accepts new appends. These
//! tests drive that contract from the outside:
//!
//! * a **kill matrix** cuts a mixed-kind log at every frame boundary
//!   and at mid-frame offsets, reopening each cut in a fresh copy;
//! * a **store-level** test crashes a cohort+sketched
//!   [`EstimatorStore`] with a torn tail past its synced spill prefix
//!   and asserts reopening is *cut-invariant*: every cut at or past
//!   the synced length rehydrates bit-identical cohort priors on
//!   open, and a snapshot restore over the torn log (which clears it
//!   — the FASEAMS2 snapshot is self-contained) keeps demoting and
//!   re-promoting sketch records afterwards.
//!
//! Cuts *inside* synced data are out of contract — fsynced bytes do
//! not vanish in the crash model; that would be disk corruption, which
//! the CRC frames detect but this matrix does not exercise.

use fasea_models::spill::{KIND_COHORT, KIND_USER_EXACT, KIND_USER_SKETCH};
use fasea_models::{EstimatorStore, SpillLog, StoreConfig, UserId};
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fasea-spill-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The single generation-0 log file a freshly opened dir contains.
fn log_file(dir: &Path) -> PathBuf {
    dir.join("spill-000000.log")
}

/// Copies `src`'s log file into a fresh dir, truncated to `len` bytes.
fn cut_copy(src: &Path, tag: &str, len: u64) -> PathBuf {
    let dst = temp_dir(tag);
    fs::create_dir_all(&dst).unwrap();
    let bytes = fs::read(log_file(src)).unwrap();
    let keep = bytes.len().min(len as usize);
    fs::write(log_file(&dst), &bytes[..keep]).unwrap();
    dst
}

#[test]
fn kill_matrix_over_mixed_kind_frames() {
    let dir = temp_dir("matrix");
    // (kind, key, payload) in an order that interleaves all three
    // tags, including a same-key overwrite whose survival depends on
    // where the cut lands.
    let frames: Vec<(u8, u64, Vec<u8>)> = vec![
        (KIND_USER_EXACT, 7, vec![0x11; 40]),
        (KIND_COHORT, 2, vec![0x22; 90]),
        (KIND_USER_SKETCH, 7, vec![0x33; 64]),
        (KIND_USER_EXACT, 8, vec![0x44; 17]),
        (KIND_USER_EXACT, 7, vec![0x55; 40]), // overwrites key 7
        (KIND_COHORT, 0, vec![0x66; 90]),
    ];
    let mut boundaries = Vec::new();
    {
        let mut log = SpillLog::open(&dir, 42).unwrap();
        boundaries.push(log.file_bytes()); // header-only boundary
        for (kind, key, blob) in &frames {
            log.append(*kind, *key, blob).unwrap();
            boundaries.push(log.file_bytes());
        }
        log.sync().unwrap();
    }

    // Cut at every frame boundary and at two offsets inside every
    // frame (first byte of the frame header, middle of the payload).
    let mut cuts = Vec::new();
    for w in boundaries.windows(2) {
        cuts.push((w[0], w[0]));
        cuts.push((w[1].min(w[0] + 1), w[0]));
        cuts.push((w[0] + (w[1] - w[0]) / 2, w[0]));
    }
    let end = *boundaries.last().unwrap();
    cuts.push((end, end));

    for (i, &(cut, survives_to)) in cuts.iter().enumerate() {
        let copy = cut_copy(&dir, &format!("matrix-cut{i}"), cut);
        let mut log = SpillLog::open(&copy, 42).unwrap();
        assert_eq!(
            log.file_bytes(),
            survives_to,
            "cut {i} at byte {cut}: reopen must truncate to the last whole frame"
        );
        // Frames wholly before the surviving boundary read back
        // byte-identical, under last-write-wins for duplicate keys.
        let whole = boundaries.iter().filter(|&&b| b <= survives_to).count() - 1;
        let mut expect: std::collections::BTreeMap<(u8, u64), &[u8]> =
            std::collections::BTreeMap::new();
        for (kind, key, blob) in frames.iter().take(whole) {
            expect.insert((*kind, *key), blob);
        }
        for (&(kind, key), blob) in &expect {
            assert_eq!(
                log.read(kind, key).unwrap().as_deref(),
                Some(*blob),
                "cut {i}: surviving ({kind},{key}) record corrupted"
            );
        }
        // Truncated-away keys are gone, not half-visible.
        for (kind, key, _) in frames.iter().skip(whole) {
            if !expect.contains_key(&(*kind, *key)) {
                assert_eq!(
                    log.read(*kind, *key).unwrap(),
                    None,
                    "cut {i}: ghost record"
                );
            }
        }
        // The repaired tail accepts appends of every kind.
        log.append(KIND_USER_SKETCH, 99, b"post-crash").unwrap();
        assert_eq!(
            log.read(KIND_USER_SKETCH, 99).unwrap().unwrap(),
            b"post-crash"
        );
        let _ = fs::remove_dir_all(&copy);
    }
    let _ = fs::remove_dir_all(&dir);
}

fn probe(store: &mut EstimatorStore, users: u64, dim: usize) -> Vec<u64> {
    let x: Vec<f64> = (0..dim).map(|j| 0.25 + j as f64 * 0.125).collect();
    let mut out = Vec::new();
    for u in 0..users {
        let h = store.resolve(UserId(u));
        let est = store.estimator_for_select(h, 1_000_000 + u).unwrap();
        out.push(est.point_estimate(&x).to_bits());
    }
    out
}

/// Shared body for the store-level torn-tail matrix, in both state
/// modes: `sketched = false` proves byte-identical recovered digests
/// (`save_state` blobs) for exact-tier records; `sketched = true`
/// additionally proves sketch records keep promoting after restore.
fn run_cut_invariance(tag: &str, sketched: bool) {
    let dim = 8;
    let users = 64u64;
    let dir = temp_dir(tag);
    let mut config =
        StoreConfig::bounded(dim, 1.0, 24 << 10, 1 << 20, &dir).with_cohorts(4, 0xC0_FFEE, 2);
    if sketched {
        config = config.with_sketched(3);
    }
    let reopen_config = config.clone();
    let mut store = EstimatorStore::new(config).expect("open store");

    // Drive all three record kinds into the log: folds train cohort
    // priors (persisted by sync), later observations materialize users
    // whose demotions spill sketch records.
    let mut x = vec![0.0f64; dim];
    let mut t = 0u64;
    for _ in 0..6 {
        for u in 0..users {
            for (j, v) in x.iter_mut().enumerate() {
                *v = ((u as usize * 13 + j * 5 + t as usize) % 17) as f64 / 17.0 - 0.4;
            }
            let h = store.resolve(UserId(u));
            store.observe(h, &x, (u % 2) as f64, t).expect("observe");
            store.enforce_budget(t).expect("budget");
            t += 1;
        }
    }
    store.sync().expect("sync");
    let snapshot = store.save_state();
    assert!(
        store.stats().spilled + store.stats().warm > 0,
        "fixture never left the hot tier — the matrix would be vacuous"
    );
    drop(store);

    let synced_len = fs::metadata(log_file(&dir)).unwrap().len();
    // Crash mid-append: garbage past the synced prefix.
    let garbage = 37u64;
    let mut bytes = fs::read(log_file(&dir)).unwrap();
    bytes.extend(std::iter::repeat_n(0xAB, garbage as usize));
    fs::write(log_file(&dir), &bytes).unwrap();

    // Control: open (no snapshot) over the exact synced prefix — cold
    // users read through the rehydrated cohort priors, so the probe
    // fingerprints exactly the KIND_COHORT records.
    let control_dir = cut_copy(&dir, &format!("{tag}-control"), synced_len);
    let (expected_cold, expected_restored, expected_digest) = {
        let mut cfg = reopen_config.clone();
        cfg.spill_dir = Some(control_dir.clone());
        let mut control_store = EstimatorStore::new(cfg).unwrap();
        assert!(
            control_store.stats().cohorts_materialized > 0,
            "control: cohort priors did not rehydrate"
        );
        let cold = probe(&mut control_store, users, dim);
        control_store.restore_state(&snapshot).expect("restore");
        let restored = probe(&mut control_store, users, dim);
        let digest = control_store.save_state();
        (cold, restored, digest)
    };
    assert_ne!(
        expected_cold, expected_restored,
        "restored private state must differ from the cohort-prior read-through"
    );

    // Matrix: every cut at or past the synced length behaves exactly
    // like the clean control, both on open and after restore.
    for (i, cut) in [synced_len, synced_len + 1, synced_len + garbage]
        .into_iter()
        .enumerate()
    {
        let copy = cut_copy(&dir, &format!("{tag}-cut{i}"), cut);
        let mut cfg = reopen_config.clone();
        cfg.spill_dir = Some(copy.clone());
        let mut store = EstimatorStore::new(cfg).unwrap();
        assert!(
            store.stats().cohorts_materialized > 0,
            "cut {i}: cohort priors did not rehydrate"
        );
        let cold = probe(&mut store, users, dim);
        assert_eq!(
            cold, expected_cold,
            "cut {i} at byte {cut}: rehydrated cohort priors diverge from control"
        );
        store.restore_state(&snapshot).expect("restore after cut");
        let restored = probe(&mut store, users, dim);
        assert_eq!(
            restored, expected_restored,
            "cut {i} at byte {cut}: restored predictions diverge from control"
        );
        // The recovered digest — the full serialized store — is
        // byte-identical to the control's, cut-invariantly.
        assert_eq!(
            store.save_state(),
            expected_digest,
            "cut {i} at byte {cut}: recovered digest diverges from control"
        );
        // The cleared post-restore log keeps working: demote over
        // budget, fault back in — in sketched mode reconstructing
        // from fresh sketch records.
        store.enforce_budget(t).expect("post-restore budget");
        assert!(
            store.stats().demotions > 0,
            "cut {i}: post-restore budget sweep demoted nothing"
        );
        let _ = probe(&mut store, users, dim);
        if sketched {
            assert!(
                store.stats().sketch_promotions > 0,
                "cut {i}: no sketch record promoted from the post-restore log"
            );
        } else {
            assert!(
                store.stats().faults > 0,
                "cut {i}: no exact record faulted from the post-restore log"
            );
        }
        drop(store);
        let _ = fs::remove_dir_all(&copy);
    }
    let _ = fs::remove_dir_all(&control_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cohort_exact_restore_is_cut_invariant_with_byte_identical_digests() {
    run_cut_invariance("store-exact", false);
}

#[test]
fn cohort_sketched_restore_is_cut_invariant_over_the_torn_tail() {
    run_cut_invariance("store-sketched", true);
}

//! Fixed-point warm-tier representation of an estimator.
//!
//! A demoted model keeps a compact, *approximate* copy of its state in
//! memory: the upper triangle of the symmetric `Y⁻¹`, plus `b` and the
//! cached `θ̂`, each quantized to `i16` against a per-block scale
//! (`max|·| / 32767`). For `d = 8` this is 534 bytes against 1 216
//! bytes of exact state — and the ratio improves quadratically with
//! `d`, since the triangle stores `d(d+1)/2` lanes of 2 bytes each.
//!
//! The quantized copy is strictly a **read-only diagnostic tier**: it
//! answers approximate point-estimate/width queries (screening,
//! metrics, memory-pressure introspection) without touching the spill
//! log. Anything that can influence an arrangement or an update goes
//! through the exact f64 state, which the store faults back in from its
//! spill log — quantization is lossy, and the determinism contract
//! (budget-constrained runs bit-equal to unbounded runs) only survives
//! because the lossy copy never feeds the decision path.

use fasea_bandit::RidgeEstimator;

/// Quantization half-range: `i16` full scale.
const Q_FULL: f64 = i16::MAX as f64;

/// A fixed-point compressed snapshot of one estimator's state.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    dim: u16,
    observations: u64,
    /// Per-block scales: `value ≈ code × scale`.
    scale_yinv: f64,
    scale_b: f64,
    scale_theta: f64,
    /// Upper triangle of `Y⁻¹` (row-major, `d(d+1)/2` codes), then `b`
    /// (`d` codes), then `θ̂` (`d` codes) — one buffer, one allocation.
    codes: Box<[i16]>,
}

fn quantize_block(values: impl Iterator<Item = f64> + Clone, out: &mut [i16]) -> f64 {
    let max_abs = values
        .clone()
        .fold(0.0f64, |acc, v| acc.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    let scale = max_abs / Q_FULL;
    for (o, v) in out.iter_mut().zip(values) {
        // max|v|/scale = Q_FULL exactly, so the cast never saturates.
        *o = (v / scale).round() as i16;
    }
    scale
}

impl QuantizedModel {
    /// Compresses the estimator's current state. Reads only cached
    /// values (`θ̂` may be stale) — never mutates or refreshes `est`.
    pub fn quantize(est: &RidgeEstimator) -> Self {
        let d = est.dim();
        let tri = d * (d + 1) / 2;
        let mut q = QuantizedModel {
            dim: d as u16,
            observations: 0,
            scale_yinv: 0.0,
            scale_b: 0.0,
            scale_theta: 0.0,
            codes: vec![0i16; tri + 2 * d].into_boxed_slice(),
        };
        q.requantize(est);
        q
    }

    /// Overwrites this model in place with `est`'s current state —
    /// allocation-free recycling for the batched demotion path, which
    /// reuses evicted warm slots instead of reallocating code buffers.
    ///
    /// # Panics
    /// Panics if `est`'s dimension differs from this model's.
    pub fn requantize(&mut self, est: &RidgeEstimator) {
        let d = est.dim();
        assert_eq!(d, self.dim(), "requantize: dimension mismatch");
        let tri = d * (d + 1) / 2;
        let y_inv = est.y_inv();
        let upper = (0..d).flat_map(|i| (i..d).map(move |j| (i, j)));
        self.scale_yinv =
            quantize_block(upper.map(|(i, j)| y_inv.row(i)[j]), &mut self.codes[..tri]);
        self.scale_b = quantize_block(
            est.b_vector().as_slice().iter().copied(),
            &mut self.codes[tri..tri + d],
        );
        self.scale_theta = quantize_block(
            est.theta_hat_cached().as_slice().iter().copied(),
            &mut self.codes[tri + d..],
        );
        self.observations = est.observations();
    }

    /// Context dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Observation count carried over from the exact state.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    fn tri(&self) -> usize {
        let d = self.dim();
        d * (d + 1) / 2
    }

    /// Dequantized `Y⁻¹[i][j]` (symmetric lookup into the triangle).
    fn y_inv_at(&self, i: usize, j: usize) -> f64 {
        let (r, c) = if i <= j { (i, j) } else { (j, i) };
        let d = self.dim();
        // Row r of the packed upper triangle starts after rows 0..r,
        // which hold d, d-1, …, d-r+1 entries.
        let idx = r * d - r * (r + 1) / 2 + c;
        self.codes[idx] as f64 * self.scale_yinv
    }

    /// Dequantized `θ̂` entry `i`.
    pub fn theta_at(&self, i: usize) -> f64 {
        self.codes[self.tri() + self.dim() + i] as f64 * self.scale_theta
    }

    /// Dequantized `b` entry `i`.
    pub fn b_at(&self, i: usize) -> f64 {
        self.codes[self.tri() + i] as f64 * self.scale_b
    }

    /// Approximate point estimate `xᵀθ̃` from the quantized `θ̂`.
    pub fn approx_point_estimate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "context dimension mismatch");
        x.iter()
            .enumerate()
            .map(|(i, &xi)| xi * self.theta_at(i))
            .sum()
    }

    /// Approximate confidence width `√(xᵀ Ỹ⁻¹ x)` from the quantized
    /// inverse (clamped at zero: quantization can nudge the quadratic
    /// form slightly negative near singular directions).
    pub fn approx_width(&self, x: &[f64]) -> f64 {
        let d = self.dim();
        assert_eq!(x.len(), d, "context dimension mismatch");
        let mut q = 0.0;
        for i in 0..d {
            for j in 0..d {
                q += x[i] * self.y_inv_at(i, j) * x[j];
            }
        }
        q.max(0.0).sqrt()
    }

    /// Heap + inline bytes of this representation — the store's warm
    /// accounting unit, mirroring `RidgeEstimator::state_bytes`.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + std::mem::size_of_val::<[i16]>(&self.codes)
    }
}

/// Warm-tier representation for the **sketched** state mode: quantized
/// `θ̂` and `b` only — `2d` codes against the `d(d+1)/2 + 2d` of
/// [`QuantizedModel`], because the sketched tier never carries a
/// per-user `Y⁻¹` (widths come from the prior chain). Like the
/// quantized tier it is read-only and diagnostic; decisions fault the
/// sketch record back in through the spill log.
#[derive(Debug, Clone)]
pub struct SketchWarm {
    dim: u16,
    observations: u64,
    scale_theta: f64,
    scale_b: f64,
    /// `θ̂` (`d` codes) then `b` (`d` codes).
    codes: Box<[i16]>,
}

impl SketchWarm {
    /// Compresses the estimator's cached `θ̂` and exact `b`. Reads only
    /// cached values — never mutates or refreshes `est`.
    pub fn from_estimator(est: &RidgeEstimator) -> Self {
        let d = est.dim();
        let mut codes = vec![0i16; 2 * d].into_boxed_slice();
        let scale_theta = quantize_block(
            est.theta_hat_cached().as_slice().iter().copied(),
            &mut codes[..d],
        );
        let scale_b = quantize_block(est.b_vector().as_slice().iter().copied(), &mut codes[d..]);
        SketchWarm {
            dim: d as u16,
            observations: est.observations(),
            scale_theta,
            scale_b,
            codes,
        }
    }

    /// Context dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// Observation count carried over from the exact state.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Dequantized `θ̂` entry `i`.
    pub fn theta_at(&self, i: usize) -> f64 {
        self.codes[i] as f64 * self.scale_theta
    }

    /// Dequantized `b` entry `i`.
    pub fn b_at(&self, i: usize) -> f64 {
        self.codes[self.dim() + i] as f64 * self.scale_b
    }

    /// Approximate point estimate `xᵀθ̃` from the quantized `θ̂`.
    pub fn approx_point_estimate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim(), "context dimension mismatch");
        x.iter()
            .enumerate()
            .map(|(i, &xi)| xi * self.theta_at(i))
            .sum()
    }

    /// Heap + inline bytes — the store's warm accounting unit in
    /// sketched mode.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + std::mem::size_of_val::<[i16]>(&self.codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(dim: usize, rounds: usize) -> RidgeEstimator {
        let mut est = RidgeEstimator::new(dim, 1.0);
        for k in 0..rounds {
            let x: Vec<f64> = (0..dim)
                .map(|i| ((k * 31 + i * 7) % 17) as f64 / 17.0 - 0.4)
                .collect();
            est.observe(&x, (k % 3 == 0) as u8 as f64).unwrap();
        }
        let _ = est.theta_hat();
        est
    }

    #[test]
    fn approximations_are_close() {
        let mut est = trained(6, 200);
        let q = QuantizedModel::quantize(&est);
        assert_eq!(q.dim(), 6);
        assert_eq!(q.observations(), 200);
        let x = [0.3, -0.2, 0.5, 0.1, -0.4, 0.2];
        let exact_p = est.point_estimate(&x);
        let exact_w = est.confidence_width(&x);
        // i16 fixed point: ~4 decimal digits of the block max.
        assert!((q.approx_point_estimate(&x) - exact_p).abs() < 1e-3);
        assert!((q.approx_width(&x) - exact_w).abs() < 1e-3);
    }

    #[test]
    fn symmetric_lookup_matches_full_matrix() {
        let est = trained(5, 80);
        let q = QuantizedModel::quantize(&est);
        let y_inv = est.y_inv();
        for i in 0..5 {
            for j in 0..5 {
                let approx = q.y_inv_at(i, j);
                assert!((approx - y_inv.row(i)[j]).abs() <= q.scale_yinv * 0.5 + 1e-15);
                assert_eq!(q.y_inv_at(i, j).to_bits(), q.y_inv_at(j, i).to_bits());
            }
        }
    }

    #[test]
    fn compresses_relative_to_exact() {
        for d in [4usize, 8, 16, 32] {
            let est = trained(d, 30);
            let q = QuantizedModel::quantize(&est);
            assert!(
                q.state_bytes() * 2 < est.state_bytes(),
                "d={d}: quantized {} vs exact {}",
                q.state_bytes(),
                est.state_bytes()
            );
        }
    }

    #[test]
    fn zero_state_quantizes_without_nan() {
        // A cold estimator has b = θ̂ = 0: the block scale must not
        // divide by zero.
        let est = RidgeEstimator::new(3, 1.0);
        let q = QuantizedModel::quantize(&est);
        assert_eq!(q.approx_point_estimate(&[1.0, 1.0, 1.0]), 0.0);
        assert!(q.approx_width(&[1.0, 0.0, 0.0]).is_finite());
    }

    #[test]
    fn requantize_matches_fresh_quantize() {
        let est_a = trained(6, 200);
        let est_b = trained(6, 55);
        let mut recycled = QuantizedModel::quantize(&est_a);
        recycled.requantize(&est_b);
        let fresh = QuantizedModel::quantize(&est_b);
        assert_eq!(recycled.codes, fresh.codes);
        assert_eq!(recycled.scale_yinv.to_bits(), fresh.scale_yinv.to_bits());
        assert_eq!(recycled.scale_b.to_bits(), fresh.scale_b.to_bits());
        assert_eq!(recycled.scale_theta.to_bits(), fresh.scale_theta.to_bits());
        assert_eq!(recycled.observations(), fresh.observations());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn requantize_rejects_dim_change() {
        let mut q = QuantizedModel::quantize(&trained(4, 10));
        q.requantize(&trained(5, 10));
    }

    #[test]
    fn sketch_warm_tracks_theta_and_b() {
        let mut est = trained(6, 150);
        let _ = est.theta_hat();
        let w = SketchWarm::from_estimator(&est);
        assert_eq!(w.dim(), 6);
        assert_eq!(w.observations(), 150);
        let x = [0.3, -0.2, 0.5, 0.1, -0.4, 0.2];
        assert!((w.approx_point_estimate(&x) - est.point_estimate(&x)).abs() < 1e-3);
        for i in 0..6 {
            assert!((w.b_at(i) - est.b_vector()[i]).abs() <= w.scale_b * 0.5 + 1e-15);
        }
    }

    #[test]
    fn sketch_warm_halves_warm_bytes_at_d_16_and_up() {
        // The acceptance criterion for the sketched tier: the warm
        // representation costs ≤ half the quantized-triangle bytes from
        // d = 16 (the triangle is d(d+1)/2 codes, SketchWarm is 2d).
        for d in [16usize, 24, 32] {
            let est = trained(d, 40);
            let full = QuantizedModel::quantize(&est);
            let warm = SketchWarm::from_estimator(&est);
            assert!(
                warm.state_bytes() * 2 <= full.state_bytes(),
                "d={d}: sketch warm {} vs quantized {}",
                warm.state_bytes(),
                full.state_bytes()
            );
        }
    }
}

//! Exact, bit-preserving estimator codec.
//!
//! The store's determinism contract — a budget-constrained run must
//! produce bit-equal arrangements to an unbounded run — forbids the
//! Cholesky-re-deriving snapshot codec of `fasea-bandit::snapshot`
//! (`from_parts` re-factorises `Y` and the re-derived inverse differs
//! from the Sherman–Morrison-maintained one in the low mantissa bits).
//! This codec instead serialises the estimator's *entire* mutable state
//! verbatim — `Y`, the maintained `Y⁻¹`, `b`, the cached `θ̂`, the
//! staleness flag and both counters — and restores it through
//! [`RidgeEstimator::from_exact_parts`], so a spill→fault round trip is
//! indistinguishable from never having left memory.
//!
//! ## Layout (little-endian)
//!
//! ```text
//! magic    "FASEAMX1"          8 bytes
//! dim      u32                 4
//! flags    u32                 4   bit 0 = θ̂ stale
//! lambda   f64                 8
//! obs      u64                 8   observation count
//! recomp   u64                 8   θ̂ recompute count
//! Y        d·d × f64           row-major
//! Y⁻¹      d·d × f64           row-major
//! b        d × f64
//! θ̂        d × f64             cached value (may be stale; see flags)
//! ```
//!
//! ## Sketch records
//!
//! The sketched warm tier spills a user as a frequent-directions sketch
//! of their Gram update plus the exact `b` vector — `O(r·d)` instead of
//! `O(d²)`. The sketch rows are serialised verbatim (no shrink on
//! encode), so encode → decode is a bit-exact round trip of the sketch
//! state; only the later reconstruction against a prior is lossy.
//!
//! ```text
//! magic    "FASEAMK1"          8 bytes
//! dim      u32                 4
//! rank     u32                 4
//! fill     u32                 4   live sketch rows (≤ 2·rank)
//! lambda   f64                 8
//! obs      u64                 8   observation count
//! recomp   u64                 8   θ̂ recompute count
//! rows     fill·d × f64        row-major live sketch rows
//! b        d × f64             exact reward-weighted context sum
//! ```

use crate::ModelsError;
use fasea_bandit::RidgeEstimator;
use fasea_linalg::{FrequentDirections, Matrix, Vector};

/// Magic prefix of an exact estimator blob.
pub const EXACT_MAGIC: &[u8; 8] = b"FASEAMX1";
/// Magic prefix of a sketched estimator blob.
pub const SKETCH_MAGIC: &[u8; 8] = b"FASEAMK1";

const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;
const SKETCH_HEADER_LEN: usize = 8 + 4 + 4 + 4 + 8 + 8 + 8;

/// Size in bytes of an exact blob for dimension `d`.
pub fn exact_blob_len(dim: usize) -> usize {
    HEADER_LEN + 8 * (2 * dim * dim + 2 * dim)
}

/// Size in bytes of a sketch blob with `fill` live rows over dimension
/// `d`.
pub fn sketch_blob_len(dim: usize, fill: usize) -> usize {
    SKETCH_HEADER_LEN + 8 * (fill * dim + dim)
}

/// Serialises the full mutable state of `est`, bit-for-bit.
pub fn encode_exact(est: &RidgeEstimator) -> Vec<u8> {
    let mut out = Vec::with_capacity(exact_blob_len(est.dim()));
    encode_exact_into(est, &mut out);
    out
}

/// Appends `est`'s exact blob to `out` without an intermediate `Vec` —
/// allocation-free when `out` has capacity (the batched-demotion path).
pub fn encode_exact_into(est: &RidgeEstimator, out: &mut Vec<u8>) {
    let d = est.dim();
    let start = out.len();
    out.reserve(exact_blob_len(d));
    out.extend_from_slice(EXACT_MAGIC);
    out.extend_from_slice(&(d as u32).to_le_bytes());
    let flags: u32 = u32::from(est.is_theta_stale());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&est.lambda().to_le_bytes());
    out.extend_from_slice(&est.observations().to_le_bytes());
    out.extend_from_slice(&est.theta_recomputes().to_le_bytes());
    for &v in est.gram_matrix().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in est.y_inv().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in est.b_vector().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in est.theta_hat_cached().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    debug_assert_eq!(out.len() - start, exact_blob_len(d));
}

/// Decoded contents of a sketch record: the restored sketch, the exact
/// `b` vector and the estimator counters carried through the spill.
#[derive(Debug, Clone)]
pub struct SketchRecord {
    /// Ridge regularisation strength.
    pub lambda: f64,
    /// Observation count at encode time.
    pub observations: u64,
    /// θ̂ recompute count at encode time.
    pub recomputes: u64,
    /// The frequent-directions sketch, bit-identical to the encoded one.
    pub sketch: FrequentDirections,
    /// Exact reward-weighted context sum `b = Σ r x`.
    pub b: Vector,
}

/// Appends a sketch record to `out`. Rows are written verbatim —
/// without shrinking — so the round trip through
/// [`decode_sketch`] restores the sketch bit-for-bit.
pub fn encode_sketch_into(
    sketch: &FrequentDirections,
    b: &Vector,
    lambda: f64,
    observations: u64,
    recomputes: u64,
    out: &mut Vec<u8>,
) {
    let d = sketch.dim();
    debug_assert_eq!(b.len(), d, "sketch record: b dim mismatch");
    let start = out.len();
    out.reserve(sketch_blob_len(d, sketch.fill()));
    out.extend_from_slice(SKETCH_MAGIC);
    out.extend_from_slice(&(d as u32).to_le_bytes());
    out.extend_from_slice(&(sketch.rank() as u32).to_le_bytes());
    out.extend_from_slice(&(sketch.fill() as u32).to_le_bytes());
    out.extend_from_slice(&lambda.to_le_bytes());
    out.extend_from_slice(&observations.to_le_bytes());
    out.extend_from_slice(&recomputes.to_le_bytes());
    for &v in sketch.live_rows() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in b.as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    debug_assert_eq!(out.len() - start, sketch_blob_len(d, sketch.fill()));
}

/// Decodes a sketch record. The restored sketch is bit-identical to the
/// encoded one and continues the row stream in lockstep.
pub fn decode_sketch(blob: &[u8]) -> Result<SketchRecord, ModelsError> {
    let mut buf = blob;
    if take(&mut buf, 8)? != SKETCH_MAGIC {
        return Err(ModelsError::Codec("not a sketch record"));
    }
    let dim = take_u32(&mut buf)? as usize;
    if dim == 0 || dim > u16::MAX as usize {
        return Err(ModelsError::Codec("implausible dimension"));
    }
    let rank = take_u32(&mut buf)? as usize;
    if rank == 0 || rank > u16::MAX as usize {
        return Err(ModelsError::Codec("implausible sketch rank"));
    }
    let fill = take_u32(&mut buf)? as usize;
    if fill > 2 * rank {
        return Err(ModelsError::Codec("sketch fill exceeds buffer"));
    }
    let lambda = take_f64(&mut buf)?;
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(ModelsError::Codec("lambda must be finite and positive"));
    }
    let observations = take_u64(&mut buf)?;
    let recomputes = take_u64(&mut buf)?;
    let rows = take_f64s(&mut buf, fill * dim)?;
    let b = Vector::from(take_f64s(&mut buf, dim)?);
    if !buf.is_empty() {
        return Err(ModelsError::Codec("trailing bytes after sketch record"));
    }
    Ok(SketchRecord {
        lambda,
        observations,
        recomputes,
        sketch: FrequentDirections::from_rows(rank, dim, &rows),
        b,
    })
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], ModelsError> {
    if buf.len() < n {
        return Err(ModelsError::Codec("exact blob is truncated"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, ModelsError> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().unwrap()))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, ModelsError> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().unwrap()))
}

fn take_f64(buf: &mut &[u8]) -> Result<f64, ModelsError> {
    Ok(f64::from_le_bytes(take(buf, 8)?.try_into().unwrap()))
}

fn take_f64s(buf: &mut &[u8], n: usize) -> Result<Vec<f64>, ModelsError> {
    let raw = take(buf, 8 * n)?;
    Ok(raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Peeks the dimension field of an exact blob without decoding it.
pub fn peek_dim(blob: &[u8]) -> Result<usize, ModelsError> {
    let mut buf = blob;
    if take(&mut buf, 8)? != EXACT_MAGIC {
        return Err(ModelsError::Codec("not an exact estimator blob"));
    }
    Ok(take_u32(&mut buf)? as usize)
}

/// Rebuilds an estimator from an exact blob. The result is bit-equal to
/// the encoded estimator: `θ̂`, widths, counters and future updates all
/// match to the last mantissa bit.
pub fn decode_exact(blob: &[u8]) -> Result<RidgeEstimator, ModelsError> {
    let mut buf = blob;
    if take(&mut buf, 8)? != EXACT_MAGIC {
        return Err(ModelsError::Codec("not an exact estimator blob"));
    }
    let dim = take_u32(&mut buf)? as usize;
    if dim == 0 || dim > u16::MAX as usize {
        return Err(ModelsError::Codec("implausible dimension"));
    }
    let flags = take_u32(&mut buf)?;
    if flags > 1 {
        return Err(ModelsError::Codec("unknown flag bits set"));
    }
    let lambda = take_f64(&mut buf)?;
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(ModelsError::Codec("lambda must be finite and positive"));
    }
    let observations = take_u64(&mut buf)?;
    let recomputes = take_u64(&mut buf)?;
    let y = Matrix::from_rows(dim, dim, take_f64s(&mut buf, dim * dim)?);
    let y_inv = Matrix::from_rows(dim, dim, take_f64s(&mut buf, dim * dim)?);
    let b = Vector::from(take_f64s(&mut buf, dim)?);
    let theta = Vector::from(take_f64s(&mut buf, dim)?);
    if !buf.is_empty() {
        return Err(ModelsError::Codec("trailing bytes after exact blob"));
    }
    RidgeEstimator::from_exact_parts(
        lambda,
        y,
        y_inv,
        b,
        theta,
        flags & 1 == 1,
        observations,
        recomputes,
    )
    .map_err(ModelsError::Linalg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(dim: usize, rounds: usize, seed: u64) -> RidgeEstimator {
        let mut est = RidgeEstimator::new(dim, 0.7);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for k in 0..rounds {
            let x: Vec<f64> = (0..dim)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state as f64 / u64::MAX as f64) * 2.0 - 1.0
                })
                .collect();
            est.observe(&x, (k % 2) as f64).unwrap();
            if k % 5 == 0 {
                let _ = est.theta_hat();
            }
        }
        est
    }

    #[test]
    fn round_trip_is_bit_equal() {
        for dim in [1usize, 3, 8] {
            let est = trained(dim, 37, dim as u64);
            let blob = encode_exact(&est);
            assert_eq!(blob.len(), exact_blob_len(dim));
            assert_eq!(peek_dim(&blob).unwrap(), dim);
            let back = decode_exact(&blob).unwrap();
            assert_eq!(back.is_theta_stale(), est.is_theta_stale());
            assert_eq!(back.observations(), est.observations());
            assert_eq!(back.theta_recomputes(), est.theta_recomputes());
            assert_eq!(
                back.theta_hat_cached().as_slice(),
                est.theta_hat_cached().as_slice()
            );
            assert_eq!(back.y_inv().as_slice(), est.y_inv().as_slice());
            // A second encode of the decoded estimator is the same blob.
            assert_eq!(encode_exact(&back), blob);
        }
    }

    #[test]
    fn round_trip_stays_in_lockstep_under_updates() {
        let mut est = trained(4, 20, 9);
        let mut back = decode_exact(&encode_exact(&est)).unwrap();
        for k in 0..10 {
            let x = [0.3 * k as f64, -0.1, 0.05 * k as f64, 0.7];
            est.observe(&x, (k % 2) as f64).unwrap();
            back.observe(&x, (k % 2) as f64).unwrap();
            assert_eq!(est.theta_hat().as_slice(), back.theta_hat().as_slice());
        }
        assert_eq!(encode_exact(&est), encode_exact(&back));
    }

    #[test]
    fn rejects_damage() {
        let est = trained(3, 10, 1);
        let blob = encode_exact(&est);
        assert!(decode_exact(&blob[..blob.len() - 1]).is_err());
        assert!(decode_exact(&[]).is_err());
        let mut wrong_magic = blob.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(decode_exact(&wrong_magic).is_err());
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(decode_exact(&trailing).is_err());
        let mut bad_flags = blob.clone();
        bad_flags[12] = 0xFE;
        assert!(decode_exact(&bad_flags).is_err());
    }

    #[test]
    fn encode_into_matches_encode_and_appends() {
        let est = trained(5, 23, 3);
        let mut out = vec![0xAA, 0xBB];
        encode_exact_into(&est, &mut out);
        assert_eq!(&out[..2], &[0xAA, 0xBB]);
        assert_eq!(&out[2..], encode_exact(&est).as_slice());
    }

    #[test]
    fn sketch_record_round_trip_is_bit_exact() {
        let dim = 6;
        let rank = 2;
        let mut sk = FrequentDirections::new(rank, dim);
        let mut state = 0x5EED_CAFEu64 | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        for _ in 0..17 {
            let x: Vec<f64> = (0..dim).map(|_| next()).collect();
            sk.update(&x);
        }
        let b = Vector::from((0..dim).map(|_| next()).collect::<Vec<_>>());
        let mut blob = Vec::new();
        encode_sketch_into(&sk, &b, 0.7, 17, 3, &mut blob);
        assert_eq!(blob.len(), sketch_blob_len(dim, sk.fill()));
        let rec = decode_sketch(&blob).unwrap();
        assert_eq!(rec.lambda, 0.7);
        assert_eq!(rec.observations, 17);
        assert_eq!(rec.recomputes, 3);
        assert_eq!(rec.sketch.fill(), sk.fill());
        for (x, y) in rec.sketch.live_rows().iter().zip(sk.live_rows()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(rec.b.as_slice(), b.as_slice());
        // Re-encoding the decoded record reproduces the blob.
        let mut blob2 = Vec::new();
        encode_sketch_into(&rec.sketch, &rec.b, rec.lambda, 17, 3, &mut blob2);
        assert_eq!(blob, blob2);
    }

    #[test]
    fn sketch_record_rejects_damage() {
        let sk = FrequentDirections::new(2, 3);
        let b = Vector::zeros(3);
        let mut blob = Vec::new();
        encode_sketch_into(&sk, &b, 1.0, 0, 0, &mut blob);
        assert!(decode_sketch(&blob[..blob.len() - 1]).is_err());
        assert!(decode_sketch(&[]).is_err());
        let mut wrong_magic = blob.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(decode_sketch(&wrong_magic).is_err());
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(decode_sketch(&trailing).is_err());
        // fill > 2*rank is refused.
        let mut bad_fill = blob.clone();
        bad_fill[16] = 0xFF;
        assert!(decode_sketch(&bad_fill).is_err());
        // Exact blobs are not sketch records and vice versa.
        let est = trained(3, 5, 2);
        assert!(decode_sketch(&encode_exact(&est)).is_err());
        assert!(decode_exact(&blob).is_err());
    }
}

//! Exact, bit-preserving estimator codec.
//!
//! The store's determinism contract — a budget-constrained run must
//! produce bit-equal arrangements to an unbounded run — forbids the
//! Cholesky-re-deriving snapshot codec of `fasea-bandit::snapshot`
//! (`from_parts` re-factorises `Y` and the re-derived inverse differs
//! from the Sherman–Morrison-maintained one in the low mantissa bits).
//! This codec instead serialises the estimator's *entire* mutable state
//! verbatim — `Y`, the maintained `Y⁻¹`, `b`, the cached `θ̂`, the
//! staleness flag and both counters — and restores it through
//! [`RidgeEstimator::from_exact_parts`], so a spill→fault round trip is
//! indistinguishable from never having left memory.
//!
//! ## Layout (little-endian)
//!
//! ```text
//! magic    "FASEAMX1"          8 bytes
//! dim      u32                 4
//! flags    u32                 4   bit 0 = θ̂ stale
//! lambda   f64                 8
//! obs      u64                 8   observation count
//! recomp   u64                 8   θ̂ recompute count
//! Y        d·d × f64           row-major
//! Y⁻¹      d·d × f64           row-major
//! b        d × f64
//! θ̂        d × f64             cached value (may be stale; see flags)
//! ```

use crate::ModelsError;
use fasea_bandit::RidgeEstimator;
use fasea_linalg::{Matrix, Vector};

/// Magic prefix of an exact estimator blob.
pub const EXACT_MAGIC: &[u8; 8] = b"FASEAMX1";

const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// Size in bytes of an exact blob for dimension `d`.
pub fn exact_blob_len(dim: usize) -> usize {
    HEADER_LEN + 8 * (2 * dim * dim + 2 * dim)
}

/// Serialises the full mutable state of `est`, bit-for-bit.
pub fn encode_exact(est: &RidgeEstimator) -> Vec<u8> {
    let d = est.dim();
    let mut out = Vec::with_capacity(exact_blob_len(d));
    out.extend_from_slice(EXACT_MAGIC);
    out.extend_from_slice(&(d as u32).to_le_bytes());
    let flags: u32 = u32::from(est.is_theta_stale());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&est.lambda().to_le_bytes());
    out.extend_from_slice(&est.observations().to_le_bytes());
    out.extend_from_slice(&est.theta_recomputes().to_le_bytes());
    for &v in est.gram_matrix().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in est.y_inv().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in est.b_vector().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &v in est.theta_hat_cached().as_slice() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    debug_assert_eq!(out.len(), exact_blob_len(d));
    out
}

/// Appends `est`'s exact blob to `out` without an intermediate `Vec`.
pub fn encode_exact_into(est: &RidgeEstimator, out: &mut Vec<u8>) {
    out.extend_from_slice(&encode_exact(est));
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], ModelsError> {
    if buf.len() < n {
        return Err(ModelsError::Codec("exact blob is truncated"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32, ModelsError> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().unwrap()))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, ModelsError> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().unwrap()))
}

fn take_f64(buf: &mut &[u8]) -> Result<f64, ModelsError> {
    Ok(f64::from_le_bytes(take(buf, 8)?.try_into().unwrap()))
}

fn take_f64s(buf: &mut &[u8], n: usize) -> Result<Vec<f64>, ModelsError> {
    let raw = take(buf, 8 * n)?;
    Ok(raw
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Peeks the dimension field of an exact blob without decoding it.
pub fn peek_dim(blob: &[u8]) -> Result<usize, ModelsError> {
    let mut buf = blob;
    if take(&mut buf, 8)? != EXACT_MAGIC {
        return Err(ModelsError::Codec("not an exact estimator blob"));
    }
    Ok(take_u32(&mut buf)? as usize)
}

/// Rebuilds an estimator from an exact blob. The result is bit-equal to
/// the encoded estimator: `θ̂`, widths, counters and future updates all
/// match to the last mantissa bit.
pub fn decode_exact(blob: &[u8]) -> Result<RidgeEstimator, ModelsError> {
    let mut buf = blob;
    if take(&mut buf, 8)? != EXACT_MAGIC {
        return Err(ModelsError::Codec("not an exact estimator blob"));
    }
    let dim = take_u32(&mut buf)? as usize;
    if dim == 0 || dim > u16::MAX as usize {
        return Err(ModelsError::Codec("implausible dimension"));
    }
    let flags = take_u32(&mut buf)?;
    if flags > 1 {
        return Err(ModelsError::Codec("unknown flag bits set"));
    }
    let lambda = take_f64(&mut buf)?;
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(ModelsError::Codec("lambda must be finite and positive"));
    }
    let observations = take_u64(&mut buf)?;
    let recomputes = take_u64(&mut buf)?;
    let y = Matrix::from_rows(dim, dim, take_f64s(&mut buf, dim * dim)?);
    let y_inv = Matrix::from_rows(dim, dim, take_f64s(&mut buf, dim * dim)?);
    let b = Vector::from(take_f64s(&mut buf, dim)?);
    let theta = Vector::from(take_f64s(&mut buf, dim)?);
    if !buf.is_empty() {
        return Err(ModelsError::Codec("trailing bytes after exact blob"));
    }
    RidgeEstimator::from_exact_parts(
        lambda,
        y,
        y_inv,
        b,
        theta,
        flags & 1 == 1,
        observations,
        recomputes,
    )
    .map_err(ModelsError::Linalg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained(dim: usize, rounds: usize, seed: u64) -> RidgeEstimator {
        let mut est = RidgeEstimator::new(dim, 0.7);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for k in 0..rounds {
            let x: Vec<f64> = (0..dim)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state as f64 / u64::MAX as f64) * 2.0 - 1.0
                })
                .collect();
            est.observe(&x, (k % 2) as f64).unwrap();
            if k % 5 == 0 {
                let _ = est.theta_hat();
            }
        }
        est
    }

    #[test]
    fn round_trip_is_bit_equal() {
        for dim in [1usize, 3, 8] {
            let est = trained(dim, 37, dim as u64);
            let blob = encode_exact(&est);
            assert_eq!(blob.len(), exact_blob_len(dim));
            assert_eq!(peek_dim(&blob).unwrap(), dim);
            let back = decode_exact(&blob).unwrap();
            assert_eq!(back.is_theta_stale(), est.is_theta_stale());
            assert_eq!(back.observations(), est.observations());
            assert_eq!(back.theta_recomputes(), est.theta_recomputes());
            assert_eq!(
                back.theta_hat_cached().as_slice(),
                est.theta_hat_cached().as_slice()
            );
            assert_eq!(back.y_inv().as_slice(), est.y_inv().as_slice());
            // A second encode of the decoded estimator is the same blob.
            assert_eq!(encode_exact(&back), blob);
        }
    }

    #[test]
    fn round_trip_stays_in_lockstep_under_updates() {
        let mut est = trained(4, 20, 9);
        let mut back = decode_exact(&encode_exact(&est)).unwrap();
        for k in 0..10 {
            let x = [0.3 * k as f64, -0.1, 0.05 * k as f64, 0.7];
            est.observe(&x, (k % 2) as f64).unwrap();
            back.observe(&x, (k % 2) as f64).unwrap();
            assert_eq!(est.theta_hat().as_slice(), back.theta_hat().as_slice());
        }
        assert_eq!(encode_exact(&est), encode_exact(&back));
    }

    #[test]
    fn rejects_damage() {
        let est = trained(3, 10, 1);
        let blob = encode_exact(&est);
        assert!(decode_exact(&blob[..blob.len() - 1]).is_err());
        assert!(decode_exact(&[]).is_err());
        let mut wrong_magic = blob.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(decode_exact(&wrong_magic).is_err());
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(decode_exact(&trailing).is_err());
        let mut bad_flags = blob.clone();
        bad_flags[12] = 0xFE;
        assert!(decode_exact(&bad_flags).is_err());
    }
}

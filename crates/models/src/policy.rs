//! Personalized policies: per-user UCB and Thompson Sampling routed
//! through an [`EstimatorStore`].
//!
//! Both implement `fasea_bandit::Policy`, so every existing driver —
//! `sim::run_simulation`, the durable service, `fasea-serve` — works
//! unchanged. The round's user is derived from `view.t` through a
//! [`UserSchedule`] (the same `mix64(schedule_seed ^ t) % population`
//! map the multi-user workload generator uses), which keeps the
//! one-argument `Policy` interface intact while each round trains a
//! different user's model.
//!
//! ## Determinism
//!
//! * The store's residency machinery is bit-transparent (see
//!   [`crate::store`]), so scores are identical under any memory
//!   budget.
//! * TS's posterior RNG lives on the policy shell, not on any per-user
//!   model: it draws exactly `d` Gaussians per round in round order, so
//!   the stream is positional and independent of residency.

use crate::store::{fnv1a, EstimatorStore, UserId};
use fasea_bandit::{Policy, ScoreWorkspace, SelectionView, SnapshotError};
use fasea_core::{Arrangement, ContextMatrix, EventId, Feedback};
use fasea_stats::crn::mix64;

/// The deterministic round → user map of a multi-user run:
/// `user(t) = mix64(schedule_seed ^ t) mod population`.
#[derive(Debug, Clone, Copy)]
pub struct UserSchedule {
    schedule_seed: u64,
    population: u64,
}

impl UserSchedule {
    /// Creates a schedule over `population` users.
    ///
    /// # Panics
    /// Panics if `population == 0`.
    pub fn new(schedule_seed: u64, population: usize) -> Self {
        assert!(population > 0, "UserSchedule: population must be positive");
        UserSchedule {
            schedule_seed,
            population: population as u64,
        }
    }

    /// The user arriving at round `t`.
    pub fn user_at(&self, t: u64) -> u64 {
        mix64(self.schedule_seed ^ t) % self.population
    }

    /// Number of distinct users.
    pub fn population(&self) -> usize {
        self.population as usize
    }
}

/// The store's cumulative tier counters in the form the workspace
/// publishes to the serving layers.
fn tier_stats(store: &EstimatorStore) -> fasea_bandit::ModelTierStats {
    fasea_bandit::ModelTierStats {
        cohort_hits: store.cohort_hits(),
        sketch_promotions: store.sketch_promotions(),
    }
}

fn snapshot_err(e: crate::ModelsError) -> SnapshotError {
    match e {
        crate::ModelsError::Codec(s)
        | crate::ModelsError::Config(s)
        | crate::ModelsError::Spill(s) => SnapshotError::Corrupt(s),
        _ => SnapshotError::Corrupt("estimator store restore failed"),
    }
}

/// Per-user contextual combinatorial UCB over an [`EstimatorStore`].
#[derive(Debug)]
pub struct PersonalizedUcb {
    store: EstimatorStore,
    schedule: UserSchedule,
    alpha: f64,
    ws: ScoreWorkspace,
}

impl PersonalizedUcb {
    /// Creates per-user UCB with exploration coefficient `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha < 0` or non-finite.
    pub fn new(store: EstimatorStore, schedule: UserSchedule, alpha: f64) -> Self {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "PersonalizedUcb: alpha must be >= 0"
        );
        PersonalizedUcb {
            store,
            schedule,
            alpha,
            ws: ScoreWorkspace::new(),
        }
    }

    /// Read access to the backing store (stats, digests).
    pub fn store(&self) -> &EstimatorStore {
        &self.store
    }

    /// Mutable access to the backing store.
    pub fn store_mut(&mut self) -> &mut EstimatorStore {
        &mut self.store
    }

    /// The round → user schedule.
    pub fn schedule(&self) -> UserSchedule {
        self.schedule
    }

    /// Exploration coefficient α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Policy for PersonalizedUcb {
    fn name(&self) -> &'static str {
        "UCB-P"
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        let alpha = self.alpha;
        let (scores, widths) = ws.scores_and_widths_mut(n);
        let user = self.schedule.user_at(view.t);
        let h = self.store.resolve(UserId(user));
        let est = self
            .store
            .estimator_for_select(h, view.t)
            .expect("PersonalizedUcb: estimator access failed");
        let (theta, sm) = est.theta_and_inverse();
        sm.widths_and_dots_into(
            view.contexts.as_slice(),
            view.dim(),
            theta.as_slice(),
            widths,
            scores,
        );
        for v in 0..n {
            scores[v] += alpha * widths[v];
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(
        &mut self,
        t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    ) {
        let user = self.schedule.user_at(t);
        let h = self.store.resolve(UserId(user));
        for (v, accepted) in feedback.zip(arrangement) {
            let r = if accepted { 1.0 } else { 0.0 };
            self.store
                .observe(h, contexts.context(v), r, t)
                .expect("PersonalizedUcb: estimator update failed");
        }
        self.store
            .enforce_budget(t)
            .expect("PersonalizedUcb: budget enforcement failed");
        self.ws.set_model_tier_stats(tier_stats(&self.store));
    }

    fn state_bytes(&self) -> usize {
        self.store.resident_bytes() + self.ws.state_bytes()
    }

    fn save_state(&self) -> Vec<u8> {
        self.store.save_state()
    }

    fn restore_state(&mut self, blob: &[u8]) -> Result<(), SnapshotError> {
        self.store.restore_state(blob).map_err(snapshot_err)
    }
}

/// Per-user Thompson Sampling over an [`EstimatorStore`].
#[derive(Debug)]
pub struct PersonalizedTs {
    store: EstimatorStore,
    schedule: UserSchedule,
    delta: f64,
    r_sub_gaussian: f64,
    rng: fasea_stats::Rng,
    ws: ScoreWorkspace,
}

impl PersonalizedTs {
    /// Creates per-user TS with confidence parameter `delta` (paper
    /// default δ = 0.1), `R = 1` and a policy-private RNG seed.
    ///
    /// # Panics
    /// Panics if `delta ∉ (0, 1)`.
    pub fn new(store: EstimatorStore, schedule: UserSchedule, delta: f64, seed: u64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "PersonalizedTs: delta must be in (0, 1)"
        );
        PersonalizedTs {
            store,
            schedule,
            delta,
            r_sub_gaussian: 1.0,
            rng: fasea_stats::rng_from_seed(seed),
            ws: ScoreWorkspace::new(),
        }
    }

    /// Read access to the backing store (stats, digests).
    pub fn store(&self) -> &EstimatorStore {
        &self.store
    }

    /// Mutable access to the backing store.
    pub fn store_mut(&mut self) -> &mut EstimatorStore {
        &mut self.store
    }

    /// The round → user schedule.
    pub fn schedule(&self) -> UserSchedule {
        self.schedule
    }

    /// The sampling scale `q = R √(9 d ln(t/δ))` at (1-based) time `t`.
    pub fn sampling_scale(&self, t_one_based: u64) -> f64 {
        let d = self.store.dim() as f64;
        let t = t_one_based.max(1) as f64;
        self.r_sub_gaussian * (9.0 * d * (t / self.delta).ln()).sqrt()
    }

    /// FNV-1a digest of the policy RNG's serialized state — the
    /// "policy RNG digest" compared across budget configurations.
    pub fn rng_digest(&self) -> u64 {
        fnv1a(&fasea_stats::rng_state(&self.rng))
    }
}

impl Policy for PersonalizedTs {
    fn name(&self) -> &'static str {
        "TS-P"
    }

    fn score_into(&mut self, view: &SelectionView<'_>, ws: &mut ScoreWorkspace) {
        let n = view.num_events();
        let q = self.sampling_scale(view.t + 1);
        let user = self.schedule.user_at(view.t);
        let h = self.store.resolve(UserId(user));
        let (theta_hat, chol) = {
            let est = self
                .store
                .estimator_for_select(h, view.t)
                .expect("PersonalizedTs: estimator access failed");
            (
                est.theta_hat().clone(),
                est.gram_cholesky()
                    .expect("PersonalizedTs: Y must stay SPD"),
            )
        };
        let theta_tilde =
            fasea_stats::sample_gaussian_with_precision_factor(&theta_hat, q, &chol, &mut self.rng);
        let scores = ws.scores_mut(n);
        for (v, s) in scores.iter_mut().enumerate() {
            let x = view.contexts.context(EventId(v));
            *s = fasea_linalg::dot_slices(x, theta_tilde.as_slice());
        }
    }

    fn workspace(&self) -> &ScoreWorkspace {
        &self.ws
    }

    fn workspace_mut(&mut self) -> &mut ScoreWorkspace {
        &mut self.ws
    }

    fn observe(
        &mut self,
        t: u64,
        contexts: &ContextMatrix,
        arrangement: &Arrangement,
        feedback: &Feedback,
    ) {
        let user = self.schedule.user_at(t);
        let h = self.store.resolve(UserId(user));
        for (v, accepted) in feedback.zip(arrangement) {
            let r = if accepted { 1.0 } else { 0.0 };
            self.store
                .observe(h, contexts.context(v), r, t)
                .expect("PersonalizedTs: estimator update failed");
        }
        self.store
            .enforce_budget(t)
            .expect("PersonalizedTs: budget enforcement failed");
        self.ws.set_model_tier_stats(tier_stats(&self.store));
    }

    fn state_bytes(&self) -> usize {
        self.store.resident_bytes() + self.ws.state_bytes()
    }

    fn save_state(&self) -> Vec<u8> {
        let store = self.store.save_state();
        let mut out = Vec::with_capacity(8 + store.len() + 32);
        out.extend_from_slice(&(store.len() as u64).to_le_bytes());
        out.extend_from_slice(&store);
        out.extend_from_slice(&fasea_stats::rng_state(&self.rng));
        out
    }

    fn restore_state(&mut self, blob: &[u8]) -> Result<(), SnapshotError> {
        if blob.len() < 8 {
            return Err(SnapshotError::Truncated);
        }
        let store_len = u64::from_le_bytes(blob[..8].try_into().unwrap()) as usize;
        if blob.len() != 8 + store_len + 32 {
            return Err(SnapshotError::Truncated);
        }
        self.store
            .restore_state(&blob[8..8 + store_len])
            .map_err(snapshot_err)?;
        let rng_state: [u8; 32] = blob[8 + store_len..].try_into().unwrap();
        self.rng = fasea_stats::rng_from_state(rng_state);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use fasea_core::{ConflictGraph, ContextMatrix};

    fn view<'a>(
        contexts: &'a ContextMatrix,
        conflicts: &'a ConflictGraph,
        remaining: &'a [u32],
        t: u64,
    ) -> SelectionView<'a> {
        SelectionView {
            t,
            user_capacity: 2,
            contexts,
            conflicts,
            remaining,
        }
    }

    fn drive_policy(policy: &mut dyn Policy, rounds: u64) -> Vec<Vec<EventId>> {
        let ctx = ContextMatrix::from_fn(6, 3, |v, j| ((v * 5 + j * 11) % 13) as f64 / 13.0 - 0.3);
        let g = ConflictGraph::from_pairs(6, &[(0, 1), (2, 3)]);
        let remaining = [1_000_000u32; 6];
        let mut picks = Vec::new();
        for t in 0..rounds {
            let a = policy.select(&view(&ctx, &g, &remaining, t));
            // Deterministic synthetic feedback keyed off (t, v).
            let fb: Vec<bool> = a
                .iter()
                .map(|v| mix64(t ^ v.0 as u64).is_multiple_of(3))
                .collect();
            policy.observe(t, &ctx, &a, &Feedback::new(fb));
            picks.push(a.events().to_vec());
        }
        picks
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-models-policy-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn schedule_is_deterministic_and_in_range() {
        let s = UserSchedule::new(0xDEAD, 17);
        for t in 0..1000 {
            assert!(s.user_at(t) < 17);
            assert_eq!(s.user_at(t), s.user_at(t));
        }
        assert_eq!(s.population(), 17);
    }

    #[test]
    fn personalized_ucb_budget_runs_match_unbounded_bit_for_bit() {
        let one = fasea_bandit::RidgeEstimator::new(3, 1.0).state_bytes();
        let dir = temp_dir("ucb-parity");
        let schedule = UserSchedule::new(99, 11);
        let mut tiny = PersonalizedUcb::new(
            EstimatorStore::new(StoreConfig::bounded(3, 1.0, 2 * one, 1200, &dir)).unwrap(),
            schedule,
            2.0,
        );
        let mut unbounded = PersonalizedUcb::new(
            EstimatorStore::new(StoreConfig::unbounded(3, 1.0)).unwrap(),
            schedule,
            2.0,
        );
        let picks_tiny = drive_policy(&mut tiny, 250);
        let picks_unbounded = drive_policy(&mut unbounded, 250);
        assert_eq!(picks_tiny, picks_unbounded, "arrangements diverged");
        assert!(tiny.store().stats().demotions > 0, "budget never bound");
        assert_eq!(tiny.save_state(), unbounded.save_state());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn personalized_ts_budget_runs_match_unbounded_bit_for_bit() {
        let one = fasea_bandit::RidgeEstimator::new(3, 1.0).state_bytes();
        let dir = temp_dir("ts-parity");
        let schedule = UserSchedule::new(7, 9);
        let mut tiny = PersonalizedTs::new(
            EstimatorStore::new(StoreConfig::bounded(3, 1.0, one, 300, &dir)).unwrap(),
            schedule,
            0.1,
            42,
        );
        let mut unbounded = PersonalizedTs::new(
            EstimatorStore::new(StoreConfig::unbounded(3, 1.0)).unwrap(),
            schedule,
            0.1,
            42,
        );
        let picks_tiny = drive_policy(&mut tiny, 200);
        let picks_unbounded = drive_policy(&mut unbounded, 200);
        assert_eq!(picks_tiny, picks_unbounded, "arrangements diverged");
        assert!(tiny.store().stats().evictions > 0, "warm tier never bound");
        assert_eq!(tiny.rng_digest(), unbounded.rng_digest());
        assert_eq!(tiny.save_state(), unbounded.save_state());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ts_save_restore_resumes_in_lockstep() {
        let schedule = UserSchedule::new(3, 5);
        let mut a = PersonalizedTs::new(
            EstimatorStore::new(StoreConfig::unbounded(3, 1.0)).unwrap(),
            schedule,
            0.1,
            5,
        );
        drive_policy(&mut a, 60);
        let blob = a.save_state();
        let mut b = PersonalizedTs::new(
            EstimatorStore::new(StoreConfig::unbounded(3, 1.0)).unwrap(),
            schedule,
            0.1,
            999, // seed overwritten by restore
        );
        b.restore_state(&blob).unwrap();
        assert_eq!(a.rng_digest(), b.rng_digest());
        let more_a = drive_policy(&mut a, 40);
        let more_b = drive_policy(&mut b, 40);
        // NB: drive_policy restarts t at 0, which both sides share.
        assert_eq!(more_a, more_b);
        assert_eq!(a.save_state(), b.save_state());
    }

    #[test]
    fn ucb_restore_rejects_garbage() {
        let mut p = PersonalizedUcb::new(
            EstimatorStore::new(StoreConfig::unbounded(2, 1.0)).unwrap(),
            UserSchedule::new(0, 3),
            1.0,
        );
        assert!(p.restore_state(b"nonsense").is_err());
        assert_eq!(p.name(), "UCB-P");
        assert!(p.state_bytes() > 0);
    }
}

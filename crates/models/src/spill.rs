//! The spill log: durable home of evicted estimator state.
//!
//! One append-only file of CRC-framed records (the same
//! `len | crc32 | payload` framing as the round WAL, via
//! `fasea-store`'s raw-frame primitives). Each payload is
//! `user_id (u64 LE) | exact estimator blob` (see [`crate::codec`]).
//! Re-spilling a user appends a new frame; the in-memory index keeps
//! only the latest offset per user, so on the recovery scan **the last
//! frame per user wins** — the on-disk analogue of last-writer-wins.
//!
//! ## Crash safety
//!
//! * Appends are a single frame write; a crash mid-append leaves a torn
//!   tail that the opening scan CRC-rejects and truncates, exactly like
//!   the WAL's segment recovery.
//! * Compaction writes a complete next-generation file
//!   (`spill-<g+1>.log.tmp`), fsyncs it, then renames it into place —
//!   the rename is the commit point. Stale `.tmp` files and older
//!   generations found at open are deleted.
//! * The header carries an instance fingerprint; opening a directory
//!   that belongs to a different store instance is refused rather than
//!   silently mixing state.

use crate::ModelsError;
use fasea_store::{read_raw_frame, write_raw_frame, RawFrame};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a spill log file.
pub const SPILL_MAGIC: &[u8; 8] = b"FASEASPL";
/// Current on-disk format version.
pub const SPILL_VERSION: u32 = 1;

const HEADER_LEN: u64 = 8 + 4 + 8;
/// Compact when dead bytes exceed both live bytes and this floor.
const COMPACT_MIN_GARBAGE: u64 = 1 << 20;

#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: u64,
    /// Whole-frame length (header + payload) for accounting.
    frame_len: u64,
}

/// An append-only, CRC-framed, compacting store of spilled models.
#[derive(Debug)]
pub struct SpillLog {
    dir: PathBuf,
    generation: u64,
    file: File,
    write_pos: u64,
    fingerprint: u64,
    index: HashMap<u64, Slot>,
    live_bytes: u64,
    appends: u64,
    compactions: u64,
}

fn log_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("spill-{generation:06}.log"))
}

fn write_header(file: &mut File, fingerprint: u64) -> std::io::Result<()> {
    file.write_all(SPILL_MAGIC)?;
    file.write_all(&SPILL_VERSION.to_le_bytes())?;
    file.write_all(&fingerprint.to_le_bytes())?;
    file.sync_data()
}

fn read_header(file: &mut File, fingerprint: u64) -> Result<(), ModelsError> {
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != SPILL_MAGIC {
        return Err(ModelsError::Spill("not a spill log"));
    }
    let mut word = [0u8; 4];
    file.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != SPILL_VERSION {
        return Err(ModelsError::Spill("unsupported spill log version"));
    }
    let mut fp = [0u8; 8];
    file.read_exact(&mut fp)?;
    if u64::from_le_bytes(fp) != fingerprint {
        return Err(ModelsError::Spill("spill log belongs to another store"));
    }
    Ok(())
}

impl SpillLog {
    /// Opens (or creates) the spill log in `dir`, recovering its index
    /// by scanning frames and truncating any torn tail. `fingerprint`
    /// ties the directory to one store instance.
    pub fn open(dir: &Path, fingerprint: u64) -> Result<Self, ModelsError> {
        fs::create_dir_all(dir)?;
        let mut generations: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // A compaction that never reached its rename commit.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(g) = name
                .strip_prefix("spill-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                generations.push(g);
            }
        }
        generations.sort_unstable();
        let generation = match generations.last() {
            Some(&g) => {
                // Older generations were superseded by a committed
                // compaction that crashed before deleting them.
                for &old in &generations[..generations.len() - 1] {
                    let _ = fs::remove_file(log_path(dir, old));
                }
                g
            }
            None => {
                let mut file = File::create(log_path(dir, 0))?;
                write_header(&mut file, fingerprint)?;
                0
            }
        };

        let path = log_path(dir, generation);
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        read_header(&mut file, fingerprint)?;

        // Scan: last frame per user wins; stop at the first torn frame
        // and truncate the file back to the end of the valid prefix.
        let mut index: HashMap<u64, Slot> = HashMap::new();
        let mut reader = BufReader::new(&mut file);
        let mut good_end = HEADER_LEN;
        loop {
            match read_raw_frame(&mut reader)? {
                RawFrame::Eof => break,
                RawFrame::Torn { .. } => {
                    drop(reader);
                    file.set_len(good_end)?;
                    file.sync_data()?;
                    break;
                }
                RawFrame::Payload { payload, bytes } => {
                    if payload.len() < 8 {
                        drop(reader);
                        file.set_len(good_end)?;
                        file.sync_data()?;
                        break;
                    }
                    let user = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    index.insert(
                        user,
                        Slot {
                            offset: good_end,
                            frame_len: bytes,
                        },
                    );
                    good_end += bytes;
                }
            }
        }
        let live_bytes = index.values().map(|s| s.frame_len).sum();
        Ok(SpillLog {
            dir: dir.to_path_buf(),
            generation,
            file,
            write_pos: good_end,
            fingerprint,
            index,
            live_bytes,
            appends: 0,
            compactions: 0,
        })
    }

    /// Appends (or replaces) `user`'s exact blob. Durable once
    /// [`SpillLog::sync`] returns; the write itself is buffered by the
    /// OS like WAL appends under `FsyncPolicy::Never`.
    pub fn append(&mut self, user: u64, blob: &[u8]) -> Result<(), ModelsError> {
        let mut payload = Vec::with_capacity(8 + blob.len());
        payload.extend_from_slice(&user.to_le_bytes());
        payload.extend_from_slice(blob);
        self.file.seek(SeekFrom::Start(self.write_pos))?;
        let bytes = write_raw_frame(&mut self.file, &payload)?;
        if let Some(old) = self.index.insert(
            user,
            Slot {
                offset: self.write_pos,
                frame_len: bytes,
            },
        ) {
            self.live_bytes -= old.frame_len;
        }
        self.live_bytes += bytes;
        self.write_pos += bytes;
        self.appends += 1;
        self.maybe_compact()?;
        Ok(())
    }

    /// Reads back `user`'s latest exact blob, CRC-verified. `None` if
    /// the user has never been spilled (or was cleared). Takes `&self`:
    /// the read seeks a borrowed handle, leaving append state untouched
    /// (appends re-seek to their own write position).
    pub fn read(&self, user: u64) -> Result<Option<Vec<u8>>, ModelsError> {
        let slot = match self.index.get(&user) {
            Some(s) => *s,
            None => return Ok(None),
        };
        let mut file = &self.file;
        file.seek(SeekFrom::Start(slot.offset))?;
        let mut region = file.take(slot.frame_len);
        match read_raw_frame(&mut region)? {
            RawFrame::Payload { payload, .. } => {
                if payload.len() < 8 || u64::from_le_bytes(payload[..8].try_into().unwrap()) != user
                {
                    return Err(ModelsError::Spill("spill index points at wrong record"));
                }
                Ok(Some(payload[8..].to_vec()))
            }
            _ => Err(ModelsError::Spill("spilled record failed its checksum")),
        }
    }

    /// Whether `user` has a live spilled record.
    pub fn contains(&self, user: u64) -> bool {
        self.index.contains_key(&user)
    }

    /// Drops every record and starts a fresh generation — used when a
    /// snapshot restore supersedes all spilled state.
    pub fn clear(&mut self) -> Result<(), ModelsError> {
        let next = self.generation + 1;
        let path = log_path(&self.dir, next);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        write_header(&mut file, self.fingerprint)?;
        let _ = fs::remove_file(log_path(&self.dir, self.generation));
        self.generation = next;
        self.file = file;
        self.write_pos = HEADER_LEN;
        self.index.clear();
        self.live_bytes = 0;
        Ok(())
    }

    /// Flushes appends to disk (fdatasync).
    pub fn sync(&mut self) -> Result<(), ModelsError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<(), ModelsError> {
        let total = self.write_pos - HEADER_LEN;
        let garbage = total - self.live_bytes;
        if garbage <= self.live_bytes || garbage < COMPACT_MIN_GARBAGE {
            return Ok(());
        }
        self.compact()
    }

    /// Rewrites the log with only live records (latest frame per user),
    /// committing via rename. Record order is sorted by user id, so the
    /// compacted file's bytes are a pure function of the live state.
    pub fn compact(&mut self) -> Result<(), ModelsError> {
        let next = self.generation + 1;
        let tmp = self.dir.join(format!("spill-{next:06}.log.tmp"));
        let mut out = File::create(&tmp)?;
        write_header(&mut out, self.fingerprint)?;

        let mut users: Vec<u64> = self.index.keys().copied().collect();
        users.sort_unstable();
        let mut new_index = HashMap::with_capacity(users.len());
        let mut pos = HEADER_LEN;
        for user in users {
            let blob = self
                .read(user)?
                .ok_or(ModelsError::Spill("live record vanished during compaction"))?;
            let mut payload = Vec::with_capacity(8 + blob.len());
            payload.extend_from_slice(&user.to_le_bytes());
            payload.extend_from_slice(&blob);
            let bytes = write_raw_frame(&mut out, &payload)?;
            new_index.insert(
                user,
                Slot {
                    offset: pos,
                    frame_len: bytes,
                },
            );
            pos += bytes;
        }
        out.sync_data()?;
        let committed = log_path(&self.dir, next);
        fs::rename(&tmp, &committed)?;
        let old = log_path(&self.dir, self.generation);
        self.file = OpenOptions::new().read(true).write(true).open(&committed)?;
        let _ = fs::remove_file(old);
        self.generation = next;
        self.write_pos = pos;
        self.index = new_index;
        self.live_bytes = pos - HEADER_LEN;
        self.compactions += 1;
        Ok(())
    }

    /// Number of users with a live spilled record.
    pub fn live_users(&self) -> usize {
        self.index.len()
    }

    /// Bytes of live (latest-generation) frames.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Total file size, dead frames included.
    pub fn file_bytes(&self) -> u64 {
        self.write_pos
    }

    /// Lifetime append count (this open).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Lifetime compaction count (this open).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-models-spill-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_round_trip_survives_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let mut log = SpillLog::open(&dir, 42).unwrap();
            log.append(7, b"seven-v1").unwrap();
            log.append(9, b"nine").unwrap();
            log.append(7, b"seven-v2").unwrap();
            log.sync().unwrap();
            assert_eq!(log.read(7).unwrap().unwrap(), b"seven-v2");
            assert_eq!(log.live_users(), 2);
        }
        let log = SpillLog::open(&dir, 42).unwrap();
        assert_eq!(log.read(7).unwrap().unwrap(), b"seven-v2");
        assert_eq!(log.read(9).unwrap().unwrap(), b"nine");
        assert_eq!(log.read(8).unwrap(), None);
        assert_eq!(log.live_users(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let path;
        {
            let mut log = SpillLog::open(&dir, 1).unwrap();
            log.append(1, b"alpha").unwrap();
            log.append(2, b"beta").unwrap();
            log.sync().unwrap();
            path = log_path(&dir, 0);
        }
        // Simulate a crash mid-append: garbage tail bytes.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 11]).unwrap();
        drop(f);
        let before = fs::metadata(&path).unwrap().len();
        let mut log = SpillLog::open(&dir, 1).unwrap();
        assert_eq!(log.read(1).unwrap().unwrap(), b"alpha");
        assert_eq!(log.read(2).unwrap().unwrap(), b"beta");
        assert!(fs::metadata(&path).unwrap().len() < before);
        // The truncated log accepts new appends at the repaired tail.
        log.append(3, b"gamma").unwrap();
        assert_eq!(log.read(3).unwrap().unwrap(), b"gamma");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprint_refused() {
        let dir = temp_dir("foreign");
        drop(SpillLog::open(&dir, 5).unwrap());
        assert!(matches!(
            SpillLog::open(&dir, 6),
            Err(ModelsError::Spill(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_frames_and_commits_atomically() {
        let dir = temp_dir("compact");
        let mut log = SpillLog::open(&dir, 3).unwrap();
        for round in 0..10u8 {
            for user in 0..8u64 {
                log.append(user, &[round; 100]).unwrap();
            }
        }
        let before = log.file_bytes();
        log.compact().unwrap();
        assert!(log.file_bytes() < before);
        assert_eq!(log.live_users(), 8);
        for user in 0..8u64 {
            assert_eq!(log.read(user).unwrap().unwrap(), vec![9u8; 100]);
        }
        drop(log);
        // The committed generation is what reopen finds.
        let log = SpillLog::open(&dir, 3).unwrap();
        assert_eq!(log.live_users(), 8);
        assert_eq!(log.read(4).unwrap().unwrap(), vec![9u8; 100]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_from_crashed_compaction_is_removed() {
        let dir = temp_dir("tmp");
        {
            let mut log = SpillLog::open(&dir, 8).unwrap();
            log.append(1, b"keep").unwrap();
            log.sync().unwrap();
        }
        fs::write(dir.join("spill-000001.log.tmp"), b"half-written").unwrap();
        let log = SpillLog::open(&dir, 8).unwrap();
        assert_eq!(log.read(1).unwrap().unwrap(), b"keep");
        assert!(!dir.join("spill-000001.log.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_starts_a_fresh_generation() {
        let dir = temp_dir("clear");
        let mut log = SpillLog::open(&dir, 2).unwrap();
        log.append(1, b"old").unwrap();
        log.clear().unwrap();
        assert_eq!(log.live_users(), 0);
        assert_eq!(log.read(1).unwrap(), None);
        log.append(1, b"new").unwrap();
        drop(log);
        let log = SpillLog::open(&dir, 2).unwrap();
        assert_eq!(log.read(1).unwrap().unwrap(), b"new");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! The spill log: durable home of evicted estimator state.
//!
//! One append-only file of CRC-framed records (the same
//! `len | crc32 | payload` framing as the round WAL, via
//! `fasea-store`'s raw-frame primitives). Each payload is
//! `key (u64 LE) | kind (u8) | blob`, where `kind` tags the record
//! type:
//!
//! * [`KIND_USER_EXACT`] — a user's exact estimator blob
//!   ([`crate::codec::encode_exact`]), keyed by user id;
//! * [`KIND_COHORT`] — a cohort prior's exact blob, keyed by cohort id;
//! * [`KIND_USER_SKETCH`] — a user's frequent-directions sketch record
//!   ([`crate::codec::encode_sketch_into`]), keyed by user id.
//!
//! Re-spilling a key appends a new frame; the in-memory index keeps
//! only the latest offset per `(kind, key)`, so on the recovery scan
//! **the last frame per key wins** — the on-disk analogue of
//! last-writer-wins.
//!
//! ## Batched appends
//!
//! Demotion under memory pressure happens in runs (the store demotes
//! every victim over budget in one sweep), so the log exposes a batch
//! API: [`SpillLog::batch_begin`] / [`SpillLog::batch_add`] /
//! [`SpillLog::batch_commit`]. A batch stages frames into one reused
//! write buffer and commits them with a single seek + write, so a run
//! of N demotions costs one syscall and — once the buffers have grown
//! to steady-state capacity — zero allocations. [`SpillLog::append`]
//! is a batch of one.
//!
//! ## Crash safety
//!
//! * A committed batch is a contiguous run of frames; a crash mid-write
//!   leaves a torn tail that the opening scan CRC-rejects and
//!   truncates, exactly like the WAL's segment recovery. Earlier frames
//!   of the same batch survive individually (each carries its own CRC).
//! * Compaction writes a complete next-generation file
//!   (`spill-<g+1>.log.tmp`), fsyncs it, then renames it into place —
//!   the rename is the commit point. Stale `.tmp` files and older
//!   generations found at open are deleted.
//! * The header carries an instance fingerprint; opening a directory
//!   that belongs to a different store instance is refused rather than
//!   silently mixing state.

use crate::ModelsError;
use fasea_store::{read_raw_frame, write_raw_frame, RawFrame};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a spill log file.
pub const SPILL_MAGIC: &[u8; 8] = b"FASEASPL";
/// Current on-disk format version (v2 added the record-kind byte).
pub const SPILL_VERSION: u32 = 2;

/// Record kind: a user's exact estimator blob.
pub const KIND_USER_EXACT: u8 = 0;
/// Record kind: a cohort prior's exact estimator blob.
pub const KIND_COHORT: u8 = 1;
/// Record kind: a user's frequent-directions sketch record.
pub const KIND_USER_SKETCH: u8 = 2;

const HEADER_LEN: u64 = 8 + 4 + 8;
/// `key (8) | kind (1)` prefix of every payload.
const PAYLOAD_PREFIX: usize = 9;
/// Compact when dead bytes exceed both live bytes and this floor.
const COMPACT_MIN_GARBAGE: u64 = 1 << 20;

#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: u64,
    /// Whole-frame length (header + payload) for accounting.
    frame_len: u64,
}

/// An append-only, CRC-framed, compacting store of spilled models.
#[derive(Debug)]
pub struct SpillLog {
    dir: PathBuf,
    generation: u64,
    file: File,
    write_pos: u64,
    fingerprint: u64,
    index: HashMap<(u8, u64), Slot>,
    live_bytes: u64,
    appends: u64,
    compactions: u64,
    /// Reused staging buffers for the batch API: framed bytes awaiting
    /// the commit write, the payload scratch, and the staged index
    /// entries `(kind, key, offset, frame_len)`.
    batch_buf: Vec<u8>,
    payload_buf: Vec<u8>,
    staged: Vec<(u8, u64, u64, u64)>,
    in_batch: bool,
}

fn log_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("spill-{generation:06}.log"))
}

fn write_header(file: &mut File, fingerprint: u64) -> std::io::Result<()> {
    file.write_all(SPILL_MAGIC)?;
    file.write_all(&SPILL_VERSION.to_le_bytes())?;
    file.write_all(&fingerprint.to_le_bytes())?;
    file.sync_data()
}

fn read_header(file: &mut File, fingerprint: u64) -> Result<(), ModelsError> {
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic != SPILL_MAGIC {
        return Err(ModelsError::Spill("not a spill log"));
    }
    let mut word = [0u8; 4];
    file.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != SPILL_VERSION {
        return Err(ModelsError::Spill("unsupported spill log version"));
    }
    let mut fp = [0u8; 8];
    file.read_exact(&mut fp)?;
    if u64::from_le_bytes(fp) != fingerprint {
        return Err(ModelsError::Spill("spill log belongs to another store"));
    }
    Ok(())
}

impl SpillLog {
    /// Opens (or creates) the spill log in `dir`, recovering its index
    /// by scanning frames and truncating any torn tail. `fingerprint`
    /// ties the directory to one store instance.
    pub fn open(dir: &Path, fingerprint: u64) -> Result<Self, ModelsError> {
        fs::create_dir_all(dir)?;
        let mut generations: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // A compaction that never reached its rename commit.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(g) = name
                .strip_prefix("spill-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                generations.push(g);
            }
        }
        generations.sort_unstable();
        let generation = match generations.last() {
            Some(&g) => {
                // Older generations were superseded by a committed
                // compaction that crashed before deleting them.
                for &old in &generations[..generations.len() - 1] {
                    let _ = fs::remove_file(log_path(dir, old));
                }
                g
            }
            None => {
                let mut file = File::create(log_path(dir, 0))?;
                write_header(&mut file, fingerprint)?;
                0
            }
        };

        let path = log_path(dir, generation);
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        read_header(&mut file, fingerprint)?;

        // Scan: last frame per (kind, key) wins; stop at the first torn
        // frame and truncate the file back to the valid prefix.
        let mut index: HashMap<(u8, u64), Slot> = HashMap::new();
        let mut reader = BufReader::new(&mut file);
        let mut good_end = HEADER_LEN;
        loop {
            match read_raw_frame(&mut reader)? {
                RawFrame::Eof => break,
                RawFrame::Torn { .. } => {
                    drop(reader);
                    file.set_len(good_end)?;
                    file.sync_data()?;
                    break;
                }
                RawFrame::Payload { payload, bytes } => {
                    if payload.len() < PAYLOAD_PREFIX {
                        drop(reader);
                        file.set_len(good_end)?;
                        file.sync_data()?;
                        break;
                    }
                    let key = u64::from_le_bytes(payload[..8].try_into().unwrap());
                    let kind = payload[8];
                    index.insert(
                        (kind, key),
                        Slot {
                            offset: good_end,
                            frame_len: bytes,
                        },
                    );
                    good_end += bytes;
                }
            }
        }
        let live_bytes = index.values().map(|s| s.frame_len).sum();
        Ok(SpillLog {
            dir: dir.to_path_buf(),
            generation,
            file,
            write_pos: good_end,
            fingerprint,
            index,
            live_bytes,
            appends: 0,
            compactions: 0,
            batch_buf: Vec::new(),
            payload_buf: Vec::new(),
            staged: Vec::new(),
            in_batch: false,
        })
    }

    /// Starts a batch of appends. Frames staged with
    /// [`SpillLog::batch_add`] hit the file — and become readable — only
    /// at [`SpillLog::batch_commit`].
    ///
    /// # Panics
    /// Panics if a batch is already open.
    pub fn batch_begin(&mut self) {
        assert!(!self.in_batch, "spill batch already open");
        self.in_batch = true;
        self.batch_buf.clear();
        self.staged.clear();
    }

    /// Stages one `(kind, key)` record into the open batch. Reuses the
    /// log's staging buffers — allocation-free once they have grown to
    /// the batch's steady-state size.
    ///
    /// # Errors
    /// I/O errors from framing (buffer writes cannot fail in practice).
    ///
    /// # Panics
    /// Panics if no batch is open.
    pub fn batch_add(&mut self, kind: u8, key: u64, blob: &[u8]) -> Result<(), ModelsError> {
        assert!(self.in_batch, "batch_add outside a spill batch");
        self.payload_buf.clear();
        self.payload_buf.extend_from_slice(&key.to_le_bytes());
        self.payload_buf.push(kind);
        self.payload_buf.extend_from_slice(blob);
        let offset = self.write_pos + self.batch_buf.len() as u64;
        let bytes = write_raw_frame(&mut self.batch_buf, &self.payload_buf)?;
        self.staged.push((kind, key, offset, bytes));
        Ok(())
    }

    /// Commits the open batch: one seek + one write for every staged
    /// frame, then index/accounting updates and (possibly) a
    /// compaction.
    ///
    /// # Errors
    /// I/O failures; the batch is closed either way (a failed write
    /// leaves a torn tail for the next open to truncate).
    ///
    /// # Panics
    /// Panics if no batch is open.
    pub fn batch_commit(&mut self) -> Result<(), ModelsError> {
        assert!(self.in_batch, "batch_commit outside a spill batch");
        self.in_batch = false;
        if self.staged.is_empty() {
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(self.write_pos))?;
        self.file.write_all(&self.batch_buf)?;
        self.write_pos += self.batch_buf.len() as u64;
        for i in 0..self.staged.len() {
            let (kind, key, offset, frame_len) = self.staged[i];
            if let Some(old) = self.index.insert((kind, key), Slot { offset, frame_len }) {
                self.live_bytes -= old.frame_len;
            }
            self.live_bytes += frame_len;
            self.appends += 1;
        }
        self.staged.clear();
        self.batch_buf.clear();
        self.maybe_compact()?;
        Ok(())
    }

    /// Appends (or replaces) one record — a batch of one. Durable once
    /// [`SpillLog::sync`] returns; the write itself is buffered by the
    /// OS like WAL appends under `FsyncPolicy::Never`.
    pub fn append(&mut self, kind: u8, key: u64, blob: &[u8]) -> Result<(), ModelsError> {
        self.batch_begin();
        self.batch_add(kind, key, blob)?;
        self.batch_commit()
    }

    /// Reads back the latest blob for `(kind, key)`, CRC-verified.
    /// `None` if the key has never been spilled (or was cleared). Takes
    /// `&self`: the read seeks a borrowed handle, leaving append state
    /// untouched (appends re-seek to their own write position).
    pub fn read(&self, kind: u8, key: u64) -> Result<Option<Vec<u8>>, ModelsError> {
        debug_assert!(!self.in_batch, "reads during an open batch see stale state");
        let slot = match self.index.get(&(kind, key)) {
            Some(s) => *s,
            None => return Ok(None),
        };
        let mut file = &self.file;
        file.seek(SeekFrom::Start(slot.offset))?;
        let mut region = file.take(slot.frame_len);
        match read_raw_frame(&mut region)? {
            RawFrame::Payload { payload, .. } => {
                if payload.len() < PAYLOAD_PREFIX
                    || u64::from_le_bytes(payload[..8].try_into().unwrap()) != key
                    || payload[8] != kind
                {
                    return Err(ModelsError::Spill("spill index points at wrong record"));
                }
                Ok(Some(payload[PAYLOAD_PREFIX..].to_vec()))
            }
            _ => Err(ModelsError::Spill("spilled record failed its checksum")),
        }
    }

    /// Whether `(kind, key)` has a live spilled record.
    pub fn contains(&self, kind: u8, key: u64) -> bool {
        self.index.contains_key(&(kind, key))
    }

    /// Live keys of one record kind, ascending — deterministic
    /// enumeration for rehydration (e.g. cohort priors at open).
    pub fn live_keys_sorted(&self, kind: u8) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .index
            .keys()
            .filter(|(k, _)| *k == kind)
            .map(|(_, key)| *key)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Drops every record and starts a fresh generation — used when a
    /// snapshot restore supersedes all spilled state.
    pub fn clear(&mut self) -> Result<(), ModelsError> {
        let next = self.generation + 1;
        let path = log_path(&self.dir, next);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        write_header(&mut file, self.fingerprint)?;
        let _ = fs::remove_file(log_path(&self.dir, self.generation));
        self.generation = next;
        self.file = file;
        self.write_pos = HEADER_LEN;
        self.index.clear();
        self.live_bytes = 0;
        Ok(())
    }

    /// Flushes appends to disk (fdatasync).
    pub fn sync(&mut self) -> Result<(), ModelsError> {
        self.file.sync_data()?;
        Ok(())
    }

    fn maybe_compact(&mut self) -> Result<(), ModelsError> {
        let total = self.write_pos - HEADER_LEN;
        let garbage = total - self.live_bytes;
        if garbage <= self.live_bytes || garbage < COMPACT_MIN_GARBAGE {
            return Ok(());
        }
        self.compact()
    }

    /// Rewrites the log with only live records (latest frame per key),
    /// committing via rename. Record order is sorted by `(kind, key)`,
    /// so the compacted file's bytes are a pure function of the live
    /// state.
    pub fn compact(&mut self) -> Result<(), ModelsError> {
        let next = self.generation + 1;
        let tmp = self.dir.join(format!("spill-{next:06}.log.tmp"));
        let mut out = File::create(&tmp)?;
        write_header(&mut out, self.fingerprint)?;

        let mut keys: Vec<(u8, u64)> = self.index.keys().copied().collect();
        keys.sort_unstable();
        let mut new_index = HashMap::with_capacity(keys.len());
        let mut pos = HEADER_LEN;
        for (kind, key) in keys {
            let blob = self
                .read(kind, key)?
                .ok_or(ModelsError::Spill("live record vanished during compaction"))?;
            let mut payload = Vec::with_capacity(PAYLOAD_PREFIX + blob.len());
            payload.extend_from_slice(&key.to_le_bytes());
            payload.push(kind);
            payload.extend_from_slice(&blob);
            let bytes = write_raw_frame(&mut out, &payload)?;
            new_index.insert(
                (kind, key),
                Slot {
                    offset: pos,
                    frame_len: bytes,
                },
            );
            pos += bytes;
        }
        out.sync_data()?;
        let committed = log_path(&self.dir, next);
        fs::rename(&tmp, &committed)?;
        let old = log_path(&self.dir, self.generation);
        self.file = OpenOptions::new().read(true).write(true).open(&committed)?;
        let _ = fs::remove_file(old);
        self.generation = next;
        self.write_pos = pos;
        self.index = new_index;
        self.live_bytes = pos - HEADER_LEN;
        self.compactions += 1;
        Ok(())
    }

    /// Number of keys with a live spilled record (all kinds).
    pub fn live_users(&self) -> usize {
        self.index.len()
    }

    /// Bytes of live (latest-generation) frames.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Total file size, dead frames included.
    pub fn file_bytes(&self) -> u64 {
        self.write_pos
    }

    /// Lifetime append count (this open).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Lifetime compaction count (this open).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-models-spill-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_read_round_trip_survives_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let mut log = SpillLog::open(&dir, 42).unwrap();
            log.append(KIND_USER_EXACT, 7, b"seven-v1").unwrap();
            log.append(KIND_USER_EXACT, 9, b"nine").unwrap();
            log.append(KIND_USER_EXACT, 7, b"seven-v2").unwrap();
            log.sync().unwrap();
            assert_eq!(log.read(KIND_USER_EXACT, 7).unwrap().unwrap(), b"seven-v2");
            assert_eq!(log.live_users(), 2);
        }
        let log = SpillLog::open(&dir, 42).unwrap();
        assert_eq!(log.read(KIND_USER_EXACT, 7).unwrap().unwrap(), b"seven-v2");
        assert_eq!(log.read(KIND_USER_EXACT, 9).unwrap().unwrap(), b"nine");
        assert_eq!(log.read(KIND_USER_EXACT, 8).unwrap(), None);
        assert_eq!(log.live_users(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn kinds_are_independent_namespaces() {
        let dir = temp_dir("kinds");
        {
            let mut log = SpillLog::open(&dir, 11).unwrap();
            log.append(KIND_USER_EXACT, 5, b"user-five").unwrap();
            log.append(KIND_COHORT, 5, b"cohort-five").unwrap();
            log.append(KIND_USER_SKETCH, 5, b"sketch-five").unwrap();
            log.sync().unwrap();
        }
        let log = SpillLog::open(&dir, 11).unwrap();
        assert_eq!(log.read(KIND_USER_EXACT, 5).unwrap().unwrap(), b"user-five");
        assert_eq!(log.read(KIND_COHORT, 5).unwrap().unwrap(), b"cohort-five");
        assert_eq!(
            log.read(KIND_USER_SKETCH, 5).unwrap().unwrap(),
            b"sketch-five"
        );
        assert_eq!(log.live_users(), 3);
        assert_eq!(log.live_keys_sorted(KIND_COHORT), vec![5]);
        assert!(log.live_keys_sorted(3).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_appends_commit_atomically_and_read_back() {
        let dir = temp_dir("batch");
        let mut log = SpillLog::open(&dir, 9).unwrap();
        log.batch_begin();
        for k in 0..20u64 {
            log.batch_add(KIND_USER_EXACT, k, &[k as u8; 64]).unwrap();
        }
        // Nothing is readable (or counted) before commit.
        assert_eq!(log.live_users(), 0);
        assert_eq!(log.appends(), 0);
        log.batch_commit().unwrap();
        assert_eq!(log.live_users(), 20);
        assert_eq!(log.appends(), 20);
        for k in 0..20u64 {
            assert_eq!(
                log.read(KIND_USER_EXACT, k).unwrap().unwrap(),
                vec![k as u8; 64]
            );
        }
        // A batch replacing earlier keys reclaims their live bytes.
        let live_before = log.live_bytes();
        log.batch_begin();
        log.batch_add(KIND_USER_EXACT, 3, &[0xEE; 64]).unwrap();
        log.batch_commit().unwrap();
        assert_eq!(log.live_bytes(), live_before);
        assert_eq!(log.read(KIND_USER_EXACT, 3).unwrap().unwrap(), [0xEE; 64]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batch_commit_is_a_noop() {
        let dir = temp_dir("emptybatch");
        let mut log = SpillLog::open(&dir, 1).unwrap();
        log.batch_begin();
        log.batch_commit().unwrap();
        assert_eq!(log.file_bytes(), HEADER_LEN);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_dir("torn");
        let path;
        {
            let mut log = SpillLog::open(&dir, 1).unwrap();
            log.append(KIND_USER_EXACT, 1, b"alpha").unwrap();
            log.append(KIND_USER_EXACT, 2, b"beta").unwrap();
            log.sync().unwrap();
            path = log_path(&dir, 0);
        }
        // Simulate a crash mid-append: garbage tail bytes.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 11]).unwrap();
        drop(f);
        let before = fs::metadata(&path).unwrap().len();
        let mut log = SpillLog::open(&dir, 1).unwrap();
        assert_eq!(log.read(KIND_USER_EXACT, 1).unwrap().unwrap(), b"alpha");
        assert_eq!(log.read(KIND_USER_EXACT, 2).unwrap().unwrap(), b"beta");
        assert!(fs::metadata(&path).unwrap().len() < before);
        // The truncated log accepts new appends at the repaired tail.
        log.append(KIND_USER_EXACT, 3, b"gamma").unwrap();
        assert_eq!(log.read(KIND_USER_EXACT, 3).unwrap().unwrap(), b"gamma");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprint_refused() {
        let dir = temp_dir("foreign");
        drop(SpillLog::open(&dir, 5).unwrap());
        assert!(matches!(
            SpillLog::open(&dir, 6),
            Err(ModelsError::Spill(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_frames_and_commits_atomically() {
        let dir = temp_dir("compact");
        let mut log = SpillLog::open(&dir, 3).unwrap();
        for round in 0..10u8 {
            for user in 0..8u64 {
                log.append(KIND_USER_EXACT, user, &[round; 100]).unwrap();
            }
        }
        log.append(KIND_COHORT, 1, &[0x77; 50]).unwrap();
        let before = log.file_bytes();
        log.compact().unwrap();
        assert!(log.file_bytes() < before);
        assert_eq!(log.live_users(), 9);
        for user in 0..8u64 {
            assert_eq!(
                log.read(KIND_USER_EXACT, user).unwrap().unwrap(),
                vec![9u8; 100]
            );
        }
        assert_eq!(log.read(KIND_COHORT, 1).unwrap().unwrap(), vec![0x77; 50]);
        drop(log);
        // The committed generation is what reopen finds.
        let log = SpillLog::open(&dir, 3).unwrap();
        assert_eq!(log.live_users(), 9);
        assert_eq!(
            log.read(KIND_USER_EXACT, 4).unwrap().unwrap(),
            vec![9u8; 100]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compacted_bytes_are_a_pure_function_of_live_state() {
        // Two logs that arrive at the same live state through different
        // append orders compact to byte-identical files.
        let dir_a = temp_dir("pure-a");
        let dir_b = temp_dir("pure-b");
        let mut a = SpillLog::open(&dir_a, 4).unwrap();
        let mut b = SpillLog::open(&dir_b, 4).unwrap();
        a.append(KIND_USER_EXACT, 1, b"one").unwrap();
        a.append(KIND_COHORT, 0, b"coh").unwrap();
        a.append(KIND_USER_EXACT, 2, b"two").unwrap();
        b.append(KIND_USER_EXACT, 2, b"stale").unwrap();
        b.append(KIND_USER_EXACT, 2, b"two").unwrap();
        b.append(KIND_USER_EXACT, 1, b"one").unwrap();
        b.append(KIND_COHORT, 0, b"coh").unwrap();
        a.compact().unwrap();
        b.compact().unwrap();
        let bytes_a = fs::read(log_path(&dir_a, 1)).unwrap();
        let bytes_b = fs::read(log_path(&dir_b, 1)).unwrap();
        assert_eq!(bytes_a, bytes_b);
        let _ = fs::remove_dir_all(&dir_a);
        let _ = fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn stale_tmp_from_crashed_compaction_is_removed() {
        let dir = temp_dir("tmp");
        {
            let mut log = SpillLog::open(&dir, 8).unwrap();
            log.append(KIND_USER_EXACT, 1, b"keep").unwrap();
            log.sync().unwrap();
        }
        fs::write(dir.join("spill-000001.log.tmp"), b"half-written").unwrap();
        let log = SpillLog::open(&dir, 8).unwrap();
        assert_eq!(log.read(KIND_USER_EXACT, 1).unwrap().unwrap(), b"keep");
        assert!(!dir.join("spill-000001.log.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_starts_a_fresh_generation() {
        let dir = temp_dir("clear");
        let mut log = SpillLog::open(&dir, 2).unwrap();
        log.append(KIND_USER_EXACT, 1, b"old").unwrap();
        log.clear().unwrap();
        assert_eq!(log.live_users(), 0);
        assert_eq!(log.read(KIND_USER_EXACT, 1).unwrap(), None);
        log.append(KIND_USER_EXACT, 1, b"new").unwrap();
        drop(log);
        let log = SpillLog::open(&dir, 2).unwrap();
        assert_eq!(log.read(KIND_USER_EXACT, 1).unwrap().unwrap(), b"new");
        let _ = fs::remove_dir_all(&dir);
    }
}

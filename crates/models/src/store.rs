//! The estimator store: millions of per-user models behind one API.
//!
//! ## Residency tiers
//!
//! ```text
//! cold (COW prior)   0 private bytes   reads alias the shared prior
//!   │ first observe (copy-on-write clone)
//! hot                exact f64         RidgeEstimator resident in RAM
//!   │ hot budget exceeded → demote (exact bits appended to spill log)
//! warm               quantized i16     approximate copy in RAM,
//!   │ warm budget exceeded → evict     exact bits on disk
//! spilled            0 resident bytes  exact bits on disk only
//! ```
//!
//! Any access that can influence an arrangement or an update
//! ([`EstimatorStore::estimator_for_select`] /
//! [`EstimatorStore::estimator_for_observe`]) faults the exact state
//! back to hot; the quantized copy only serves approximate reads
//! ([`EstimatorStore::approx_point_estimate`]). Because the spill codec
//! is bit-preserving ([`crate::codec`]), a model that travelled
//! hot → warm → spilled → hot is indistinguishable from one that never
//! left memory — the foundation of the store's determinism contract.
//!
//! ## Eviction determinism
//!
//! Demotion/eviction order is the `BTreeSet<(last_access_seq, handle)>`
//! order: least-recently-accessed first, allocation-order handle as the
//! tiebreak. Both keys are pure functions of the round sequence, so two
//! runs with identical access sequences demote identical victims — no
//! hash-map iteration order, no wall-clock, no pointer values.

use crate::codec::{decode_exact, encode_exact, exact_blob_len};
use crate::quant::QuantizedModel;
use crate::spill::SpillLog;
use crate::ModelsError;
use fasea_bandit::RidgeEstimator;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;

/// A platform user identity (EBSN member id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

/// A stable, dense handle to one user's model. Handles are allocated in
/// [`EstimatorStore::resolve`] order and never invalidated — residency
/// changes underneath them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelHandle(u32);

impl ModelHandle {
    /// Dense slot index of this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Configuration of an [`EstimatorStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Context dimension `d` of every model.
    pub dim: usize,
    /// Ridge strength λ of every model (and of the prior).
    pub lambda: f64,
    /// Byte budget for the hot (exact f64) tier. `usize::MAX` disables
    /// demotion.
    pub hot_budget_bytes: usize,
    /// Byte budget for the warm (quantized) tier. `usize::MAX` disables
    /// eviction to the spilled tier.
    pub warm_budget_bytes: usize,
    /// Directory for the spill log. Required whenever either budget is
    /// bounded — a demoted model's exact bits must live somewhere.
    pub spill_dir: Option<PathBuf>,
    /// Instance fingerprint stamped into the spill log header.
    pub fingerprint: u64,
}

impl StoreConfig {
    /// Unbounded store: every materialized model stays hot forever.
    pub fn unbounded(dim: usize, lambda: f64) -> Self {
        StoreConfig {
            dim,
            lambda,
            hot_budget_bytes: usize::MAX,
            warm_budget_bytes: usize::MAX,
            spill_dir: None,
            fingerprint: fasea_stats::crn::mix64(dim as u64 ^ lambda.to_bits()),
        }
    }

    /// Budgeted store spilling through `dir`.
    pub fn bounded(
        dim: usize,
        lambda: f64,
        hot_budget_bytes: usize,
        warm_budget_bytes: usize,
        dir: impl Into<PathBuf>,
    ) -> Self {
        StoreConfig {
            hot_budget_bytes,
            warm_budget_bytes,
            spill_dir: Some(dir.into()),
            ..StoreConfig::unbounded(dim, lambda)
        }
    }
}

#[derive(Debug)]
enum Residency {
    /// Cold: aliases the shared prior; zero private bytes.
    Prior,
    /// Hot: exact f64 state resident.
    Hot(Box<RidgeEstimator>),
    /// Warm: quantized copy resident, exact bits in the spill log.
    Warm(Box<QuantizedModel>),
    /// Spilled: exact bits in the spill log only.
    Spilled,
}

#[derive(Debug)]
struct Slot {
    user: u64,
    residency: Residency,
    last_access: u64,
    /// Hot state newer than the spill log's copy (re-demotion of a
    /// clean fault-in skips the redundant append).
    dirty: bool,
}

/// A point-in-time snapshot of store occupancy and traffic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Users interned via [`EstimatorStore::resolve`].
    pub users: usize,
    /// Cold users still aliasing the COW prior.
    pub cold: usize,
    /// Models resident as exact f64 state.
    pub hot: usize,
    /// Models resident as quantized state (exact bits on disk).
    pub warm: usize,
    /// Models with no resident state (exact bits on disk).
    pub spilled: usize,
    /// Bytes of hot-tier model state.
    pub hot_bytes: usize,
    /// Bytes of warm-tier model state.
    pub warm_bytes: usize,
    /// Copy-on-write materializations (first observe per user).
    pub cow_materializations: u64,
    /// Exact-state fault-ins from the spill log.
    pub faults: u64,
    /// Hot → warm demotions.
    pub demotions: u64,
    /// Warm → spilled evictions.
    pub evictions: u64,
    /// Live bytes in the spill log.
    pub spill_live_bytes: u64,
    /// Total spill log file size (dead frames included).
    pub spill_file_bytes: u64,
    /// Appends to the spill log since open.
    pub spill_appends: u64,
    /// Spill log compactions since open.
    pub spill_compactions: u64,
}

/// Millions of per-user [`RidgeEstimator`]s behind a stable
/// `UserId -> ModelHandle` API — COW prior, quantized residency,
/// WAL-framed spill. See the module docs for the tier lifecycle.
#[derive(Debug)]
pub struct EstimatorStore {
    config: StoreConfig,
    prior: RidgeEstimator,
    slots: Vec<Slot>,
    by_user: HashMap<u64, u32>,
    /// Hot slots, least-recently-accessed first.
    lru_hot: BTreeSet<(u64, u32)>,
    /// Warm slots, least-recently-accessed first.
    lru_warm: BTreeSet<(u64, u32)>,
    hot_bytes: usize,
    warm_bytes: usize,
    /// Slots that have left the Prior tier (hot + warm + spilled).
    private: usize,
    spill: Option<SpillLog>,
    cow_materializations: u64,
    faults: u64,
    demotions: u64,
    evictions: u64,
}

const SAVE_MAGIC: &[u8; 8] = b"FASEAMS1";

impl EstimatorStore {
    /// Creates a store whose COW prior is the cold-start ridge state
    /// (`Y = λI`, `b = 0`).
    pub fn new(config: StoreConfig) -> Result<Self, ModelsError> {
        let prior = RidgeEstimator::new(config.dim, config.lambda);
        Self::with_prior(config, prior)
    }

    /// Creates a store with a pre-trained shared prior — e.g. a global
    /// estimator fitted on pooled history. Fresh users score through it
    /// at zero marginal memory until their first observation.
    pub fn with_prior(config: StoreConfig, prior: RidgeEstimator) -> Result<Self, ModelsError> {
        if config.dim == 0 {
            return Err(ModelsError::Config("dim must be positive"));
        }
        if !(config.lambda.is_finite() && config.lambda > 0.0) {
            return Err(ModelsError::Config("lambda must be finite and positive"));
        }
        if prior.dim() != config.dim {
            return Err(ModelsError::Config("prior dimension mismatch"));
        }
        let bounded =
            config.hot_budget_bytes != usize::MAX || config.warm_budget_bytes != usize::MAX;
        if bounded && config.spill_dir.is_none() {
            return Err(ModelsError::Config(
                "bounded budgets require a spill directory (exact bits must live somewhere)",
            ));
        }
        let spill = match &config.spill_dir {
            Some(dir) => Some(SpillLog::open(dir, config.fingerprint)?),
            None => None,
        };
        Ok(EstimatorStore {
            config,
            prior,
            slots: Vec::new(),
            by_user: HashMap::new(),
            lru_hot: BTreeSet::new(),
            lru_warm: BTreeSet::new(),
            hot_bytes: 0,
            warm_bytes: 0,
            private: 0,
            spill,
            cow_materializations: 0,
            faults: 0,
            demotions: 0,
            evictions: 0,
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Context dimension `d`.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Read access to the shared COW prior.
    pub fn prior(&self) -> &RidgeEstimator {
        &self.prior
    }

    /// Interns `user`, returning its stable handle. A fresh user costs
    /// one slot entry (it aliases the prior — no model state).
    pub fn resolve(&mut self, user: UserId) -> ModelHandle {
        if let Some(&idx) = self.by_user.get(&user.0) {
            return ModelHandle(idx);
        }
        let idx = u32::try_from(self.slots.len()).expect("more than 2^32 users");
        self.slots.push(Slot {
            user: user.0,
            residency: Residency::Prior,
            last_access: 0,
            dirty: false,
        });
        self.by_user.insert(user.0, idx);
        ModelHandle(idx)
    }

    /// Looks up an already-interned user.
    pub fn lookup(&self, user: UserId) -> Option<ModelHandle> {
        self.by_user.get(&user.0).copied().map(ModelHandle)
    }

    /// Number of interned users.
    pub fn num_users(&self) -> usize {
        self.slots.len()
    }

    /// The user owning `handle`.
    pub fn user_of(&self, handle: ModelHandle) -> Option<UserId> {
        self.slots.get(handle.index()).map(|s| UserId(s.user))
    }

    fn check(&self, handle: ModelHandle) -> Result<usize, ModelsError> {
        let idx = handle.index();
        if idx >= self.slots.len() {
            return Err(ModelsError::UnknownHandle);
        }
        Ok(idx)
    }

    fn lru_remove(&mut self, idx: usize) {
        let key = (self.slots[idx].last_access, idx as u32);
        match self.slots[idx].residency {
            Residency::Hot(_) => {
                self.lru_hot.remove(&key);
            }
            Residency::Warm(_) => {
                self.lru_warm.remove(&key);
            }
            _ => {}
        }
    }

    fn lru_insert(&mut self, idx: usize) {
        let key = (self.slots[idx].last_access, idx as u32);
        match self.slots[idx].residency {
            Residency::Hot(_) => {
                self.lru_hot.insert(key);
            }
            Residency::Warm(_) => {
                self.lru_warm.insert(key);
            }
            _ => {}
        }
    }

    fn touch(&mut self, idx: usize, seq: u64) {
        self.lru_remove(idx);
        self.slots[idx].last_access = seq;
        self.lru_insert(idx);
    }

    /// Faults the exact state of a Warm/Spilled slot back to Hot.
    fn fault_in(&mut self, idx: usize) -> Result<(), ModelsError> {
        let user = self.slots[idx].user;
        let spill = self
            .spill
            .as_mut()
            .ok_or(ModelsError::Spill("no spill log configured"))?;
        let blob = spill.read(user)?.ok_or(ModelsError::Spill(
            "non-resident model missing from spill log",
        ))?;
        let est = Box::new(decode_exact(&blob)?);
        self.lru_remove(idx);
        if let Residency::Warm(q) = &self.slots[idx].residency {
            self.warm_bytes -= q.state_bytes();
        }
        self.hot_bytes += est.state_bytes();
        self.slots[idx].residency = Residency::Hot(est);
        self.slots[idx].dirty = false;
        self.lru_insert(idx);
        self.faults += 1;
        Ok(())
    }

    /// Borrows the estimator backing `handle` for *scoring* at round
    /// `seq`. A cold user reads through the shared prior (no
    /// materialization); a demoted user's exact state is faulted back
    /// in first.
    pub fn estimator_for_select(
        &mut self,
        handle: ModelHandle,
        seq: u64,
    ) -> Result<&mut RidgeEstimator, ModelsError> {
        let idx = self.check(handle)?;
        match self.slots[idx].residency {
            Residency::Prior => return Ok(&mut self.prior),
            Residency::Hot(_) => {}
            Residency::Warm(_) | Residency::Spilled => self.fault_in(idx)?,
        }
        self.touch(idx, seq);
        match &mut self.slots[idx].residency {
            Residency::Hot(est) => Ok(est),
            _ => unreachable!("fault_in leaves the slot hot"),
        }
    }

    /// Borrows the estimator backing `handle` for an *update* at round
    /// `seq`. A cold user is materialized copy-on-write (the prior is
    /// cloned into private hot state); the slot is marked dirty.
    pub fn estimator_for_observe(
        &mut self,
        handle: ModelHandle,
        seq: u64,
    ) -> Result<&mut RidgeEstimator, ModelsError> {
        let idx = self.check(handle)?;
        match self.slots[idx].residency {
            Residency::Prior => {
                let est = Box::new(self.prior.clone());
                self.hot_bytes += est.state_bytes();
                self.slots[idx].residency = Residency::Hot(est);
                self.private += 1;
                self.cow_materializations += 1;
            }
            Residency::Hot(_) => {}
            Residency::Warm(_) | Residency::Spilled => self.fault_in(idx)?,
        }
        self.slots[idx].dirty = true;
        self.touch(idx, seq);
        match &mut self.slots[idx].residency {
            Residency::Hot(est) => Ok(est),
            _ => unreachable!("observe access leaves the slot hot"),
        }
    }

    /// Approximate point estimate `xᵀθ̃` answered from the *resident*
    /// representation without faulting: quantized for warm slots, exact
    /// for hot, prior for cold. `None` for spilled slots — answering
    /// would cost a disk fault, which is the caller's call to make.
    pub fn approx_point_estimate(&self, handle: ModelHandle, x: &[f64]) -> Option<f64> {
        let slot = self.slots.get(handle.index())?;
        match &slot.residency {
            Residency::Prior => Some(
                x.iter()
                    .zip(self.prior.theta_hat_cached().as_slice())
                    .map(|(a, b)| a * b)
                    .sum(),
            ),
            Residency::Hot(est) => Some(
                x.iter()
                    .zip(est.theta_hat_cached().as_slice())
                    .map(|(a, b)| a * b)
                    .sum(),
            ),
            Residency::Warm(q) => Some(q.approx_point_estimate(x)),
            Residency::Spilled => None,
        }
    }

    fn demote_lru_hot(&mut self) -> Result<bool, ModelsError> {
        let Some(&(_, idx)) = self.lru_hot.iter().next() else {
            return Ok(false);
        };
        let idx = idx as usize;
        self.lru_remove(idx);
        let residency = std::mem::replace(&mut self.slots[idx].residency, Residency::Spilled);
        let Residency::Hot(est) = residency else {
            unreachable!("lru_hot only holds hot slots");
        };
        let user = self.slots[idx].user;
        let spill = self
            .spill
            .as_mut()
            .ok_or(ModelsError::Spill("no spill log configured"))?;
        if self.slots[idx].dirty || !spill.contains(user) {
            spill.append(user, &encode_exact(&est))?;
        }
        let quant = Box::new(QuantizedModel::quantize(&est));
        self.hot_bytes -= est.state_bytes();
        self.warm_bytes += quant.state_bytes();
        self.slots[idx].residency = Residency::Warm(quant);
        self.slots[idx].dirty = false;
        self.lru_insert(idx);
        self.demotions += 1;
        Ok(true)
    }

    fn evict_lru_warm(&mut self) -> Result<bool, ModelsError> {
        let Some(&(_, idx)) = self.lru_warm.iter().next() else {
            return Ok(false);
        };
        let idx = idx as usize;
        self.lru_remove(idx);
        let residency = std::mem::replace(&mut self.slots[idx].residency, Residency::Spilled);
        let Residency::Warm(q) = residency else {
            unreachable!("lru_warm only holds warm slots");
        };
        self.warm_bytes -= q.state_bytes();
        self.evictions += 1;
        Ok(true)
    }

    /// Enforces the memory budgets at round `seq`: demotes
    /// least-recently-accessed hot slots until the hot tier fits, then
    /// evicts least-recently-accessed warm slots until the warm tier
    /// fits. Deterministic: victim order is `(last_access, handle)`.
    pub fn enforce_budget(&mut self, _seq: u64) -> Result<(), ModelsError> {
        while self.hot_bytes > self.config.hot_budget_bytes {
            if !self.demote_lru_hot()? {
                break;
            }
        }
        while self.warm_bytes > self.config.warm_budget_bytes {
            if !self.evict_lru_warm()? {
                break;
            }
        }
        Ok(())
    }

    /// Flushes the spill log to disk.
    pub fn sync(&mut self) -> Result<(), ModelsError> {
        if let Some(spill) = &mut self.spill {
            spill.sync()?;
        }
        Ok(())
    }

    /// Resident bytes across tiers, prior included — the store's
    /// contribution to a policy's `state_bytes()`.
    pub fn resident_bytes(&self) -> usize {
        self.hot_bytes + self.warm_bytes + self.prior.state_bytes()
    }

    /// Occupancy and traffic snapshot.
    pub fn stats(&self) -> StoreStats {
        let hot = self.lru_hot.len();
        let warm = self.lru_warm.len();
        StoreStats {
            users: self.slots.len(),
            cold: self.slots.len() - self.private,
            hot,
            warm,
            spilled: self.private - hot - warm,
            hot_bytes: self.hot_bytes,
            warm_bytes: self.warm_bytes,
            cow_materializations: self.cow_materializations,
            faults: self.faults,
            demotions: self.demotions,
            evictions: self.evictions,
            spill_live_bytes: self.spill.as_ref().map_or(0, |s| s.live_bytes()),
            spill_file_bytes: self.spill.as_ref().map_or(0, |s| s.file_bytes()),
            spill_appends: self.spill.as_ref().map_or(0, |s| s.appends()),
            spill_compactions: self.spill.as_ref().map_or(0, |s| s.compactions()),
        }
    }

    /// Serialises the complete logical state — prior, every user's
    /// exact model bits (read back from the spill log for non-hot
    /// slots) and access stamps. **Residency-independent**: a budgeted
    /// store and an unbounded store that processed the same rounds
    /// produce byte-identical blobs.
    pub fn save_state(&self) -> Vec<u8> {
        let d = self.config.dim;
        let per_user = 8 + 8 + 1 + 4 + exact_blob_len(d);
        let mut out = Vec::with_capacity(64 + exact_blob_len(d) + self.slots.len() * per_user / 4);
        out.extend_from_slice(SAVE_MAGIC);
        out.extend_from_slice(&(d as u32).to_le_bytes());
        out.extend_from_slice(&self.config.lambda.to_le_bytes());
        let prior_blob = encode_exact(&self.prior);
        out.extend_from_slice(&(prior_blob.len() as u32).to_le_bytes());
        out.extend_from_slice(&prior_blob);
        out.extend_from_slice(&(self.slots.len() as u64).to_le_bytes());
        for slot in &self.slots {
            out.extend_from_slice(&slot.user.to_le_bytes());
            out.extend_from_slice(&slot.last_access.to_le_bytes());
            match &slot.residency {
                Residency::Prior => out.push(0),
                Residency::Hot(est) => {
                    out.push(1);
                    let blob = encode_exact(est);
                    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                    out.extend_from_slice(&blob);
                }
                Residency::Warm(_) | Residency::Spilled => {
                    out.push(1);
                    // Warm/spilled slots are never dirty: the spill log
                    // holds their authoritative exact bits.
                    let blob = self
                        .spill
                        .as_ref()
                        .and_then(|s| s.read(slot.user).ok().flatten())
                        .expect("non-resident model missing from spill log");
                    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                    out.extend_from_slice(&blob);
                }
            }
        }
        out
    }

    /// 64-bit FNV-1a digest of [`EstimatorStore::save_state`] — a cheap
    /// residency-independent fingerprint of the store's logical state.
    pub fn state_digest(&self) -> u64 {
        fnv1a(&self.save_state())
    }

    /// Restores the logical state saved by
    /// [`EstimatorStore::save_state`]. Every private model comes back
    /// *hot* (and dirty); the next [`EstimatorStore::enforce_budget`]
    /// re-demotes to fit. Any existing spill log content is superseded
    /// and cleared.
    pub fn restore_state(&mut self, blob: &[u8]) -> Result<(), ModelsError> {
        let mut buf = blob;
        let magic = take(&mut buf, 8)?;
        if magic != SAVE_MAGIC {
            return Err(ModelsError::Codec("not an estimator store snapshot"));
        }
        let dim = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        if dim != self.config.dim {
            return Err(ModelsError::Config("snapshot dimension mismatch"));
        }
        let lambda = f64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
        if lambda.to_bits() != self.config.lambda.to_bits() {
            return Err(ModelsError::Config("snapshot lambda mismatch"));
        }
        let prior_len = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let prior = decode_exact(take(&mut buf, prior_len)?)?;
        let count = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap()) as usize;

        let mut slots = Vec::with_capacity(count);
        let mut by_user = HashMap::with_capacity(count);
        let mut lru_hot = BTreeSet::new();
        let mut hot_bytes = 0usize;
        let mut private = 0usize;
        for idx in 0..count {
            let user = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
            let last_access = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
            let tag = take(&mut buf, 1)?[0];
            let residency = match tag {
                0 => Residency::Prior,
                1 => {
                    let len = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
                    let est = Box::new(decode_exact(take(&mut buf, len)?)?);
                    hot_bytes += est.state_bytes();
                    private += 1;
                    lru_hot.insert((last_access, idx as u32));
                    Residency::Hot(est)
                }
                _ => return Err(ModelsError::Codec("unknown slot tag")),
            };
            if by_user.insert(user, idx as u32).is_some() {
                return Err(ModelsError::Codec("duplicate user in snapshot"));
            }
            slots.push(Slot {
                user,
                residency,
                last_access,
                dirty: tag == 1,
            });
        }
        if !buf.is_empty() {
            return Err(ModelsError::Codec("trailing bytes after store snapshot"));
        }
        if let Some(spill) = &mut self.spill {
            spill.clear()?;
        }
        self.prior = prior;
        self.slots = slots;
        self.by_user = by_user;
        self.lru_hot = lru_hot;
        self.lru_warm = BTreeSet::new();
        self.hot_bytes = hot_bytes;
        self.warm_bytes = 0;
        self.private = private;
        Ok(())
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], ModelsError> {
    if buf.len() < n {
        return Err(ModelsError::Codec("store snapshot is truncated"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// 64-bit FNV-1a.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-models-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn context(user: u64, t: u64, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|i| {
                let z = fasea_stats::crn::mix64(user ^ t.wrapping_mul(31) ^ i as u64);
                (z % 1000) as f64 / 1000.0 - 0.5
            })
            .collect()
    }

    /// Drives `rounds` rounds of a fixed access trace against `store`.
    fn drive(store: &mut EstimatorStore, users: u64, rounds: u64) {
        let dim = store.dim();
        for t in 0..rounds {
            let user = fasea_stats::crn::mix64(t ^ 0xFACE) % users;
            let h = store.resolve(UserId(user));
            let x = context(user, t, dim);
            // Select: read a width through the current inverse.
            let _ = store
                .estimator_for_select(h, t)
                .unwrap()
                .confidence_width(&x);
            let r = (fasea_stats::crn::mix64(user ^ t) % 2) as f64;
            store
                .estimator_for_observe(h, t)
                .unwrap()
                .observe(&x, r)
                .unwrap();
            store.enforce_budget(t).unwrap();
        }
    }

    #[test]
    fn cold_users_cost_zero_private_bytes() {
        let mut store = EstimatorStore::new(StoreConfig::unbounded(4, 1.0)).unwrap();
        for u in 0..1000 {
            let h = store.resolve(UserId(u));
            let _ = store
                .estimator_for_select(h, u)
                .unwrap()
                .confidence_width(&[0.1, 0.2, 0.3, 0.4]);
        }
        let s = store.stats();
        assert_eq!(s.users, 1000);
        assert_eq!(s.cold, 1000);
        assert_eq!(s.hot_bytes, 0);
        assert_eq!(s.cow_materializations, 0);
        // First observe materializes exactly one private model.
        let h = store.lookup(UserId(7)).unwrap();
        store
            .estimator_for_observe(h, 1000)
            .unwrap()
            .observe(&[0.1, 0.2, 0.3, 0.4], 1.0)
            .unwrap();
        let s = store.stats();
        assert_eq!(s.cow_materializations, 1);
        assert_eq!(s.hot, 1);
        assert_eq!(s.cold, 999);
        assert_eq!(s.hot_bytes, store.prior().state_bytes());
    }

    #[test]
    fn resolve_is_idempotent_and_handles_are_stable() {
        let mut store = EstimatorStore::new(StoreConfig::unbounded(2, 1.0)).unwrap();
        let a = store.resolve(UserId(99));
        let b = store.resolve(UserId(11));
        assert_eq!(store.resolve(UserId(99)), a);
        assert_ne!(a, b);
        assert_eq!(store.user_of(a), Some(UserId(99)));
        assert_eq!(store.lookup(UserId(11)), Some(b));
        assert_eq!(store.lookup(UserId(12)), None);
        assert!(store
            .estimator_for_select(ModelHandle(77), 0)
            .is_err_and(|e| matches!(e, ModelsError::UnknownHandle)));
    }

    #[test]
    fn bounded_budget_without_spill_dir_is_rejected() {
        let cfg = StoreConfig {
            hot_budget_bytes: 4096,
            ..StoreConfig::unbounded(3, 1.0)
        };
        assert!(matches!(
            EstimatorStore::new(cfg),
            Err(ModelsError::Config(_))
        ));
    }

    #[test]
    fn budget_pressure_demotes_evicts_and_faults() {
        let dir = temp_dir("pressure");
        let one = RidgeEstimator::new(4, 1.0).state_bytes();
        // Room for ~3 hot models and ~4 warm models.
        let cfg = StoreConfig::bounded(4, 1.0, 3 * one, 400, &dir);
        let mut store = EstimatorStore::new(cfg).unwrap();
        drive(&mut store, 12, 400);
        let s = store.stats();
        assert!(s.hot_bytes <= 3 * one);
        assert!(s.demotions > 0, "no demotions under pressure: {s:?}");
        assert!(s.evictions > 0, "no evictions under pressure: {s:?}");
        assert!(s.faults > 0, "no fault-ins under pressure: {s:?}");
        assert_eq!(s.cold + s.hot + s.warm + s.spilled, s.users);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_store_is_bit_equal_to_unbounded() {
        let dir = temp_dir("parity");
        let one = RidgeEstimator::new(3, 0.5).state_bytes();
        let mut tiny = EstimatorStore::new(StoreConfig::bounded(3, 0.5, one, one, &dir)).unwrap();
        let mut unbounded = EstimatorStore::new(StoreConfig::unbounded(3, 0.5)).unwrap();
        drive(&mut tiny, 9, 300);
        drive(&mut unbounded, 9, 300);
        assert!(tiny.stats().demotions > 0);
        // Logical state identical down to the byte, residency aside.
        assert_eq!(tiny.save_state(), unbounded.save_state());
        assert_eq!(tiny.state_digest(), unbounded.state_digest());
        // And live reads agree bit-for-bit.
        for u in 0..9 {
            let (ht, hu) = (
                tiny.lookup(UserId(u)).unwrap(),
                unbounded.lookup(UserId(u)).unwrap(),
            );
            let x = context(u, 7777, 3);
            let a = tiny
                .estimator_for_select(ht, 10_000)
                .unwrap()
                .confidence_width(&x);
            let b = unbounded
                .estimator_for_select(hu, 10_000)
                .unwrap()
                .confidence_width(&x);
            assert_eq!(a.to_bits(), b.to_bits(), "user {u} width bits differ");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_restore_round_trip_preserves_logical_state() {
        let dir = temp_dir("snap");
        let one = RidgeEstimator::new(3, 1.0).state_bytes();
        let mut store =
            EstimatorStore::new(StoreConfig::bounded(3, 1.0, 2 * one, 1024, &dir)).unwrap();
        drive(&mut store, 8, 200);
        let blob = store.save_state();
        let digest = store.state_digest();

        let dir2 = temp_dir("snap2");
        let mut fresh =
            EstimatorStore::new(StoreConfig::bounded(3, 1.0, 2 * one, 1024, &dir2)).unwrap();
        fresh.restore_state(&blob).unwrap();
        assert_eq!(fresh.state_digest(), digest);
        assert_eq!(fresh.num_users(), store.num_users());
        // Continuing in lockstep keeps the two stores bit-equal.
        drive(&mut store, 8, 50);
        drive(&mut fresh, 8, 50);
        assert_eq!(fresh.state_digest(), store.state_digest());
        // Garbage is rejected.
        assert!(fresh.restore_state(b"junk").is_err());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn approx_reads_never_fault() {
        let dir = temp_dir("approx");
        let one = RidgeEstimator::new(3, 1.0).state_bytes();
        let mut store = EstimatorStore::new(StoreConfig::bounded(3, 1.0, one, 700, &dir)).unwrap();
        drive(&mut store, 6, 120);
        let faults_before = store.stats().faults;
        let mut answered = 0;
        for u in 0..6 {
            let h = store.lookup(UserId(u)).unwrap();
            if let Some(p) = store.approx_point_estimate(h, &[0.2, -0.1, 0.4]) {
                assert!(p.is_finite());
                answered += 1;
            }
        }
        assert!(answered > 0, "warm/hot slots must answer approximate reads");
        assert_eq!(store.stats().faults, faults_before, "approx reads faulted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_redemotion_skips_spill_append() {
        let dir = temp_dir("clean");
        let one = RidgeEstimator::new(2, 1.0).state_bytes();
        let mut store =
            EstimatorStore::new(StoreConfig::bounded(2, 1.0, one, usize::MAX, &dir)).unwrap();
        // Two users ping-ponging through a one-model hot tier.
        for u in [1u64, 2] {
            let h = store.resolve(UserId(u));
            store
                .estimator_for_observe(h, u)
                .unwrap()
                .observe(&[0.1, 0.2], 1.0)
                .unwrap();
            store.enforce_budget(u).unwrap();
        }
        // Select-only traffic faults models in clean; once both users'
        // latest bits are on disk, re-demoting them must not re-append
        // identical state. The first two select rounds may still spill
        // the not-yet-persisted hot resident; after that, steady state.
        let mut steady_appends = None;
        for t in 10..30u64 {
            let h = store.resolve(UserId(1 + (t % 2)));
            let _ = store
                .estimator_for_select(h, t)
                .unwrap()
                .confidence_width(&[0.3, 0.4]);
            store.enforce_budget(t).unwrap();
            if t == 12 {
                steady_appends = Some(store.stats().spill_appends);
            }
        }
        assert_eq!(
            Some(store.stats().spill_appends),
            steady_appends,
            "clean fault-ins were re-spilled"
        );
        assert!(store.stats().faults > 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_survives_reopen_via_same_config() {
        let dir = temp_dir("reopen");
        let one = RidgeEstimator::new(2, 1.0).state_bytes();
        let cfg = StoreConfig::bounded(2, 1.0, one, one, &dir);
        let digest;
        {
            let mut store = EstimatorStore::new(cfg.clone()).unwrap();
            drive(&mut store, 5, 80);
            store.sync().unwrap();
            digest = store.state_digest();
            assert!(store.stats().demotions > 0);
        }
        // A new store over the same directory sees the spilled frames
        // (the slot map is rebuilt from a snapshot in real use; here we
        // check the log itself survives with its fingerprint).
        let store = EstimatorStore::new(cfg).unwrap();
        assert!(store.stats().spill_live_bytes > 0);
        let _ = digest;
        let _ = std::fs::remove_dir_all(&dir);
    }
}

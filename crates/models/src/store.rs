//! The estimator store: millions of per-user models behind one API.
//!
//! ## Residency tiers
//!
//! ```text
//! cold (COW prior)   0 private bytes   reads alias the shared prior
//!   │ first observe (copy-on-write clone)
//! hot                exact f64         RidgeEstimator resident in RAM
//!   │ hot budget exceeded → demote (exact bits appended to spill log)
//! warm               quantized i16     approximate copy in RAM,
//!   │ warm budget exceeded → evict     exact bits on disk
//! spilled            0 resident bytes  exact bits on disk only
//! ```
//!
//! Any access that can influence an arrangement or an update
//! ([`EstimatorStore::estimator_for_select`] /
//! [`EstimatorStore::estimator_for_observe`]) faults the exact state
//! back to hot; the quantized copy only serves approximate reads
//! ([`EstimatorStore::approx_point_estimate`]). Because the spill codec
//! is bit-preserving ([`crate::codec`]), a model that travelled
//! hot → warm → spilled → hot is indistinguishable from one that never
//! left memory — the foundation of the store's determinism contract.
//!
//! ## Eviction determinism
//!
//! Demotion/eviction order is the `BTreeSet<(last_access_seq, handle)>`
//! order: least-recently-accessed first, allocation-order handle as the
//! tiebreak. Both keys are pure functions of the round sequence, so two
//! runs with identical access sequences demote identical victims — no
//! hash-map iteration order, no wall-clock, no pointer values.
//! Demotions happen in *runs*: one sweep pops every over-budget victim,
//! stages their spill records into one reused write buffer, and commits
//! them as a single batch — steady-state demotion is allocation-free.
//!
//! ## Cohort prior chain
//!
//! With [`StoreConfig::with_cohorts`], priors form a three-level
//! copy-on-write chain **global prior → cohort prior → user delta**.
//! Users hash deterministically into cohorts
//! (`mix64(salt ^ user) % cohorts`); each user's first `fold_obs`
//! observations *fold* into the shared per-cohort estimator while the
//! user stays cold, and selects for cold users read through their
//! (materialized) cohort prior instead of the global one
//! (`cohort_hits`). Past the fold threshold the user copy-on-writes
//! from the cohort prior. With `fold_obs = 0` cohort priors never train
//! and the store is bit-equal to a flat-prior store.
//!
//! ## Sketched state mode
//!
//! With [`StoreConfig::with_sketched`], per-user durable state is a
//! rank-`r` frequent-directions sketch of the user's Gram update rows
//! plus the exact `b` vector — `O(r·d)` bytes instead of `O(d²)`. Hot
//! slots still carry an exact estimator (plus the live sketch); demoted
//! slots keep only a tiny quantized `θ̂`/`b` copy
//! ([`crate::quant::SketchWarm`]) and promotion *reconstructs* the Gram
//! against the current cohort (or global) prior. Reconstruction is
//! lossy in `Y` but bit-exact in the sketch rows and `b`, so the
//! sketched tier is gated by regret parity rather than bit equality;
//! updates must go through [`EstimatorStore::observe`] so the sketch
//! sees every context row.

use crate::codec::{
    decode_exact, decode_sketch, encode_exact, encode_exact_into, encode_sketch_into,
    exact_blob_len, SketchRecord,
};
use crate::quant::{QuantizedModel, SketchWarm};
use crate::spill::{SpillLog, KIND_COHORT, KIND_USER_EXACT, KIND_USER_SKETCH};
use crate::ModelsError;
use fasea_bandit::RidgeEstimator;
use fasea_linalg::{Cholesky, FrequentDirections};
use fasea_stats::crn::mix64;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;

/// Cap on recycled warm-tier code buffers kept for reuse.
const QUANT_POOL_CAP: usize = 64;

/// A platform user identity (EBSN member id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u64);

/// A stable, dense handle to one user's model. Handles are allocated in
/// [`EstimatorStore::resolve`] order and never invalidated — residency
/// changes underneath them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelHandle(u32);

impl ModelHandle {
    /// Dense slot index of this handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-user durable state representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateMode {
    /// Full `O(d²)` exact state; bit-preserving spill round trips.
    Exact,
    /// Rank-`r` frequent-directions sketch + exact `b`, `O(r·d)` bytes;
    /// promotion reconstructs against the prior chain.
    Sketched,
}

/// Configuration of an [`EstimatorStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Context dimension `d` of every model.
    pub dim: usize,
    /// Ridge strength λ of every model (and of the prior).
    pub lambda: f64,
    /// Byte budget for the hot (exact f64) tier. `usize::MAX` disables
    /// demotion.
    pub hot_budget_bytes: usize,
    /// Byte budget for the warm (quantized) tier. `usize::MAX` disables
    /// eviction to the spilled tier.
    pub warm_budget_bytes: usize,
    /// Directory for the spill log. Required whenever either budget is
    /// bounded — a demoted model's exact bits must live somewhere.
    pub spill_dir: Option<PathBuf>,
    /// Instance fingerprint stamped into the spill log header.
    pub fingerprint: u64,
    /// Number of cohorts in the prior chain; `0` disables cohorts.
    pub cohorts: usize,
    /// Salt for the deterministic user → cohort hash.
    pub cohort_salt: u64,
    /// Observations folded into the cohort prior before a user
    /// copy-on-write materializes. `0` means cohort priors never train.
    pub cohort_fold_obs: u64,
    /// Per-user durable state representation.
    pub state: StateMode,
    /// Sketch rank `r` (used only in [`StateMode::Sketched`]).
    pub sketch_rank: usize,
}

impl StoreConfig {
    /// Unbounded store: every materialized model stays hot forever.
    pub fn unbounded(dim: usize, lambda: f64) -> Self {
        StoreConfig {
            dim,
            lambda,
            hot_budget_bytes: usize::MAX,
            warm_budget_bytes: usize::MAX,
            spill_dir: None,
            fingerprint: mix64(dim as u64 ^ lambda.to_bits()),
            cohorts: 0,
            cohort_salt: 0,
            cohort_fold_obs: 0,
            state: StateMode::Exact,
            sketch_rank: 0,
        }
    }

    /// Budgeted store spilling through `dir`.
    pub fn bounded(
        dim: usize,
        lambda: f64,
        hot_budget_bytes: usize,
        warm_budget_bytes: usize,
        dir: impl Into<PathBuf>,
    ) -> Self {
        StoreConfig {
            hot_budget_bytes,
            warm_budget_bytes,
            spill_dir: Some(dir.into()),
            ..StoreConfig::unbounded(dim, lambda)
        }
    }

    /// Enables the cohort prior chain: `cohorts` deterministic cohorts
    /// under `salt`, folding each user's first `fold_obs` observations
    /// into their cohort prior before private materialization. The
    /// spill-log fingerprint is perturbed so cohort and flat stores
    /// never share a spill directory.
    pub fn with_cohorts(mut self, cohorts: usize, salt: u64, fold_obs: u64) -> Self {
        self.cohorts = cohorts;
        self.cohort_salt = salt;
        self.cohort_fold_obs = fold_obs;
        if cohorts > 0 {
            self.fingerprint = mix64(
                self.fingerprint ^ mix64(0x00C0_0947 ^ cohorts as u64) ^ mix64(salt ^ fold_obs),
            );
        }
        self
    }

    /// Switches per-user durable state to the rank-`rank`
    /// frequent-directions sketch. Fingerprint-perturbing: sketched and
    /// exact stores never share a spill directory.
    pub fn with_sketched(mut self, rank: usize) -> Self {
        self.state = StateMode::Sketched;
        self.sketch_rank = rank;
        self.fingerprint = mix64(self.fingerprint ^ mix64(0x005C_E7C4 ^ rank as u64));
        self
    }
}

#[derive(Debug)]
enum Residency {
    /// Cold: aliases the shared prior chain; zero private bytes.
    Prior,
    /// Hot: exact f64 state resident.
    Hot(Box<RidgeEstimator>),
    /// Warm: quantized copy resident, exact bits in the spill log.
    Warm(Box<QuantizedModel>),
    /// Warm in sketched mode: quantized `θ̂`/`b` resident, sketch
    /// record in the spill log.
    WarmSketch(Box<SketchWarm>),
    /// Spilled: durable bits in the spill log only.
    Spilled,
}

#[derive(Debug)]
struct Slot {
    user: u64,
    residency: Residency,
    last_access: u64,
    /// Hot state newer than the spill log's copy (re-demotion of a
    /// clean fault-in skips the redundant append).
    dirty: bool,
    /// Observations folded into the cohort prior while cold.
    folds: u64,
    /// Live frequent-directions sketch (sketched mode, hot slots only).
    sketch: Option<Box<FrequentDirections>>,
}

/// A point-in-time snapshot of store occupancy and traffic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Users interned via [`EstimatorStore::resolve`].
    pub users: usize,
    /// Cold users still aliasing the COW prior.
    pub cold: usize,
    /// Models resident as exact f64 state.
    pub hot: usize,
    /// Models resident as quantized state (exact bits on disk).
    pub warm: usize,
    /// Models with no resident state (exact bits on disk).
    pub spilled: usize,
    /// Bytes of hot-tier model state.
    pub hot_bytes: usize,
    /// Bytes of warm-tier model state.
    pub warm_bytes: usize,
    /// Copy-on-write materializations (first observe per user).
    pub cow_materializations: u64,
    /// Exact-state fault-ins from the spill log.
    pub faults: u64,
    /// Hot → warm demotions.
    pub demotions: u64,
    /// Warm → spilled evictions.
    pub evictions: u64,
    /// Live bytes in the spill log.
    pub spill_live_bytes: u64,
    /// Total spill log file size (dead frames included).
    pub spill_file_bytes: u64,
    /// Appends to the spill log since open.
    pub spill_appends: u64,
    /// Spill log compactions since open.
    pub spill_compactions: u64,
    /// Cohort priors currently materialized.
    pub cohorts_materialized: usize,
    /// Bytes of materialized cohort priors.
    pub cohort_bytes: usize,
    /// Selects served by a cohort prior instead of the global prior.
    pub cohort_hits: u64,
    /// Observations folded into cohort priors (users still cold).
    pub cohort_folds: u64,
    /// Sketch-record promotions (Gram reconstructions) from the spill
    /// log.
    pub sketch_promotions: u64,
}

/// Millions of per-user [`RidgeEstimator`]s behind a stable
/// `UserId -> ModelHandle` API — COW prior, quantized residency,
/// WAL-framed spill. See the module docs for the tier lifecycle.
#[derive(Debug)]
pub struct EstimatorStore {
    config: StoreConfig,
    prior: RidgeEstimator,
    slots: Vec<Slot>,
    by_user: HashMap<u64, u32>,
    /// Hot slots, least-recently-accessed first.
    lru_hot: BTreeSet<(u64, u32)>,
    /// Warm slots, least-recently-accessed first.
    lru_warm: BTreeSet<(u64, u32)>,
    hot_bytes: usize,
    warm_bytes: usize,
    /// Slots that have left the Prior tier (hot + warm + spilled).
    private: usize,
    spill: Option<SpillLog>,
    /// Materialized per-cohort priors (index = cohort id).
    cohort_priors: Vec<Option<Box<RidgeEstimator>>>,
    /// Cohort priors trained since the last [`EstimatorStore::sync`].
    cohort_dirty: Vec<bool>,
    cohort_bytes: usize,
    /// Recycled warm-tier models: demotion re-quantizes into these
    /// instead of allocating fresh code buffers. The `Box` is the
    /// recycled allocation — `Residency::Warm` stores boxes, so the
    /// pool must hand back the exact pointee that moves into the slot.
    #[allow(clippy::vec_box)]
    quant_pool: Vec<Box<QuantizedModel>>,
    /// Reused victim buffer for batched demotion.
    demote_buf: Vec<(u32, Box<RidgeEstimator>, Option<Box<FrequentDirections>>)>,
    /// Reused spill-record encode buffer.
    encode_buf: Vec<u8>,
    cow_materializations: u64,
    faults: u64,
    demotions: u64,
    evictions: u64,
    cohort_hits: u64,
    cohort_folds: u64,
    sketch_promotions: u64,
}

const SAVE_MAGIC: &[u8; 8] = b"FASEAMS2";

impl EstimatorStore {
    /// Creates a store whose COW prior is the cold-start ridge state
    /// (`Y = λI`, `b = 0`).
    pub fn new(config: StoreConfig) -> Result<Self, ModelsError> {
        let prior = RidgeEstimator::new(config.dim, config.lambda);
        Self::with_prior(config, prior)
    }

    /// Creates a store with a pre-trained shared prior — e.g. a global
    /// estimator fitted on pooled history. Fresh users score through it
    /// at zero marginal memory until their first observation.
    pub fn with_prior(config: StoreConfig, prior: RidgeEstimator) -> Result<Self, ModelsError> {
        if config.dim == 0 {
            return Err(ModelsError::Config("dim must be positive"));
        }
        if !(config.lambda.is_finite() && config.lambda > 0.0) {
            return Err(ModelsError::Config("lambda must be finite and positive"));
        }
        if prior.dim() != config.dim {
            return Err(ModelsError::Config("prior dimension mismatch"));
        }
        let bounded =
            config.hot_budget_bytes != usize::MAX || config.warm_budget_bytes != usize::MAX;
        if bounded && config.spill_dir.is_none() {
            return Err(ModelsError::Config(
                "bounded budgets require a spill directory (exact bits must live somewhere)",
            ));
        }
        if config.cohorts > u32::MAX as usize {
            return Err(ModelsError::Config("cohort count exceeds u32"));
        }
        if config.state == StateMode::Sketched && config.sketch_rank == 0 {
            return Err(ModelsError::Config(
                "sketched state mode requires a positive sketch rank",
            ));
        }
        let spill = match &config.spill_dir {
            Some(dir) => Some(SpillLog::open(dir, config.fingerprint)?),
            None => None,
        };
        // Rehydrate cohort priors persisted by a previous run's sync()
        // — crash-restart continuity for the cohort chain even without
        // a snapshot (per-user fold counters live only in snapshots).
        let mut cohort_priors: Vec<Option<Box<RidgeEstimator>>> =
            (0..config.cohorts).map(|_| None).collect();
        let mut cohort_bytes = 0usize;
        if let Some(sp) = &spill {
            if config.cohorts > 0 {
                for key in sp.live_keys_sorted(KIND_COHORT) {
                    let idx = usize::try_from(key)
                        .ok()
                        .filter(|&i| i < config.cohorts)
                        .ok_or(ModelsError::Spill("cohort record out of range"))?;
                    let blob = sp
                        .read(KIND_COHORT, key)?
                        .ok_or(ModelsError::Spill("listed cohort record vanished"))?;
                    let est = Box::new(decode_exact(&blob)?);
                    if est.dim() != config.dim {
                        return Err(ModelsError::Config("cohort record dimension mismatch"));
                    }
                    cohort_bytes += est.state_bytes();
                    cohort_priors[idx] = Some(est);
                }
            }
        }
        let cohort_dirty = vec![false; config.cohorts];
        Ok(EstimatorStore {
            config,
            prior,
            slots: Vec::new(),
            by_user: HashMap::new(),
            lru_hot: BTreeSet::new(),
            lru_warm: BTreeSet::new(),
            hot_bytes: 0,
            warm_bytes: 0,
            private: 0,
            spill,
            cohort_priors,
            cohort_dirty,
            cohort_bytes,
            quant_pool: Vec::new(),
            demote_buf: Vec::new(),
            encode_buf: Vec::new(),
            cow_materializations: 0,
            faults: 0,
            demotions: 0,
            evictions: 0,
            cohort_hits: 0,
            cohort_folds: 0,
            sketch_promotions: 0,
        })
    }

    /// The cohort of `user` under this store's salt.
    pub fn cohort_of(&self, user: u64) -> usize {
        debug_assert!(self.config.cohorts > 0);
        (mix64(self.config.cohort_salt ^ user) % self.config.cohorts as u64) as usize
    }

    /// The prior a cold `user` reads through — their materialized
    /// cohort prior if the chain is enabled and trained, the global
    /// prior otherwise.
    fn base_prior_for(&self, user: u64) -> &RidgeEstimator {
        if self.config.cohorts > 0 {
            if let Some(cp) = &self.cohort_priors[self.cohort_of(user)] {
                return cp;
            }
        }
        &self.prior
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Context dimension `d`.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Read access to the shared COW prior.
    pub fn prior(&self) -> &RidgeEstimator {
        &self.prior
    }

    /// Interns `user`, returning its stable handle. A fresh user costs
    /// one slot entry (it aliases the prior — no model state).
    pub fn resolve(&mut self, user: UserId) -> ModelHandle {
        if let Some(&idx) = self.by_user.get(&user.0) {
            return ModelHandle(idx);
        }
        let idx = u32::try_from(self.slots.len()).expect("more than 2^32 users");
        self.slots.push(Slot {
            user: user.0,
            residency: Residency::Prior,
            last_access: 0,
            dirty: false,
            folds: 0,
            sketch: None,
        });
        self.by_user.insert(user.0, idx);
        ModelHandle(idx)
    }

    /// Looks up an already-interned user.
    pub fn lookup(&self, user: UserId) -> Option<ModelHandle> {
        self.by_user.get(&user.0).copied().map(ModelHandle)
    }

    /// Number of interned users.
    pub fn num_users(&self) -> usize {
        self.slots.len()
    }

    /// The user owning `handle`.
    pub fn user_of(&self, handle: ModelHandle) -> Option<UserId> {
        self.slots.get(handle.index()).map(|s| UserId(s.user))
    }

    fn check(&self, handle: ModelHandle) -> Result<usize, ModelsError> {
        let idx = handle.index();
        if idx >= self.slots.len() {
            return Err(ModelsError::UnknownHandle);
        }
        Ok(idx)
    }

    fn lru_remove(&mut self, idx: usize) {
        let key = (self.slots[idx].last_access, idx as u32);
        match self.slots[idx].residency {
            Residency::Hot(_) => {
                self.lru_hot.remove(&key);
            }
            Residency::Warm(_) | Residency::WarmSketch(_) => {
                self.lru_warm.remove(&key);
            }
            _ => {}
        }
    }

    fn lru_insert(&mut self, idx: usize) {
        let key = (self.slots[idx].last_access, idx as u32);
        match self.slots[idx].residency {
            Residency::Hot(_) => {
                self.lru_hot.insert(key);
            }
            Residency::Warm(_) | Residency::WarmSketch(_) => {
                self.lru_warm.insert(key);
            }
            _ => {}
        }
    }

    fn touch(&mut self, idx: usize, seq: u64) {
        self.lru_remove(idx);
        self.slots[idx].last_access = seq;
        self.lru_insert(idx);
    }

    /// The spill record kind private user state travels as.
    fn user_kind(&self) -> u8 {
        match self.config.state {
            StateMode::Exact => KIND_USER_EXACT,
            StateMode::Sketched => KIND_USER_SKETCH,
        }
    }

    /// Rebuilds a hot estimator from a sketch record: Gram = current
    /// base prior Gram + `BᵀB`, `θ̂ = Y⁻¹ b`. Lossy in `Y` (the base
    /// prior may have trained since demotion — cohort learning flows
    /// into promoted users), bit-exact in the sketch rows and `b`.
    fn reconstruct_from_sketch(
        &self,
        rec: &SketchRecord,
        user: u64,
    ) -> Result<Box<RidgeEstimator>, ModelsError> {
        if rec.sketch.dim() != self.config.dim {
            return Err(ModelsError::Codec("sketch record dimension mismatch"));
        }
        let mut y = self.base_prior_for(user).gram_matrix().clone();
        rec.sketch.add_gram_to(&mut y);
        let chol = Cholesky::factor(&y).map_err(ModelsError::Linalg)?;
        let y_inv = chol.inverse();
        let theta = chol.solve(&rec.b);
        RidgeEstimator::from_exact_parts(
            rec.lambda,
            y,
            y_inv,
            rec.b.clone(),
            theta,
            false,
            rec.observations,
            rec.recomputes,
        )
        .map(Box::new)
        .map_err(ModelsError::Linalg)
    }

    /// Faults the durable state of a Warm/Spilled slot back to Hot.
    fn fault_in(&mut self, idx: usize) -> Result<(), ModelsError> {
        let user = self.slots[idx].user;
        let kind = self.user_kind();
        let spill = self
            .spill
            .as_mut()
            .ok_or(ModelsError::Spill("no spill log configured"))?;
        let blob = spill.read(kind, user)?.ok_or(ModelsError::Spill(
            "non-resident model missing from spill log",
        ))?;
        self.lru_remove(idx);
        match std::mem::replace(&mut self.slots[idx].residency, Residency::Spilled) {
            Residency::Warm(q) => {
                self.warm_bytes -= q.state_bytes();
                if self.quant_pool.len() < QUANT_POOL_CAP {
                    self.quant_pool.push(q);
                }
            }
            Residency::WarmSketch(w) => {
                self.warm_bytes -= w.state_bytes();
            }
            Residency::Spilled => {}
            _ => unreachable!("fault_in is only called on non-hot private slots"),
        }
        let est = match self.config.state {
            StateMode::Exact => Box::new(decode_exact(&blob)?),
            StateMode::Sketched => {
                let rec = decode_sketch(&blob)?;
                let est = self.reconstruct_from_sketch(&rec, user)?;
                self.slots[idx].sketch = Some(Box::new(rec.sketch));
                self.sketch_promotions += 1;
                est
            }
        };
        self.hot_bytes += est.state_bytes()
            + self.slots[idx]
                .sketch
                .as_ref()
                .map_or(0, |s| s.state_bytes());
        self.slots[idx].residency = Residency::Hot(est);
        self.slots[idx].dirty = false;
        self.lru_insert(idx);
        self.faults += 1;
        Ok(())
    }

    /// Borrows the estimator backing `handle` for *scoring* at round
    /// `seq`. A cold user reads through the shared prior (no
    /// materialization); a demoted user's exact state is faulted back
    /// in first.
    pub fn estimator_for_select(
        &mut self,
        handle: ModelHandle,
        seq: u64,
    ) -> Result<&mut RidgeEstimator, ModelsError> {
        let idx = self.check(handle)?;
        match self.slots[idx].residency {
            Residency::Prior => {
                if self.config.cohorts > 0 {
                    let c = self.cohort_of(self.slots[idx].user);
                    if self.cohort_priors[c].is_some() {
                        self.cohort_hits += 1;
                        return Ok(self.cohort_priors[c].as_mut().unwrap());
                    }
                }
                return Ok(&mut self.prior);
            }
            Residency::Hot(_) => {}
            Residency::Warm(_) | Residency::WarmSketch(_) | Residency::Spilled => {
                self.fault_in(idx)?
            }
        }
        self.touch(idx, seq);
        match &mut self.slots[idx].residency {
            Residency::Hot(est) => Ok(est),
            _ => unreachable!("fault_in leaves the slot hot"),
        }
    }

    /// Makes `handle`'s slot hot and dirty for an update: materializes
    /// a cold user copy-on-write from its prior chain (cohort prior if
    /// trained, global prior otherwise), faults a demoted user back in.
    fn promote_for_observe(&mut self, idx: usize, seq: u64) -> Result<(), ModelsError> {
        match self.slots[idx].residency {
            Residency::Prior => {
                let est = Box::new(self.base_prior_for(self.slots[idx].user).clone());
                let mut added = est.state_bytes();
                if self.config.state == StateMode::Sketched {
                    let sk = Box::new(FrequentDirections::new(
                        self.config.sketch_rank,
                        self.config.dim,
                    ));
                    added += sk.state_bytes();
                    self.slots[idx].sketch = Some(sk);
                }
                self.hot_bytes += added;
                self.slots[idx].residency = Residency::Hot(est);
                self.private += 1;
                self.cow_materializations += 1;
            }
            Residency::Hot(_) => {}
            Residency::Warm(_) | Residency::WarmSketch(_) | Residency::Spilled => {
                self.fault_in(idx)?
            }
        }
        self.slots[idx].dirty = true;
        self.touch(idx, seq);
        Ok(())
    }

    /// Borrows the estimator backing `handle` for an *update* at round
    /// `seq`. A cold user is materialized copy-on-write (its prior
    /// chain is cloned into private hot state); the slot is marked
    /// dirty. Unavailable in sketched mode — updates must flow through
    /// [`EstimatorStore::observe`] so the sketch sees every context
    /// row. Note this path never folds into cohort priors; use
    /// [`EstimatorStore::observe`] for the full chain behaviour.
    pub fn estimator_for_observe(
        &mut self,
        handle: ModelHandle,
        seq: u64,
    ) -> Result<&mut RidgeEstimator, ModelsError> {
        if self.config.state == StateMode::Sketched {
            return Err(ModelsError::Config(
                "sketched state mode: use EstimatorStore::observe so the sketch sees every row",
            ));
        }
        let idx = self.check(handle)?;
        self.promote_for_observe(idx, seq)?;
        match &mut self.slots[idx].residency {
            Residency::Hot(est) => Ok(est),
            _ => unreachable!("observe access leaves the slot hot"),
        }
    }

    /// Applies one observation `(x, r)` to `handle` at round `seq` —
    /// the store-mediated update path, and the only one that drives the
    /// full prior chain:
    ///
    /// * a cold user's first [`StoreConfig::cohort_fold_obs`]
    ///   observations *fold* into their cohort prior (the user stays
    ///   cold at zero private bytes);
    /// * past the threshold the user materializes copy-on-write and the
    ///   observation lands in private hot state;
    /// * in sketched mode the context row is also streamed into the
    ///   user's frequent-directions sketch.
    pub fn observe(
        &mut self,
        handle: ModelHandle,
        x: &[f64],
        r: f64,
        seq: u64,
    ) -> Result<(), ModelsError> {
        let idx = self.check(handle)?;
        if matches!(self.slots[idx].residency, Residency::Prior)
            && self.config.cohorts > 0
            && self.slots[idx].folds < self.config.cohort_fold_obs
        {
            let c = self.cohort_of(self.slots[idx].user);
            if self.cohort_priors[c].is_none() {
                let est = Box::new(self.prior.clone());
                self.cohort_bytes += est.state_bytes();
                self.cohort_priors[c] = Some(est);
            }
            self.cohort_priors[c]
                .as_mut()
                .unwrap()
                .observe(x, r)
                .map_err(ModelsError::Linalg)?;
            self.cohort_dirty[c] = true;
            self.slots[idx].folds += 1;
            self.cohort_folds += 1;
            self.slots[idx].last_access = seq;
            return Ok(());
        }
        self.promote_for_observe(idx, seq)?;
        let slot = &mut self.slots[idx];
        let Residency::Hot(est) = &mut slot.residency else {
            unreachable!("observe access leaves the slot hot");
        };
        est.observe(x, r).map_err(ModelsError::Linalg)?;
        if let Some(sk) = slot.sketch.as_mut() {
            sk.update(x);
        }
        Ok(())
    }

    /// Approximate point estimate `xᵀθ̃` answered from the *resident*
    /// representation without faulting: quantized for warm slots, exact
    /// for hot, prior for cold. `None` for spilled slots — answering
    /// would cost a disk fault, which is the caller's call to make.
    pub fn approx_point_estimate(&self, handle: ModelHandle, x: &[f64]) -> Option<f64> {
        let slot = self.slots.get(handle.index())?;
        match &slot.residency {
            Residency::Prior => Some(
                x.iter()
                    .zip(self.base_prior_for(slot.user).theta_hat_cached().as_slice())
                    .map(|(a, b)| a * b)
                    .sum(),
            ),
            Residency::Hot(est) => Some(
                x.iter()
                    .zip(est.theta_hat_cached().as_slice())
                    .map(|(a, b)| a * b)
                    .sum(),
            ),
            Residency::Warm(q) => Some(q.approx_point_estimate(x)),
            Residency::WarmSketch(w) => Some(w.approx_point_estimate(x)),
            Residency::Spilled => None,
        }
    }

    /// Demotes least-recently-accessed hot slots in one batched sweep
    /// until the hot tier fits its budget. Three phases — pop victims,
    /// stage all spill records into one reused write buffer (single
    /// seek + write at commit), build warm representations from
    /// recycled buffers — so steady-state demotion performs no
    /// per-victim allocation.
    fn shrink_hot_to_budget(&mut self) -> Result<(), ModelsError> {
        if self.hot_bytes <= self.config.hot_budget_bytes {
            return Ok(());
        }
        let mut victims = std::mem::take(&mut self.demote_buf);
        debug_assert!(victims.is_empty());
        while self.hot_bytes > self.config.hot_budget_bytes {
            let Some((_, idx)) = self.lru_hot.pop_first() else {
                break;
            };
            let i = idx as usize;
            let residency = std::mem::replace(&mut self.slots[i].residency, Residency::Spilled);
            let Residency::Hot(est) = residency else {
                unreachable!("lru_hot only holds hot slots");
            };
            let sketch = self.slots[i].sketch.take();
            self.hot_bytes -= est.state_bytes() + sketch.as_ref().map_or(0, |s| s.state_bytes());
            victims.push((idx, est, sketch));
        }
        if victims.is_empty() {
            self.demote_buf = victims;
            return Ok(());
        }
        let kind = self.user_kind();
        {
            let spill = self
                .spill
                .as_mut()
                .ok_or(ModelsError::Spill("no spill log configured"))?;
            spill.batch_begin();
            for (idx, est, sketch) in &victims {
                let slot = &self.slots[*idx as usize];
                if slot.dirty || !spill.contains(kind, slot.user) {
                    self.encode_buf.clear();
                    match self.config.state {
                        StateMode::Exact => encode_exact_into(est, &mut self.encode_buf),
                        StateMode::Sketched => encode_sketch_into(
                            sketch.as_ref().expect("sketched hot slots carry a sketch"),
                            est.b_vector(),
                            est.lambda(),
                            est.observations(),
                            est.theta_recomputes(),
                            &mut self.encode_buf,
                        ),
                    }
                    spill.batch_add(kind, slot.user, &self.encode_buf)?;
                }
            }
            spill.batch_commit()?;
        }
        for (idx, est, _sketch) in victims.drain(..) {
            let i = idx as usize;
            let warm = match self.config.state {
                StateMode::Exact => {
                    let q = match self.quant_pool.pop() {
                        Some(mut q) => {
                            q.requantize(&est);
                            q
                        }
                        None => Box::new(QuantizedModel::quantize(&est)),
                    };
                    self.warm_bytes += q.state_bytes();
                    Residency::Warm(q)
                }
                StateMode::Sketched => {
                    let w = Box::new(SketchWarm::from_estimator(&est));
                    self.warm_bytes += w.state_bytes();
                    Residency::WarmSketch(w)
                }
            };
            self.slots[i].residency = warm;
            self.slots[i].dirty = false;
            self.lru_insert(i);
            self.demotions += 1;
        }
        self.demote_buf = victims;
        Ok(())
    }

    fn evict_lru_warm(&mut self) -> Result<bool, ModelsError> {
        let Some((_, idx)) = self.lru_warm.pop_first() else {
            return Ok(false);
        };
        let idx = idx as usize;
        match std::mem::replace(&mut self.slots[idx].residency, Residency::Spilled) {
            Residency::Warm(q) => {
                self.warm_bytes -= q.state_bytes();
                if self.quant_pool.len() < QUANT_POOL_CAP {
                    self.quant_pool.push(q);
                }
            }
            Residency::WarmSketch(w) => {
                self.warm_bytes -= w.state_bytes();
            }
            _ => unreachable!("lru_warm only holds warm slots"),
        }
        self.evictions += 1;
        Ok(true)
    }

    /// Enforces the memory budgets at round `seq`: demotes
    /// least-recently-accessed hot slots (in one batched sweep) until
    /// the hot tier fits, then evicts least-recently-accessed warm
    /// slots until the warm tier fits. Deterministic: victim order is
    /// `(last_access, handle)`.
    pub fn enforce_budget(&mut self, _seq: u64) -> Result<(), ModelsError> {
        self.shrink_hot_to_budget()?;
        while self.warm_bytes > self.config.warm_budget_bytes {
            if !self.evict_lru_warm()? {
                break;
            }
        }
        Ok(())
    }

    /// Flushes the spill log to disk, first persisting any cohort
    /// priors trained since the last sync — a crash-restart without a
    /// snapshot keeps the cohort chain's learning.
    pub fn sync(&mut self) -> Result<(), ModelsError> {
        if let Some(spill) = &mut self.spill {
            spill.batch_begin();
            for (c, dirty) in self.cohort_dirty.iter_mut().enumerate() {
                if *dirty {
                    if let Some(est) = &self.cohort_priors[c] {
                        self.encode_buf.clear();
                        encode_exact_into(est, &mut self.encode_buf);
                        spill.batch_add(KIND_COHORT, c as u64, &self.encode_buf)?;
                    }
                    *dirty = false;
                }
            }
            spill.batch_commit()?;
            spill.sync()?;
        }
        Ok(())
    }

    /// Resident bytes across tiers, prior chain included — the store's
    /// contribution to a policy's `state_bytes()`.
    pub fn resident_bytes(&self) -> usize {
        self.hot_bytes + self.warm_bytes + self.cohort_bytes + self.prior.state_bytes()
    }

    /// Selects served by a cohort prior instead of the global prior.
    pub fn cohort_hits(&self) -> u64 {
        self.cohort_hits
    }

    /// Sketch-record promotions from the spill log.
    pub fn sketch_promotions(&self) -> u64 {
        self.sketch_promotions
    }

    /// Occupancy and traffic snapshot.
    pub fn stats(&self) -> StoreStats {
        let hot = self.lru_hot.len();
        let warm = self.lru_warm.len();
        StoreStats {
            users: self.slots.len(),
            cold: self.slots.len() - self.private,
            hot,
            warm,
            spilled: self.private - hot - warm,
            hot_bytes: self.hot_bytes,
            warm_bytes: self.warm_bytes,
            cow_materializations: self.cow_materializations,
            faults: self.faults,
            demotions: self.demotions,
            evictions: self.evictions,
            spill_live_bytes: self.spill.as_ref().map_or(0, |s| s.live_bytes()),
            spill_file_bytes: self.spill.as_ref().map_or(0, |s| s.file_bytes()),
            spill_appends: self.spill.as_ref().map_or(0, |s| s.appends()),
            spill_compactions: self.spill.as_ref().map_or(0, |s| s.compactions()),
            cohorts_materialized: self.cohort_priors.iter().filter(|c| c.is_some()).count(),
            cohort_bytes: self.cohort_bytes,
            cohort_hits: self.cohort_hits,
            cohort_folds: self.cohort_folds,
            sketch_promotions: self.sketch_promotions,
        }
    }

    /// Serialises the complete logical state — prior, every user's
    /// exact model bits (read back from the spill log for non-hot
    /// slots) and access stamps. **Residency-independent**: a budgeted
    /// store and an unbounded store that processed the same rounds
    /// produce byte-identical blobs.
    pub fn save_state(&self) -> Vec<u8> {
        let d = self.config.dim;
        let per_user = 8 + 8 + 1 + 4 + exact_blob_len(d);
        let mut out = Vec::with_capacity(64 + exact_blob_len(d) + self.slots.len() * per_user / 4);
        out.extend_from_slice(SAVE_MAGIC);
        out.extend_from_slice(&(d as u32).to_le_bytes());
        out.extend_from_slice(&self.config.lambda.to_le_bytes());
        let prior_blob = encode_exact(&self.prior);
        out.extend_from_slice(&(prior_blob.len() as u32).to_le_bytes());
        out.extend_from_slice(&prior_blob);
        // Cohort-prior section (before the slots: sketched slot
        // restore reconstructs against these). Counts are written even
        // when zero so a cohorts-off snapshot is byte-identical to a
        // cohorts-untrained one.
        let materialized: Vec<(usize, &Box<RidgeEstimator>)> = self
            .cohort_priors
            .iter()
            .enumerate()
            .filter_map(|(c, e)| e.as_ref().map(|e| (c, e)))
            .collect();
        out.extend_from_slice(&(materialized.len() as u32).to_le_bytes());
        for (c, est) in materialized {
            out.extend_from_slice(&(c as u32).to_le_bytes());
            let blob = encode_exact(est);
            out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        // Fold-counter section: users whose early observations folded
        // into their cohort prior, in slot order.
        let folded: Vec<(u64, u64)> = self
            .slots
            .iter()
            .filter(|s| s.folds > 0)
            .map(|s| (s.user, s.folds))
            .collect();
        out.extend_from_slice(&(folded.len() as u64).to_le_bytes());
        for (user, folds) in folded {
            out.extend_from_slice(&user.to_le_bytes());
            out.extend_from_slice(&folds.to_le_bytes());
        }
        out.extend_from_slice(&(self.slots.len() as u64).to_le_bytes());
        for slot in &self.slots {
            out.extend_from_slice(&slot.user.to_le_bytes());
            out.extend_from_slice(&slot.last_access.to_le_bytes());
            match &slot.residency {
                Residency::Prior => out.push(0),
                Residency::Hot(est) => match self.config.state {
                    StateMode::Exact => {
                        out.push(1);
                        let blob = encode_exact(est);
                        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                        out.extend_from_slice(&blob);
                    }
                    StateMode::Sketched => {
                        out.push(2);
                        let mut blob = Vec::new();
                        encode_sketch_into(
                            slot.sketch
                                .as_ref()
                                .expect("sketched hot slots carry a sketch"),
                            est.b_vector(),
                            est.lambda(),
                            est.observations(),
                            est.theta_recomputes(),
                            &mut blob,
                        );
                        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                        out.extend_from_slice(&blob);
                    }
                },
                Residency::Warm(_) | Residency::WarmSketch(_) | Residency::Spilled => {
                    // Non-hot slots are never dirty: the spill log holds
                    // their authoritative durable bits.
                    out.push(match self.config.state {
                        StateMode::Exact => 1,
                        StateMode::Sketched => 2,
                    });
                    let kind = self.user_kind();
                    let blob = self
                        .spill
                        .as_ref()
                        .and_then(|s| s.read(kind, slot.user).ok().flatten())
                        .expect("non-resident model missing from spill log");
                    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
                    out.extend_from_slice(&blob);
                }
            }
        }
        out
    }

    /// 64-bit FNV-1a digest of [`EstimatorStore::save_state`] — a cheap
    /// residency-independent fingerprint of the store's logical state.
    pub fn state_digest(&self) -> u64 {
        fnv1a(&self.save_state())
    }

    /// Restores the logical state saved by
    /// [`EstimatorStore::save_state`]. Every private model comes back
    /// *hot* (and dirty); the next [`EstimatorStore::enforce_budget`]
    /// re-demotes to fit. Any existing spill log content is superseded
    /// and cleared.
    pub fn restore_state(&mut self, blob: &[u8]) -> Result<(), ModelsError> {
        let mut buf = blob;
        let magic = take(&mut buf, 8)?;
        if magic != SAVE_MAGIC {
            return Err(ModelsError::Codec("not an estimator store snapshot"));
        }
        let dim = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        if dim != self.config.dim {
            return Err(ModelsError::Config("snapshot dimension mismatch"));
        }
        let lambda = f64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
        if lambda.to_bits() != self.config.lambda.to_bits() {
            return Err(ModelsError::Config("snapshot lambda mismatch"));
        }
        let prior_len = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let prior = decode_exact(take(&mut buf, prior_len)?)?;

        // Cohort-prior section.
        let ncoh = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
        let mut cohort_priors: Vec<Option<Box<RidgeEstimator>>> =
            (0..self.config.cohorts).map(|_| None).collect();
        let mut cohort_bytes = 0usize;
        for _ in 0..ncoh {
            let c = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
            let len = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
            let est = Box::new(decode_exact(take(&mut buf, len)?)?);
            if c >= self.config.cohorts {
                return Err(ModelsError::Config(
                    "snapshot cohort id exceeds configured cohort count",
                ));
            }
            if cohort_priors[c].is_some() {
                return Err(ModelsError::Codec("duplicate cohort in snapshot"));
            }
            cohort_bytes += est.state_bytes();
            cohort_priors[c] = Some(est);
        }

        // Fold-counter section (applied to slots after they parse).
        let nfolds = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap()) as usize;
        let mut folds_by_user = Vec::with_capacity(nfolds);
        for _ in 0..nfolds {
            let user = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
            let folds = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
            folds_by_user.push((user, folds));
        }

        let count = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap()) as usize;
        let mut slots = Vec::with_capacity(count);
        let mut by_user = HashMap::with_capacity(count);
        let mut lru_hot = BTreeSet::new();
        let mut hot_bytes = 0usize;
        let mut private = 0usize;
        for idx in 0..count {
            let user = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
            let last_access = u64::from_le_bytes(take(&mut buf, 8)?.try_into().unwrap());
            let tag = take(&mut buf, 1)?[0];
            let mut sketch = None;
            let residency = match tag {
                0 => Residency::Prior,
                1 => {
                    if self.config.state != StateMode::Exact {
                        return Err(ModelsError::Config(
                            "exact snapshot restored into a sketched store",
                        ));
                    }
                    let len = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
                    let est = Box::new(decode_exact(take(&mut buf, len)?)?);
                    hot_bytes += est.state_bytes();
                    private += 1;
                    lru_hot.insert((last_access, idx as u32));
                    Residency::Hot(est)
                }
                2 => {
                    if self.config.state != StateMode::Sketched {
                        return Err(ModelsError::Config(
                            "sketched snapshot restored into an exact store",
                        ));
                    }
                    let len = u32::from_le_bytes(take(&mut buf, 4)?.try_into().unwrap()) as usize;
                    let rec = decode_sketch(take(&mut buf, len)?)?;
                    // Reconstruct against the *restored* prior chain,
                    // not self's current one.
                    let base = if self.config.cohorts > 0 {
                        let c = (mix64(self.config.cohort_salt ^ user) % self.config.cohorts as u64)
                            as usize;
                        cohort_priors[c].as_deref().unwrap_or(&prior)
                    } else {
                        &prior
                    };
                    if rec.sketch.dim() != self.config.dim {
                        return Err(ModelsError::Codec("sketch record dimension mismatch"));
                    }
                    let mut y = base.gram_matrix().clone();
                    rec.sketch.add_gram_to(&mut y);
                    let chol = Cholesky::factor(&y).map_err(ModelsError::Linalg)?;
                    let y_inv = chol.inverse();
                    let theta = chol.solve(&rec.b);
                    let est = Box::new(
                        RidgeEstimator::from_exact_parts(
                            rec.lambda,
                            y,
                            y_inv,
                            rec.b.clone(),
                            theta,
                            false,
                            rec.observations,
                            rec.recomputes,
                        )
                        .map_err(ModelsError::Linalg)?,
                    );
                    let sk = Box::new(rec.sketch);
                    hot_bytes += est.state_bytes() + sk.state_bytes();
                    sketch = Some(sk);
                    private += 1;
                    lru_hot.insert((last_access, idx as u32));
                    Residency::Hot(est)
                }
                _ => return Err(ModelsError::Codec("unknown slot tag")),
            };
            if by_user.insert(user, idx as u32).is_some() {
                return Err(ModelsError::Codec("duplicate user in snapshot"));
            }
            slots.push(Slot {
                user,
                residency,
                last_access,
                dirty: tag != 0,
                folds: 0,
                sketch,
            });
        }
        if !buf.is_empty() {
            return Err(ModelsError::Codec("trailing bytes after store snapshot"));
        }
        for (user, folds) in folds_by_user {
            let idx = *by_user
                .get(&user)
                .ok_or(ModelsError::Codec("fold counter for unknown user"))?;
            slots[idx as usize].folds = folds;
        }
        if let Some(spill) = &mut self.spill {
            spill.clear()?;
        }
        self.prior = prior;
        self.slots = slots;
        self.by_user = by_user;
        self.lru_hot = lru_hot;
        self.lru_warm = BTreeSet::new();
        self.hot_bytes = hot_bytes;
        self.warm_bytes = 0;
        self.private = private;
        self.cohort_bytes = cohort_bytes;
        self.cohort_priors = cohort_priors;
        // The spill log was cleared: every restored cohort prior must
        // be re-persisted at the next sync.
        self.cohort_dirty = vec![true; self.config.cohorts];
        Ok(())
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], ModelsError> {
    if buf.len() < n {
        return Err(ModelsError::Codec("store snapshot is truncated"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// 64-bit FNV-1a.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fasea-models-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn context(user: u64, t: u64, dim: usize) -> Vec<f64> {
        (0..dim)
            .map(|i| {
                let z = fasea_stats::crn::mix64(user ^ t.wrapping_mul(31) ^ i as u64);
                (z % 1000) as f64 / 1000.0 - 0.5
            })
            .collect()
    }

    /// Drives `rounds` rounds of a fixed access trace against `store`.
    fn drive(store: &mut EstimatorStore, users: u64, rounds: u64) {
        let dim = store.dim();
        for t in 0..rounds {
            let user = fasea_stats::crn::mix64(t ^ 0xFACE) % users;
            let h = store.resolve(UserId(user));
            let x = context(user, t, dim);
            // Select: read a width through the current inverse.
            let _ = store
                .estimator_for_select(h, t)
                .unwrap()
                .confidence_width(&x);
            let r = (fasea_stats::crn::mix64(user ^ t) % 2) as f64;
            store.observe(h, &x, r, t).unwrap();
            store.enforce_budget(t).unwrap();
        }
    }

    #[test]
    fn cold_users_cost_zero_private_bytes() {
        let mut store = EstimatorStore::new(StoreConfig::unbounded(4, 1.0)).unwrap();
        for u in 0..1000 {
            let h = store.resolve(UserId(u));
            let _ = store
                .estimator_for_select(h, u)
                .unwrap()
                .confidence_width(&[0.1, 0.2, 0.3, 0.4]);
        }
        let s = store.stats();
        assert_eq!(s.users, 1000);
        assert_eq!(s.cold, 1000);
        assert_eq!(s.hot_bytes, 0);
        assert_eq!(s.cow_materializations, 0);
        // First observe materializes exactly one private model.
        let h = store.lookup(UserId(7)).unwrap();
        store
            .estimator_for_observe(h, 1000)
            .unwrap()
            .observe(&[0.1, 0.2, 0.3, 0.4], 1.0)
            .unwrap();
        let s = store.stats();
        assert_eq!(s.cow_materializations, 1);
        assert_eq!(s.hot, 1);
        assert_eq!(s.cold, 999);
        assert_eq!(s.hot_bytes, store.prior().state_bytes());
    }

    #[test]
    fn resolve_is_idempotent_and_handles_are_stable() {
        let mut store = EstimatorStore::new(StoreConfig::unbounded(2, 1.0)).unwrap();
        let a = store.resolve(UserId(99));
        let b = store.resolve(UserId(11));
        assert_eq!(store.resolve(UserId(99)), a);
        assert_ne!(a, b);
        assert_eq!(store.user_of(a), Some(UserId(99)));
        assert_eq!(store.lookup(UserId(11)), Some(b));
        assert_eq!(store.lookup(UserId(12)), None);
        assert!(store
            .estimator_for_select(ModelHandle(77), 0)
            .is_err_and(|e| matches!(e, ModelsError::UnknownHandle)));
    }

    #[test]
    fn bounded_budget_without_spill_dir_is_rejected() {
        let cfg = StoreConfig {
            hot_budget_bytes: 4096,
            ..StoreConfig::unbounded(3, 1.0)
        };
        assert!(matches!(
            EstimatorStore::new(cfg),
            Err(ModelsError::Config(_))
        ));
    }

    #[test]
    fn budget_pressure_demotes_evicts_and_faults() {
        let dir = temp_dir("pressure");
        let one = RidgeEstimator::new(4, 1.0).state_bytes();
        // Room for ~3 hot models and ~4 warm models.
        let cfg = StoreConfig::bounded(4, 1.0, 3 * one, 400, &dir);
        let mut store = EstimatorStore::new(cfg).unwrap();
        drive(&mut store, 12, 400);
        let s = store.stats();
        assert!(s.hot_bytes <= 3 * one);
        assert!(s.demotions > 0, "no demotions under pressure: {s:?}");
        assert!(s.evictions > 0, "no evictions under pressure: {s:?}");
        assert!(s.faults > 0, "no fault-ins under pressure: {s:?}");
        assert_eq!(s.cold + s.hot + s.warm + s.spilled, s.users);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgeted_store_is_bit_equal_to_unbounded() {
        let dir = temp_dir("parity");
        let one = RidgeEstimator::new(3, 0.5).state_bytes();
        let mut tiny = EstimatorStore::new(StoreConfig::bounded(3, 0.5, one, one, &dir)).unwrap();
        let mut unbounded = EstimatorStore::new(StoreConfig::unbounded(3, 0.5)).unwrap();
        drive(&mut tiny, 9, 300);
        drive(&mut unbounded, 9, 300);
        assert!(tiny.stats().demotions > 0);
        // Logical state identical down to the byte, residency aside.
        assert_eq!(tiny.save_state(), unbounded.save_state());
        assert_eq!(tiny.state_digest(), unbounded.state_digest());
        // And live reads agree bit-for-bit.
        for u in 0..9 {
            let (ht, hu) = (
                tiny.lookup(UserId(u)).unwrap(),
                unbounded.lookup(UserId(u)).unwrap(),
            );
            let x = context(u, 7777, 3);
            let a = tiny
                .estimator_for_select(ht, 10_000)
                .unwrap()
                .confidence_width(&x);
            let b = unbounded
                .estimator_for_select(hu, 10_000)
                .unwrap()
                .confidence_width(&x);
            assert_eq!(a.to_bits(), b.to_bits(), "user {u} width bits differ");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_restore_round_trip_preserves_logical_state() {
        let dir = temp_dir("snap");
        let one = RidgeEstimator::new(3, 1.0).state_bytes();
        let mut store =
            EstimatorStore::new(StoreConfig::bounded(3, 1.0, 2 * one, 1024, &dir)).unwrap();
        drive(&mut store, 8, 200);
        let blob = store.save_state();
        let digest = store.state_digest();

        let dir2 = temp_dir("snap2");
        let mut fresh =
            EstimatorStore::new(StoreConfig::bounded(3, 1.0, 2 * one, 1024, &dir2)).unwrap();
        fresh.restore_state(&blob).unwrap();
        assert_eq!(fresh.state_digest(), digest);
        assert_eq!(fresh.num_users(), store.num_users());
        // Continuing in lockstep keeps the two stores bit-equal.
        drive(&mut store, 8, 50);
        drive(&mut fresh, 8, 50);
        assert_eq!(fresh.state_digest(), store.state_digest());
        // Garbage is rejected.
        assert!(fresh.restore_state(b"junk").is_err());
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn approx_reads_never_fault() {
        let dir = temp_dir("approx");
        let one = RidgeEstimator::new(3, 1.0).state_bytes();
        let mut store = EstimatorStore::new(StoreConfig::bounded(3, 1.0, one, 700, &dir)).unwrap();
        drive(&mut store, 6, 120);
        let faults_before = store.stats().faults;
        let mut answered = 0;
        for u in 0..6 {
            let h = store.lookup(UserId(u)).unwrap();
            if let Some(p) = store.approx_point_estimate(h, &[0.2, -0.1, 0.4]) {
                assert!(p.is_finite());
                answered += 1;
            }
        }
        assert!(answered > 0, "warm/hot slots must answer approximate reads");
        assert_eq!(store.stats().faults, faults_before, "approx reads faulted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_redemotion_skips_spill_append() {
        let dir = temp_dir("clean");
        let one = RidgeEstimator::new(2, 1.0).state_bytes();
        let mut store =
            EstimatorStore::new(StoreConfig::bounded(2, 1.0, one, usize::MAX, &dir)).unwrap();
        // Two users ping-ponging through a one-model hot tier.
        for u in [1u64, 2] {
            let h = store.resolve(UserId(u));
            store
                .estimator_for_observe(h, u)
                .unwrap()
                .observe(&[0.1, 0.2], 1.0)
                .unwrap();
            store.enforce_budget(u).unwrap();
        }
        // Select-only traffic faults models in clean; once both users'
        // latest bits are on disk, re-demoting them must not re-append
        // identical state. The first two select rounds may still spill
        // the not-yet-persisted hot resident; after that, steady state.
        let mut steady_appends = None;
        for t in 10..30u64 {
            let h = store.resolve(UserId(1 + (t % 2)));
            let _ = store
                .estimator_for_select(h, t)
                .unwrap()
                .confidence_width(&[0.3, 0.4]);
            store.enforce_budget(t).unwrap();
            if t == 12 {
                steady_appends = Some(store.stats().spill_appends);
            }
        }
        assert_eq!(
            Some(store.stats().spill_appends),
            steady_appends,
            "clean fault-ins were re-spilled"
        );
        assert!(store.stats().faults > 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cohort_mode_with_zero_folds_is_bit_equal_to_flat() {
        // fold_obs = 0: cohort priors never train, so every access path
        // reduces to the flat global prior — including the save blob
        // (section counts are always written).
        let dir_flat = temp_dir("k0-flat");
        let dir_coh = temp_dir("k0-coh");
        let one = RidgeEstimator::new(3, 1.0).state_bytes();
        let mut flat =
            EstimatorStore::new(StoreConfig::bounded(3, 1.0, 2 * one, 512, &dir_flat)).unwrap();
        let mut coh = EstimatorStore::new(
            StoreConfig::bounded(3, 1.0, 2 * one, 512, &dir_coh).with_cohorts(8, 0xC0FFEE, 0),
        )
        .unwrap();
        drive(&mut flat, 10, 250);
        drive(&mut coh, 10, 250);
        assert_eq!(coh.save_state(), flat.save_state());
        let s = coh.stats();
        assert_eq!(s.cohort_hits, 0);
        assert_eq!(s.cohort_folds, 0);
        assert_eq!(s.cohorts_materialized, 0);
        let _ = std::fs::remove_dir_all(&dir_flat);
        let _ = std::fs::remove_dir_all(&dir_coh);
    }

    #[test]
    fn cohort_folding_keeps_users_cold_then_materializes() {
        let mut store =
            EstimatorStore::new(StoreConfig::unbounded(3, 1.0).with_cohorts(4, 0x5A17, 2)).unwrap();
        let h = store.resolve(UserId(42));
        let x = [0.2, -0.1, 0.4];
        // First two observations fold into the cohort prior.
        store.observe(h, &x, 1.0, 0).unwrap();
        store.observe(h, &x, 0.0, 1).unwrap();
        let s = store.stats();
        assert_eq!(s.cold, 1, "user must stay cold while folding");
        assert_eq!(s.cohort_folds, 2);
        assert_eq!(s.cohorts_materialized, 1);
        assert_eq!(s.cow_materializations, 0);
        assert!(s.cohort_bytes > 0);
        // A cold select now reads through the trained cohort prior.
        let folded_obs = store.estimator_for_select(h, 2).unwrap().observations();
        assert_eq!(folded_obs, 2);
        assert_eq!(store.stats().cohort_hits, 1);
        // A cold user in an *untrained* cohort still reads the global
        // prior (no hit).
        let mut other = None;
        for u in 0..64 {
            if store.cohort_of(u) != store.cohort_of(42) {
                other = Some(u);
                break;
            }
        }
        let h2 = store.resolve(UserId(other.unwrap()));
        assert_eq!(store.estimator_for_select(h2, 3).unwrap().observations(), 0);
        assert_eq!(store.stats().cohort_hits, 1);
        // The third observation copy-on-writes from the cohort prior.
        store.observe(h, &x, 1.0, 4).unwrap();
        let s = store.stats();
        assert_eq!(s.cow_materializations, 1);
        assert_eq!(s.cohort_folds, 2, "materialized users no longer fold");
        let est = store.estimator_for_select(h, 5).unwrap();
        assert_eq!(
            est.observations(),
            3,
            "private state starts from the cohort"
        );
        let _ = est;
    }

    #[test]
    fn cohort_budgeted_store_is_bit_equal_to_unbounded() {
        let dir = temp_dir("coh-parity");
        let one = RidgeEstimator::new(3, 0.5).state_bytes();
        let cfg_tiny = StoreConfig::bounded(3, 0.5, one, one, &dir).with_cohorts(4, 0xBEEF, 3);
        let cfg_unb = StoreConfig::unbounded(3, 0.5).with_cohorts(4, 0xBEEF, 3);
        let mut tiny = EstimatorStore::new(cfg_tiny).unwrap();
        let mut unbounded = EstimatorStore::new(cfg_unb).unwrap();
        drive(&mut tiny, 9, 300);
        drive(&mut unbounded, 9, 300);
        assert!(tiny.stats().demotions > 0);
        assert!(
            tiny.stats().cohort_folds > 0,
            "vacuous: no folding happened"
        );
        assert_eq!(tiny.save_state(), unbounded.save_state());
        assert_eq!(tiny.state_digest(), unbounded.state_digest());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sketched_demotion_round_trips_sketch_rows_and_b() {
        let dir = temp_dir("sketched");
        let one = RidgeEstimator::new(4, 1.0).state_bytes();
        let cfg = StoreConfig::bounded(4, 1.0, 2 * one, 512, &dir).with_sketched(2);
        let mut store = EstimatorStore::new(cfg).unwrap();
        drive(&mut store, 8, 300);
        let s = store.stats();
        assert!(s.demotions > 0, "no demotions under pressure: {s:?}");
        assert!(s.sketch_promotions > 0, "no sketch promotions: {s:?}");
        // The durable state (sketch rows + b) is residency-independent:
        // saving, restoring into a fresh store, and saving again is a
        // byte-identical round trip.
        let blob = store.save_state();
        let dir2 = temp_dir("sketched2");
        let cfg2 = StoreConfig::bounded(4, 1.0, 2 * one, 512, &dir2).with_sketched(2);
        let mut fresh = EstimatorStore::new(cfg2).unwrap();
        fresh.restore_state(&blob).unwrap();
        assert_eq!(fresh.save_state(), blob);
        // The exact-state API is closed off in sketched mode.
        let h = store.lookup(UserId(0)).unwrap();
        assert!(matches!(
            store.estimator_for_observe(h, 9999),
            Err(ModelsError::Config(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn sketched_warm_tier_is_smaller_than_exact_mode_warm_tier() {
        // Same trace, same budgets: sketched-mode demoted slots hold
        // SketchWarm (2d codes) instead of the quantized triangle.
        let dim = 16;
        let one = RidgeEstimator::new(dim, 1.0).state_bytes();
        let dir_e = temp_dir("warmsz-e");
        let dir_s = temp_dir("warmsz-s");
        let mut exact =
            EstimatorStore::new(StoreConfig::bounded(dim, 1.0, one, usize::MAX, &dir_e)).unwrap();
        let mut sketched = EstimatorStore::new(
            StoreConfig::bounded(dim, 1.0, one, usize::MAX, &dir_s).with_sketched(2),
        )
        .unwrap();
        drive(&mut exact, 6, 100);
        drive(&mut sketched, 6, 100);
        let (we, ws) = (exact.stats(), sketched.stats());
        assert!(we.warm > 0 && ws.warm > 0);
        assert!(
            ws.warm_bytes * 2 <= we.warm_bytes,
            "sketched warm {} vs exact warm {}",
            ws.warm_bytes,
            we.warm_bytes
        );
        let _ = std::fs::remove_dir_all(&dir_e);
        let _ = std::fs::remove_dir_all(&dir_s);
    }

    #[test]
    fn lru_tie_break_under_equal_last_access_is_byte_stable() {
        // Several users observed at the same sequence number: victim
        // order must fall back to handle order, and two identical runs
        // must produce byte-identical state and stats.
        fn run() -> (Vec<u8>, StoreStats, u64) {
            let dir = temp_dir("tiebreak");
            let one = RidgeEstimator::new(2, 1.0).state_bytes();
            let mut store =
                EstimatorStore::new(StoreConfig::bounded(2, 1.0, 2 * one, 300, &dir)).unwrap();
            // Six users all touched at seq 7, then budget enforcement:
            // the (last_access, handle) key decides victims by handle.
            for u in 0..6u64 {
                let h = store.resolve(UserId(u));
                store.observe(h, &[0.1 * u as f64, 0.2], 1.0, 7).unwrap();
            }
            store.enforce_budget(7).unwrap();
            // Handles 0..4 (oldest by tiebreak) must have been demoted
            // first; the last-resolved survivors stay hot.
            let s = store.stats();
            let blob = store.save_state();
            let digest = store.state_digest();
            let _ = std::fs::remove_dir_all(&dir);
            (blob, s, digest)
        }
        let (blob_a, stats_a, digest_a) = run();
        let (blob_b, stats_b, digest_b) = run();
        assert_eq!(blob_a, blob_b);
        assert_eq!(stats_a, stats_b);
        assert_eq!(digest_a, digest_b);
        assert!(stats_a.demotions > 0);
    }

    #[test]
    fn compaction_interleaved_with_faulting_keeps_parity() {
        // Enough dirty re-spills of a tiny population to trip the
        // spill log's compaction floor (1 MiB of garbage) while faults
        // keep promoting records back — parity with an unbounded twin
        // must survive the generation switch.
        let dir = temp_dir("compact-fault");
        let one = RidgeEstimator::new(8, 1.0).state_bytes();
        let mut tiny = EstimatorStore::new(StoreConfig::bounded(8, 1.0, one, 600, &dir)).unwrap();
        let mut unbounded = EstimatorStore::new(StoreConfig::unbounded(8, 1.0)).unwrap();
        drive(&mut tiny, 3, 2500);
        drive(&mut unbounded, 3, 2500);
        let s = tiny.stats();
        assert!(
            s.spill_compactions > 0,
            "trace too small to trigger compaction: {s:?}"
        );
        assert!(s.faults > 0);
        assert_eq!(tiny.save_state(), unbounded.save_state());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_survives_reopen_via_same_config() {
        let dir = temp_dir("reopen");
        let one = RidgeEstimator::new(2, 1.0).state_bytes();
        let cfg = StoreConfig::bounded(2, 1.0, one, one, &dir);
        let digest;
        {
            let mut store = EstimatorStore::new(cfg.clone()).unwrap();
            drive(&mut store, 5, 80);
            store.sync().unwrap();
            digest = store.state_digest();
            assert!(store.stats().demotions > 0);
        }
        // A new store over the same directory sees the spilled frames
        // (the slot map is rebuilt from a snapshot in real use; here we
        // check the log itself survives with its fingerprint).
        let store = EstimatorStore::new(cfg).unwrap();
        assert!(store.stats().spill_live_bytes > 0);
        let _ = digest;
        let _ = std::fs::remove_dir_all(&dir);
    }
}

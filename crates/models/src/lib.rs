//! # fasea-models
//!
//! A **million-user personalized estimator store** for FASEA: per-user
//! `RidgeEstimator`s behind a stable `UserId -> ModelHandle` API, built
//! for populations far larger than RAM wants to hold in exact f64.
//!
//! The paper fits one global θ per policy; serving real event-based
//! social networks means one model per user (or cohort). Three
//! mechanisms keep that affordable:
//!
//! * **Cohort prior chain** ([`EstimatorStore`]) — a three-level
//!   copy-on-write chain *global prior → cohort prior → user delta*:
//!   users hash deterministically into cohorts, early feedback folds
//!   into a shared per-cohort `RidgeEstimator`, and users whose state
//!   has not diverged alias their cohort at zero private bytes.
//! * **Quantized residency tier** ([`QuantizedModel`]) — idle resident
//!   models are demoted to an `i16` fixed-point copy (upper-triangle
//!   `Y⁻¹`, `b`, `θ̂`) for approximate reads, with `state_bytes()`
//!   accounting against configurable hot/warm byte budgets.
//! * **Sketched per-user state** ([`SketchWarm`], opt-in) — private
//!   state as a rank-`r` frequent-directions sketch of the Gram update
//!   plus the exact `b` vector, `O(r·d)` bytes instead of `O(d²)`,
//!   reconstructed against the cohort prior on promotion.
//! * **WAL-backed spill** ([`SpillLog`]) — demoted models' exact bits
//!   go to an append-only, CRC-framed, crash-safe log (the same
//!   framing as `fasea-store`'s WAL) and fault back in on access.
//!
//! Eviction order is deterministic — `(last_access_seq, handle)` — and
//! the spill codec ([`codec`]) is bit-preserving, so **a run under a
//! tiny memory budget produces bit-equal arrangements, regret and RNG
//! streams to an unbounded run**. The [`PersonalizedUcb`] /
//! [`PersonalizedTs`] policy shells plug the store into every existing
//! driver (simulator, durable service, network serving layer) through
//! the ordinary `fasea_bandit::Policy` trait.

#![deny(missing_docs)]

pub mod codec;
pub mod policy;
pub mod quant;
pub mod spill;
pub mod store;

pub use policy::{PersonalizedTs, PersonalizedUcb, UserSchedule};
pub use quant::{QuantizedModel, SketchWarm};
pub use spill::SpillLog;
pub use store::{EstimatorStore, ModelHandle, StateMode, StoreConfig, StoreStats, UserId};

/// Errors surfaced by the model store subsystem.
#[derive(Debug)]
pub enum ModelsError {
    /// An I/O failure in the spill log.
    Io(std::io::Error),
    /// A malformed exact blob or store snapshot.
    Codec(&'static str),
    /// Numerically invalid restored state.
    Linalg(fasea_linalg::LinalgError),
    /// A spill log structural problem (bad header, missing record…).
    Spill(&'static str),
    /// An invalid store configuration.
    Config(&'static str),
    /// A handle that this store never issued.
    UnknownHandle,
}

impl std::fmt::Display for ModelsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelsError::Io(e) => write!(f, "spill I/O error: {e}"),
            ModelsError::Codec(s) => write!(f, "model codec error: {s}"),
            ModelsError::Linalg(e) => write!(f, "restored state is invalid: {e}"),
            ModelsError::Spill(s) => write!(f, "spill log error: {s}"),
            ModelsError::Config(s) => write!(f, "store configuration error: {s}"),
            ModelsError::UnknownHandle => write!(f, "unknown model handle"),
        }
    }
}

impl std::error::Error for ModelsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelsError::Io(e) => Some(e),
            ModelsError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ModelsError {
    fn from(e: std::io::Error) -> Self {
        ModelsError::Io(e)
    }
}

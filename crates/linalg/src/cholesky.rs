//! Cholesky factorisation of symmetric positive-definite matrices.

use crate::{LinalgError, Matrix, Vector};

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L Lᵀ`.
///
/// FASEA's Thompson-Sampling policy (Algorithm 1, line 7) samples
/// `θ̃ ∼ N(θ̂, q² Y⁻¹)`. Writing `Y = L Lᵀ`, a standard-normal vector `z`
/// is mapped to a correlated sample via `θ̃ = θ̂ + q · L⁻ᵀ z`, because
/// `Cov(L⁻ᵀ z) = L⁻ᵀ L⁻¹ = (L Lᵀ)⁻¹ = Y⁻¹`. [`Cholesky::solve_lt`]
/// provides exactly that back-substitution.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    /// Lower-triangular factor, stored as a full square matrix with the
    /// strict upper triangle zeroed.
    l: Matrix,
}

impl Cholesky {
    /// Factors the SPD matrix `a` into `L Lᵀ`.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is ≤ 0 (after
    ///   round-off), i.e. `a` is not numerically SPD.
    /// * [`LinalgError::NonFinite`] if `a` contains NaN/∞.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare(a.rows(), a.cols()));
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut sum = a[(j, j)];
            for k in 0..j {
                sum -= l[(j, k)] * l[(j, k)];
            }
            if sum <= 0.0 || !sum.is_finite() {
                return Err(LinalgError::NotPositiveDefinite(j, sum));
            }
            let ljj = sum.sqrt();
            l[(j, j)] = ljj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Panics
    /// Panics if `b.dim() != self.dim()`.
    pub fn solve_l(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.dim(), n, "solve_l: dimension mismatch");
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = b` (back substitution).
    ///
    /// # Panics
    /// Panics if `b.dim() != self.dim()`.
    pub fn solve_lt(&self, b: &Vector) -> Vector {
        let n = self.dim();
        assert_eq!(b.dim(), n, "solve_lt: dimension mismatch");
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Solves the full system `A x = b` via the two triangular solves.
    pub fn solve(&self, b: &Vector) -> Vector {
        self.solve_lt(&self.solve_l(b))
    }

    /// Explicit inverse `A⁻¹`, built column-by-column from solves. `O(d³)`.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = Vector::zeros(n);
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e);
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
            e[c] = 0.0;
        }
        inv
    }

    /// `log det A = 2 Σ log L_{ii}`; numerically stable for small/large
    /// determinants.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Determinant of `A` (exp of [`Cholesky::log_det`]; may overflow for
    /// huge matrices — FASEA only needs `d ≤ 20` so this is fine).
    pub fn det(&self) -> f64 {
        self.log_det().exp()
    }

    /// Quadratic form of the inverse, `xᵀ A⁻¹ x`, computed as `‖L⁻¹x‖²`
    /// without materialising the inverse.
    pub fn inv_quadratic_form(&self, x: &Vector) -> f64 {
        self.solve_l(x).norm_sq()
    }

    /// Maps an uncorrelated standard-normal vector `z` to a sample with
    /// covariance `A⁻¹` (mean zero): returns `L⁻ᵀ z`.
    ///
    /// This is the sampling primitive of the TS policy: with `A = Y` the
    /// result has covariance `Y⁻¹`.
    pub fn correlate_with_inverse_cov(&self, z: &Vector) -> Vector {
        self.solve_lt(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SPD test fixture: A = [[4,2,0],[2,5,1],[0,1,3]].
    fn spd3() -> Matrix {
        Matrix::from_rows(3, 3, vec![4.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let recon = l.matmul(&l.transposed());
        assert!(recon.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn factor_known_2x2() {
        // A = [[4, 2], [2, 2]] => L = [[2, 0], [1, 1]]
        let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 2.0]);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-14);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-14);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Vector::from([1.0, -2.0, 3.0]);
        let x = ch.solve(&b);
        let recon = a.matvec(&x);
        assert!(crate::max_abs_diff(&recon, &b) < 1e-12);
    }

    #[test]
    fn triangular_solves_satisfy_their_systems() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let b = Vector::from([0.5, 0.25, -1.0]);
        let y = ch.solve_l(&b);
        assert!(crate::max_abs_diff(&ch.factor_l().matvec(&y), &b) < 1e-12);
        let x = ch.solve_lt(&b);
        assert!(crate::max_abs_diff(&ch.factor_l().transposed().matvec(&x), &b) < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let inv = ch.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn det_matches_cofactor_expansion() {
        let a = spd3();
        // det = 4*(5*3-1) - 2*(2*3-0) + 0 = 56 - 12 = 44
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.det() - 44.0).abs() < 1e-10);
        assert!((ch.log_det() - 44f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn identity_factor_is_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(ch.factor_l().max_abs_diff(&Matrix::identity(4)) < 1e-15);
        assert_eq!(ch.det(), 1.0);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare(2, 3))
        ));
    }

    #[test]
    fn rejects_indefinite() {
        // [[1, 2], [2, 1]] has eigenvalues 3 and -1.
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite(1, _))
        ));
    }

    #[test]
    fn rejects_nan() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(Cholesky::factor(&a), Err(LinalgError::NonFinite)));
    }

    #[test]
    fn inv_quadratic_form_matches_explicit_inverse() {
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let x = Vector::from([0.2, -0.7, 0.4]);
        let direct = ch.inverse().quadratic_form(&x);
        assert!((ch.inv_quadratic_form(&x) - direct).abs() < 1e-12);
    }

    #[test]
    fn correlate_with_inverse_cov_covariance_identity_case() {
        // For A = I the transform must be the identity map.
        let ch = Cholesky::factor(&Matrix::identity(3)).unwrap();
        let z = Vector::from([1.0, -2.0, 0.5]);
        let s = ch.correlate_with_inverse_cov(&z);
        assert!(crate::max_abs_diff(&s, &z) < 1e-15);
    }

    #[test]
    fn correlate_transform_has_right_covariance_algebra() {
        // For any z: s = L^{-T} z, so s^T A s = z^T L^{-1} A L^{-T} z = |z|^2.
        let a = spd3();
        let ch = Cholesky::factor(&a).unwrap();
        let z = Vector::from([0.3, 1.1, -0.8]);
        let s = ch.correlate_with_inverse_cov(&z);
        assert!((a.quadratic_form(&s) - z.norm_sq()).abs() < 1e-12);
    }
}

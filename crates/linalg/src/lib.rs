//! # fasea-linalg
//!
//! Dense linear algebra substrate for the FASEA contextual combinatorial
//! bandit library.
//!
//! The bandit algorithms of the paper (TS — Algorithm 1, UCB — Algorithm 3,
//! eGreedy — Algorithm 4) all maintain a `d × d` Gram matrix
//! `Y = λI + Σ x xᵀ` and a reward-weighted context sum `b = Σ r x`, and need
//!
//! * the ridge estimate `θ̂ = Y⁻¹ b`,
//! * the UCB quadratic form `xᵀ Y⁻¹ x`,
//! * sampling from `N(θ̂, q² Y⁻¹)`, which requires a Cholesky factor of
//!   `Y⁻¹` (equivalently, triangular solves against a factor of `Y`).
//!
//! The paper uses `d ≤ 20`, so a straightforward dense implementation is
//! both sufficient and fastest; everything here is written for correctness
//! first, with rank-1 inverse maintenance ([`ShermanMorrisonInverse`]) as the
//! one performance-critical optimisation (it turns the per-round `O(d³)`
//! inversion into `O(d²)` per arranged event).
//!
//! The crate is self-contained (no dependencies) and deliberately small in
//! API surface:
//!
//! * [`Vector`] — owned dense vector with arithmetic, dot products, norms.
//! * [`Matrix`] — owned dense row-major matrix with arithmetic, `matvec`,
//!   outer products, symmetric rank-1 updates.
//! * [`Cholesky`] — SPD factorisation with solves, inverse, log-determinant
//!   and sampling support.
//! * [`ShermanMorrisonInverse`] — incrementally maintained inverse of
//!   `λI + Σ x xᵀ`.
//! * [`FrequentDirections`] — rank-`r` streaming sketch of a Gram
//!   update stream (`O(r·d)` state approximating `Σ x xᵀ`), for the
//!   sublinear warm tier of the million-user estimator store.
//!
//! ## Example
//!
//! ```
//! use fasea_linalg::{Matrix, Vector, Cholesky};
//!
//! // Y = λI + x xᵀ with λ = 1
//! let x = Vector::from(vec![0.6, 0.8]);
//! let mut y = Matrix::identity(2);
//! y.add_outer(&x, 1.0);
//! let chol = Cholesky::factor(&y).unwrap();
//! let b = Vector::from(vec![1.0, 2.0]);
//! let theta = chol.solve(&b);
//! // Y θ = b must hold
//! let recon = y.matvec(&theta);
//! assert!((recon[0] - 1.0).abs() < 1e-12 && (recon[1] - 2.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod cholesky;
mod error;
mod matrix;
mod sherman_morrison;
mod sketch;
mod vector;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::{outer, Matrix, QF_LANES};
pub use sherman_morrison::ShermanMorrisonInverse;
pub use sketch::FrequentDirections;
pub use vector::{dot_slices, Vector};

/// Tolerance used by approximate comparisons in tests and validation
/// helpers. Chosen loose enough to absorb accumulation error for the
/// dimensions used by FASEA (`d ≤ 64`).
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` if `a` and `b` differ by at most `tol` in absolute value.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Maximum absolute component-wise difference between two equal-length
/// slices. Panics if lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

//! Owned dense vector.

use std::fmt;
use std::ops::{Add, AddAssign, Deref, DerefMut, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// An owned dense vector of `f64` values.
///
/// `Vector` is a thin newtype over `Vec<f64>` that adds the arithmetic the
/// bandit algorithms need — dot products, norms, scaling, axpy — while
/// still `Deref`-ing to a slice so it composes with ordinary slice code.
///
/// Contexts `x_{t,v}` and the weight vector `θ` of the paper are both
/// represented as `Vector`s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Creates a vector of dimension `dim` filled with `value`.
    pub fn filled(dim: usize, value: f64) -> Self {
        Vector(vec![value; dim])
    }

    /// Builds a vector by evaluating `f` at each index `0..dim`.
    pub fn from_fn(dim: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Vector((0..dim).map(&mut f).collect())
    }

    /// Dimension (number of components).
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Borrows the components as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrows the components as a slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the underlying `Vec`.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Dot product `self · other`.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    #[inline]
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dot: dimension mismatch");
        dot_slices(&self.0, &other.0)
    }

    /// Euclidean (L2) norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm, avoiding the square root.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// L∞ norm (maximum absolute component); 0 for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }

    /// Multiplies every component by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.0 {
            *x *= s;
        }
    }

    /// Returns a scaled copy `s · self`.
    pub fn scaled(&self, s: f64) -> Vector {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.dim(), other.dim(), "axpy: dimension mismatch");
        for (x, y) in self.0.iter_mut().zip(&other.0) {
            *x += alpha * y;
        }
    }

    /// Normalises the vector to unit Euclidean length in place.
    ///
    /// A zero (or numerically negligible) vector is left untouched — the
    /// FASEA generators rely on this so that all-zero contexts stay valid
    /// (`‖x‖ ≤ 1` is still satisfied).
    pub fn normalize_mut(&mut self) {
        let n = self.norm();
        if n > f64::EPSILON {
            self.scale_mut(1.0 / n);
        }
    }

    /// Returns a unit-length copy (see [`Vector::normalize_mut`]).
    pub fn normalized(&self) -> Vector {
        let mut out = self.clone();
        out.normalize_mut();
        out
    }

    /// `true` if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }

    /// Index of the maximum component, breaking ties towards the smallest
    /// index. Returns `None` for the empty vector or if any comparison
    /// involves NaN.
    pub fn argmax(&self) -> Option<usize> {
        if self.0.is_empty() || !self.is_finite() {
            return None;
        }
        let mut best = 0usize;
        for (i, &x) in self.0.iter().enumerate().skip(1) {
            if x > self.0[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Sum of all components.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }
}

/// Dot product of two equal-length slices.
///
/// Written with a 4-way manual unroll: for the `d ≤ 20` vectors FASEA uses
/// this is consistently faster than the naive loop in debug builds and at
/// least as fast in release builds.
#[inline]
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl<const N: usize> From<[f64; N]> for Vector {
    fn from(v: [f64; N]) -> Self {
        Vector(v.to_vec())
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl Deref for Vector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl DerefMut for Vector {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.dim(), rhs.dim(), "add: dimension mismatch");
        Vector::from_fn(self.dim(), |i| self.0[i] + rhs.0[i])
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.dim(), rhs.dim(), "sub: dimension mismatch");
        Vector::from_fn(self.dim(), |i| self.0[i] - rhs.0[i])
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        self.scaled(s)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_dim() {
        let v = Vector::zeros(5);
        assert_eq!(v.dim(), 5);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_builds_indices() {
        let v = Vector::from_fn(4, |i| i as f64 * 2.0);
        assert_eq!(v.as_slice(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn dot_product_known_value() {
        let a = Vector::from([1.0, 2.0, 3.0]);
        let b = Vector::from([4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn dot_unrolled_matches_naive_on_odd_lengths() {
        for n in 0..23 {
            let a: Vec<f64> = (0..n).map(|i| (i as f64) * 0.37 - 1.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!(
                (dot_slices(&a, &b) - naive).abs() < 1e-12,
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "dot: dimension mismatch")]
    fn dot_panics_on_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        let _ = a.dot(&b);
    }

    #[test]
    fn norms() {
        let v = Vector::from([3.0, -4.0]);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = Vector::from([1.0, 1.0, 1.0, 1.0]);
        v.normalize_mut();
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!((v[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = Vector::zeros(3);
        v.normalize_mut();
        assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut v = Vector::from([1.0, 2.0]);
        let w = Vector::from([10.0, 20.0]);
        v.axpy(0.5, &w);
        assert_eq!(v.as_slice(), &[6.0, 12.0]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Vector::from([1.0, 2.0]);
        let b = Vector::from([3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn argmax_first_max_wins() {
        let v = Vector::from([1.0, 3.0, 3.0, 2.0]);
        assert_eq!(v.argmax(), Some(1));
        assert_eq!(Vector::zeros(0).argmax(), None);
        assert_eq!(Vector::from([f64::NAN, 1.0]).argmax(), None);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Vector::from([1.0, 2.0]).is_finite());
        assert!(!Vector::from([1.0, f64::NAN]).is_finite());
        assert!(!Vector::from([f64::INFINITY]).is_finite());
    }

    #[test]
    fn display_formats() {
        let v = Vector::from([1.0, -0.5]);
        assert_eq!(v.to_string(), "[1.000000, -0.500000]");
    }

    #[test]
    fn sum_and_filled() {
        let v = Vector::filled(4, 0.25);
        assert!((v.sum() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_iterator() {
        let v: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }
}

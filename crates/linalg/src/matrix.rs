//! Owned dense row-major matrix.

use crate::{LinalgError, Vector};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// An owned dense `rows × cols` matrix of `f64` in row-major layout.
///
/// The FASEA algorithms only ever need small square matrices (`d ≤ 20`
/// in the paper's experiments), so the representation is a single
/// contiguous `Vec<f64>` — cache-friendly and allocation-free once built.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates `λ · I` — the ridge regularisation seed of the bandit Gram
    /// matrix (`Y ← λ I_{d×d}`, line 1 of Algorithms 1/3/4).
    pub fn scaled_identity(n: usize, lambda: f64) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = lambda;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_rows: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col index out of bounds");
        Vector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Borrows the raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    /// Panics if `x.dim() != self.cols()`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(x.dim(), self.cols, "matvec: dimension mismatch");
        Vector::from_fn(self.rows, |r| crate::vector::dot_slices(self.row(r), x))
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: stream through `other` row-wise for locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Symmetric rank-1 update `self += alpha · x xᵀ`.
    ///
    /// This is the Gram-matrix update `Y ← Y + x_{t,v} x_{t,v}ᵀ` of
    /// Algorithms 1/3/4 (line "Y ← Y + Σ x xᵀ").
    ///
    /// # Panics
    /// Panics if the matrix is not square of dimension `x.dim()`.
    pub fn add_outer(&mut self, x: &Vector, alpha: f64) {
        assert!(self.is_square(), "add_outer: matrix must be square");
        assert_eq!(x.dim(), self.rows, "add_outer: dimension mismatch");
        let n = self.rows;
        for r in 0..n {
            let xr = alpha * x[r];
            let row = &mut self.data[r * n..(r + 1) * n];
            for (c, entry) in row.iter_mut().enumerate() {
                *entry += xr * x[c];
            }
        }
    }

    /// Quadratic form `xᵀ · self · x`.
    ///
    /// UCB's confidence width (Algorithm 3 line 8) is
    /// `α √(xᵀ Y⁻¹ x)`; this computes the inner quadratic form against an
    /// explicit matrix (usually a maintained inverse).
    ///
    /// # Panics
    /// Panics if the matrix is not square of dimension `x.dim()`.
    pub fn quadratic_form(&self, x: &Vector) -> f64 {
        assert!(self.is_square(), "quadratic_form: matrix must be square");
        assert_eq!(x.dim(), self.rows, "quadratic_form: dimension mismatch");
        let n = self.rows;
        let mut acc = 0.0;
        for r in 0..n {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            acc += xr * crate::vector::dot_slices(&self.data[r * n..(r + 1) * n], x);
        }
        acc
    }

    /// Frobenius norm `√(Σ a_{ij}²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference to `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: row mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: col mismatch");
        crate::max_abs_diff(&self.data, &other.data)
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if the matrix is square and symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrises the matrix in place: `A ← (A + Aᵀ)/2`. Useful to wash
    /// out asymmetric round-off before a Cholesky factorisation.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn symmetrize(&mut self) -> Result<(), LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare(self.rows, self.cols));
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
        Ok(())
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace: matrix must be square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "add: row mismatch");
        assert_eq!(self.cols, rhs.cols, "add: col mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + rhs[(r, c)])
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "sub: row mismatch");
        assert_eq!(self.cols, rhs.cols, "sub: col mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] - rhs[(r, c)])
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] * s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Outer product `x yᵀ` as a fresh matrix.
pub fn outer(x: &Vector, y: &Vector) -> Matrix {
    Matrix::from_fn(x.dim(), y.dim(), |r, c| x[r] * y[c])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_rows(2, 2, vec![a, b, c, d])
    }

    #[test]
    fn identity_and_scaled_identity() {
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let l = Matrix::scaled_identity(3, 2.5);
        assert_eq!(l[(2, 2)], 2.5);
        assert_eq!(l[(1, 0)], 0.0);
        assert_eq!(l.trace(), 7.5);
    }

    #[test]
    fn matvec_known() {
        let m = m2(1.0, 2.0, 3.0, 4.0);
        let x = Vector::from([5.0, 6.0]);
        let y = m.matvec(&x);
        assert_eq!(y.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn matmul_known() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn add_outer_matches_explicit_outer() {
        let x = Vector::from([1.0, 2.0, 3.0]);
        let mut m = Matrix::identity(3);
        m.add_outer(&x, 2.0);
        let expect = &Matrix::identity(3) + &(&outer(&x, &x) * 2.0);
        assert!(m.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn quadratic_form_known() {
        // x^T A x with A = [[2,1],[1,3]], x = [1,2] => 2 + 2*1*2 + 3*4 = 18
        let a = m2(2.0, 1.0, 1.0, 3.0);
        let x = Vector::from([1.0, 2.0]);
        assert!((a.quadratic_form(&x) - 18.0).abs() < 1e-14);
    }

    #[test]
    fn quadratic_form_identity_is_norm_sq() {
        let x = Vector::from([0.3, -0.4, 0.5]);
        let i = Matrix::identity(3);
        assert!((i.quadratic_form(&x) - x.norm_sq()).abs() < 1e-14);
    }

    #[test]
    fn symmetry_checks() {
        let s = m2(1.0, 2.0, 2.0, 5.0);
        assert!(s.is_symmetric(0.0));
        let a = m2(1.0, 2.0, 2.1, 5.0);
        assert!(!a.is_symmetric(1e-3));
        assert!(a.is_symmetric(0.2));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    fn symmetrize_averages() {
        let mut a = m2(1.0, 2.0, 4.0, 5.0);
        a.symmetrize().unwrap();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
        let mut rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.symmetrize(),
            Err(LinalgError::NotSquare(2, 3))
        ));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m2(3.0, 0.0, 0.0, 4.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn row_col_access() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn operators() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(10.0, 20.0, 30.0, 40.0);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "from_rows")]
    fn from_rows_length_check() {
        let _ = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn is_finite_detects_bad_entries() {
        let mut a = Matrix::identity(2);
        assert!(a.is_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn display_has_rows() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert_eq!(s.lines().count(), 2);
    }
}

//! Owned dense row-major matrix.

use crate::{LinalgError, Vector};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// An owned dense `rows × cols` matrix of `f64` in row-major layout.
///
/// The FASEA algorithms only ever need small square matrices (`d ≤ 20`
/// in the paper's experiments), so the representation is a single
/// contiguous `Vec<f64>` — cache-friendly and allocation-free once built.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates `λ · I` — the ridge regularisation seed of the bandit Gram
    /// matrix (`Y ← λ I_{d×d}`, line 1 of Algorithms 1/3/4).
    pub fn scaled_identity(n: usize, lambda: f64) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = lambda;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_rows: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new [`Vector`].
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols, "col index out of bounds");
        Vector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Borrows the raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    /// Panics if `x.dim() != self.cols()`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        let mut out = Vector::zeros(self.rows);
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix–vector product written into a caller-owned buffer —
    /// allocation-free and bit-identical to [`Matrix::matvec`] (same
    /// per-row summation order).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec_into: output length mismatch");
        for (r, o) in out.iter_mut().enumerate() {
            *o = crate::vector::dot_slices(self.row(r), x);
        }
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix–matrix product written into a caller-owned matrix —
    /// allocation-free and bit-identical to [`Matrix::matmul`]. `out` is
    /// overwritten entirely.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()` or `out` is not
    /// `self.rows() × other.cols()`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        assert_eq!(out.rows, self.rows, "matmul_into: output row mismatch");
        assert_eq!(out.cols, other.cols, "matmul_into: output col mismatch");
        out.data.fill(0.0);
        // ikj loop order: stream through `other` row-wise for locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Symmetric rank-1 update `self += alpha · x xᵀ`.
    ///
    /// This is the Gram-matrix update `Y ← Y + x_{t,v} x_{t,v}ᵀ` of
    /// Algorithms 1/3/4 (line "Y ← Y + Σ x xᵀ").
    ///
    /// # Panics
    /// Panics if the matrix is not square of dimension `x.dim()`.
    pub fn add_outer(&mut self, x: &Vector, alpha: f64) {
        assert!(self.is_square(), "add_outer: matrix must be square");
        assert_eq!(x.dim(), self.rows, "add_outer: dimension mismatch");
        let n = self.rows;
        for r in 0..n {
            let xr = alpha * x[r];
            let row = &mut self.data[r * n..(r + 1) * n];
            for (c, entry) in row.iter_mut().enumerate() {
                *entry += xr * x[c];
            }
        }
    }

    /// Quadratic form `xᵀ · self · x`.
    ///
    /// UCB's confidence width (Algorithm 3 line 8) is
    /// `α √(xᵀ Y⁻¹ x)`; this computes the inner quadratic form against an
    /// explicit matrix (usually a maintained inverse).
    ///
    /// # Panics
    /// Panics if the matrix is not square of dimension `x.dim()`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert!(self.is_square(), "quadratic_form: matrix must be square");
        assert_eq!(x.len(), self.rows, "quadratic_form: dimension mismatch");
        let n = self.rows;
        let mut acc = 0.0;
        for r in 0..n {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            acc += xr * crate::vector::dot_slices(&self.data[r * n..(r + 1) * n], x);
        }
        acc
    }

    /// Batched quadratic forms: `out[i] = x_iᵀ · self · x_i` for every
    /// `dim`-length row `x_i` of the row-major block `xs` (the layout of a
    /// context matrix). One pass over the block with the matrix held hot;
    /// each row's result is bit-identical to [`Matrix::quadratic_form`]
    /// on that row (same skip-zero, same summation order).
    ///
    /// # Panics
    /// Panics if the matrix is not square of dimension `dim`, if
    /// `xs.len()` is not a multiple of `dim`, or if `out.len()` does not
    /// equal the number of rows in `xs`.
    pub fn quadratic_forms_batch(&self, xs: &[f64], dim: usize, out: &mut [f64]) {
        assert!(
            self.is_square(),
            "quadratic_forms_batch: matrix must be square"
        );
        assert_eq!(dim, self.rows, "quadratic_forms_batch: dimension mismatch");
        assert!(
            dim > 0 && xs.len().is_multiple_of(dim),
            "quadratic_forms_batch: block is not row-major n × dim"
        );
        assert_eq!(
            out.len(),
            xs.len() / dim,
            "quadratic_forms_batch: output length mismatch"
        );
        self.qf_batch_impl(xs, dim, out, None);
    }

    /// Fused form of [`Matrix::quadratic_forms_batch`] that also
    /// computes `dots[i] = x_i · y` in the same pass — the UCB scoring
    /// round's point estimate (`x · θ̂`) and squared confidence width
    /// (`xᵀ Y⁻¹ x`) share one transposed walk over the context block.
    /// Each dot is bit-identical to [`crate::dot_slices`]`(x_i, y)`.
    ///
    /// # Panics
    /// As [`Matrix::quadratic_forms_batch`], plus if `y.len() != dim`
    /// or `dots.len() != qf.len()`.
    pub fn quadratic_forms_and_dots_batch(
        &self,
        xs: &[f64],
        dim: usize,
        y: &[f64],
        qf: &mut [f64],
        dots: &mut [f64],
    ) {
        assert!(
            self.is_square(),
            "quadratic_forms_and_dots_batch: matrix must be square"
        );
        assert_eq!(
            dim, self.rows,
            "quadratic_forms_and_dots_batch: dimension mismatch"
        );
        assert!(
            dim > 0 && xs.len().is_multiple_of(dim),
            "quadratic_forms_and_dots_batch: block is not row-major n × dim"
        );
        assert_eq!(
            qf.len(),
            xs.len() / dim,
            "quadratic_forms_and_dots_batch: output length mismatch"
        );
        assert_eq!(y.len(), dim, "quadratic_forms_and_dots_batch: y length");
        assert_eq!(
            dots.len(),
            qf.len(),
            "quadratic_forms_and_dots_batch: dots length mismatch"
        );
        self.qf_batch_impl(xs, dim, qf, Some((y, dots)));
    }

    /// Shared engine for the batched quadratic forms, with an optional
    /// fused per-row dot against a fixed vector.
    ///
    /// Lane-parallel fast path: QF_LANES events advance together, one
    /// matrix row at a time, over a transposed copy of the block. Each
    /// lane performs exactly the scalar sequence (4-way partial sums
    /// per dot, rows in ascending order, left-associated combine), so
    /// the results are bit-identical — lanes are independent, nothing
    /// is reassociated. On x86-64 with AVX the lane loops run as
    /// explicit 4-wide vector mul/add (never FMA, which would contract
    /// and change bits); elsewhere a safe scalar-lane kernel takes the
    /// same shape.
    fn qf_batch_impl(
        &self,
        xs: &[f64],
        dim: usize,
        out: &mut [f64],
        mut dots: Option<(&[f64], &mut [f64])>,
    ) {
        let n = xs.len() / dim;
        let mut xt = [0.0f64; QF_LANES * QF_MAX_DIM]; // xt[j*QF_LANES + e] = x_e[j]
        #[cfg(target_arch = "x86_64")]
        let use_avx = std::arch::is_x86_feature_detected!("avx");
        let mut blk = 0;
        while blk < n {
            let bsz = QF_LANES.min(n - blk);
            let block = &xs[blk * dim..(blk + bsz) * dim];
            // Transpose into lane-major layout, noting zeros as we go.
            // Events containing a zero entry take the scalar path: the
            // scalar kernel *skips* zero rows, and skipping differs
            // from adding `0 · dot` when that row's dot is non-finite.
            let mut has_zero = false;
            if bsz == QF_LANES && dim <= QF_MAX_DIM {
                for (e, x) in block.chunks_exact(dim).enumerate() {
                    for (j, &v) in x.iter().enumerate() {
                        has_zero |= v == 0.0;
                        xt[j * QF_LANES + e] = v;
                    }
                }
            }
            if bsz < QF_LANES || dim > QF_MAX_DIM || has_zero {
                for (e, (x, o)) in block
                    .chunks_exact(dim)
                    .zip(out[blk..].iter_mut())
                    .enumerate()
                {
                    *o = self.quadratic_form(x);
                    if let Some((y, d)) = dots.as_mut() {
                        d[blk + e] = crate::vector::dot_slices(x, y);
                    }
                }
                blk += bsz;
                continue;
            }
            let mut acc = [0.0f64; QF_LANES];
            let mut dacc = [0.0f64; QF_LANES];
            #[cfg(target_arch = "x86_64")]
            if use_avx {
                // SAFETY: AVX availability was just detected; `xt`
                // holds `dim` full lane groups and `self.data` is a
                // `dim × dim` square (asserted by the public callers).
                unsafe {
                    qf_block_avx(&self.data, dim, &xt, &mut acc);
                    if let Some((y, d)) = dots.as_mut() {
                        dot_block_avx(y, dim, &xt, &mut dacc);
                        d[blk..blk + QF_LANES].copy_from_slice(&dacc);
                    }
                }
                out[blk..blk + QF_LANES].copy_from_slice(&acc);
                blk += QF_LANES;
                continue;
            }
            qf_block_lanes(&self.data, dim, &xt, &mut acc);
            if let Some((y, d)) = dots.as_mut() {
                dot_block_lanes(y, dim, &xt, &mut dacc);
                d[blk..blk + QF_LANES].copy_from_slice(&dacc);
            }
            out[blk..blk + QF_LANES].copy_from_slice(&acc);
            blk += QF_LANES;
        }
    }

    /// Frobenius norm `√(Σ a_{ij}²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference to `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: row mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: col mismatch");
        crate::max_abs_diff(&self.data, &other.data)
    }

    /// `true` if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// `true` if the matrix is square and symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrises the matrix in place: `A ← (A + Aᵀ)/2`. Useful to wash
    /// out asymmetric round-off before a Cholesky factorisation.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square matrices.
    pub fn symmetrize(&mut self) -> Result<(), LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare(self.rows, self.cols));
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = 0.5 * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
        Ok(())
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace: matrix must be square");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "add: row mismatch");
        assert_eq!(self.cols, rhs.cols, "add: col mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] + rhs[(r, c)])
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "sub: row mismatch");
        assert_eq!(self.cols, rhs.cols, "sub: col mismatch");
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] - rhs[(r, c)])
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, c)] * s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Outer product `x yᵀ` as a fresh matrix.
pub fn outer(x: &Vector, y: &Vector) -> Matrix {
    Matrix::from_fn(x.dim(), y.dim(), |r, c| x[r] * y[c])
}

/// Events processed per lane group by [`Matrix::quadratic_forms_batch`].
///
/// Public because callers that *shard* a context block across threads
/// must cut at multiples of this lane width: the batched kernels start
/// a fresh lane group at offset 0 of whatever slice they are handed, so
/// a sub-range is bit-identical to the same rows of a full-range call
/// exactly when its start row is `QF_LANES`-aligned.
pub const QF_LANES: usize = 8;
/// Largest dimension the stack-resident transposed block supports;
/// larger systems fall back to the scalar kernel (FASEA uses d ≤ 20).
const QF_MAX_DIM: usize = 64;

/// Safe lane kernel: `acc[e] = x_eᵀ M x_e` for the 8 events whose
/// transposed contexts sit in `xt` (`xt[j*8 + e] = x_e[j]`). Per lane
/// this is exactly the scalar `quadratic_form` sequence — 4 partial
/// sums per row dot, combined left-to-right, rows ascending — so each
/// result is bit-identical to the scalar call. The `e` loops are over
/// contiguous 8-wide groups, which the compiler auto-vectorises.
fn qf_block_lanes(m: &[f64], dim: usize, xt: &[f64], acc: &mut [f64; QF_LANES]) {
    let chunks = dim / 4;
    for r in 0..dim {
        let row = &m[r * dim..(r + 1) * dim];
        let mut s0 = [0.0f64; QF_LANES];
        let mut s1 = [0.0f64; QF_LANES];
        let mut s2 = [0.0f64; QF_LANES];
        let mut s3 = [0.0f64; QF_LANES];
        for i in 0..chunks {
            let j = i * 4;
            let x0 = &xt[j * QF_LANES..(j + 1) * QF_LANES];
            let x1 = &xt[(j + 1) * QF_LANES..(j + 2) * QF_LANES];
            let x2 = &xt[(j + 2) * QF_LANES..(j + 3) * QF_LANES];
            let x3 = &xt[(j + 3) * QF_LANES..(j + 4) * QF_LANES];
            for e in 0..QF_LANES {
                s0[e] += row[j] * x0[e];
                s1[e] += row[j + 1] * x1[e];
                s2[e] += row[j + 2] * x2[e];
                s3[e] += row[j + 3] * x3[e];
            }
        }
        let mut dot = [0.0f64; QF_LANES];
        for e in 0..QF_LANES {
            dot[e] = s0[e] + s1[e] + s2[e] + s3[e];
        }
        for j in chunks * 4..dim {
            let xj = &xt[j * QF_LANES..(j + 1) * QF_LANES];
            for e in 0..QF_LANES {
                dot[e] += row[j] * xj[e];
            }
        }
        let xr = &xt[r * QF_LANES..(r + 1) * QF_LANES];
        for e in 0..QF_LANES {
            acc[e] += xr[e] * dot[e];
        }
    }
}

/// Safe lane kernel for the fused per-row dots: `dot[e] = x_e · y` for
/// the 8 events transposed into `xt`. Per lane this is exactly the
/// [`crate::dot_slices`] sequence, so each result is bit-identical to
/// the scalar call.
fn dot_block_lanes(y: &[f64], dim: usize, xt: &[f64], dot: &mut [f64; QF_LANES]) {
    let chunks = dim / 4;
    let mut s0 = [0.0f64; QF_LANES];
    let mut s1 = [0.0f64; QF_LANES];
    let mut s2 = [0.0f64; QF_LANES];
    let mut s3 = [0.0f64; QF_LANES];
    for i in 0..chunks {
        let j = i * 4;
        let x0 = &xt[j * QF_LANES..(j + 1) * QF_LANES];
        let x1 = &xt[(j + 1) * QF_LANES..(j + 2) * QF_LANES];
        let x2 = &xt[(j + 2) * QF_LANES..(j + 3) * QF_LANES];
        let x3 = &xt[(j + 3) * QF_LANES..(j + 4) * QF_LANES];
        for e in 0..QF_LANES {
            s0[e] += x0[e] * y[j];
            s1[e] += x1[e] * y[j + 1];
            s2[e] += x2[e] * y[j + 2];
            s3[e] += x3[e] * y[j + 3];
        }
    }
    for e in 0..QF_LANES {
        dot[e] = s0[e] + s1[e] + s2[e] + s3[e];
    }
    for j in chunks * 4..dim {
        let xj = &xt[j * QF_LANES..(j + 1) * QF_LANES];
        for e in 0..QF_LANES {
            dot[e] += xj[e] * y[j];
        }
    }
}

/// AVX form of [`dot_block_lanes`] — `vmulpd`/`vaddpd` only, no FMA,
/// so each lane remains bit-identical to the scalar [`crate::dot_slices`].
///
/// # Safety
/// The caller must ensure AVX is available, `y.len() >= dim`, and `xt`
/// holds at least `dim` lane groups of 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn dot_block_avx(y: &[f64], dim: usize, xt: &[f64], dot: &mut [f64; QF_LANES]) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd,
    };
    debug_assert!(y.len() >= dim && xt.len() >= dim * QF_LANES);
    let chunks = dim / 4;
    let xp = xt.as_ptr();
    let mut s_lo = [_mm256_setzero_pd(); 4];
    let mut s_hi = [_mm256_setzero_pd(); 4];
    for i in 0..chunks {
        let j = i * 4;
        for (k, (sl, sh)) in s_lo.iter_mut().zip(s_hi.iter_mut()).enumerate() {
            let yv = _mm256_set1_pd(*y.get_unchecked(j + k));
            let p = xp.add((j + k) * QF_LANES);
            *sl = _mm256_add_pd(*sl, _mm256_mul_pd(_mm256_loadu_pd(p), yv));
            *sh = _mm256_add_pd(*sh, _mm256_mul_pd(_mm256_loadu_pd(p.add(4)), yv));
        }
    }
    let mut dot_lo = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(s_lo[0], s_lo[1]), s_lo[2]),
        s_lo[3],
    );
    let mut dot_hi = _mm256_add_pd(
        _mm256_add_pd(_mm256_add_pd(s_hi[0], s_hi[1]), s_hi[2]),
        s_hi[3],
    );
    for j in chunks * 4..dim {
        let yv = _mm256_set1_pd(*y.get_unchecked(j));
        let p = xp.add(j * QF_LANES);
        dot_lo = _mm256_add_pd(dot_lo, _mm256_mul_pd(_mm256_loadu_pd(p), yv));
        dot_hi = _mm256_add_pd(dot_hi, _mm256_mul_pd(_mm256_loadu_pd(p.add(4)), yv));
    }
    _mm256_storeu_pd(dot.as_mut_ptr(), dot_lo);
    _mm256_storeu_pd(dot.as_mut_ptr().add(4), dot_hi);
}

/// AVX form of [`qf_block_lanes`]: the same operation sequence with the
/// 8 lanes held in two 256-bit registers per partial sum. Only `vmulpd`
/// and `vaddpd` are emitted — never FMA, which would contract the
/// multiply-add and change the result bits — so each lane remains
/// bit-identical to the scalar `quadratic_form`.
///
/// # Safety
/// The caller must ensure AVX is available (`is_x86_feature_detected!`),
/// that `m` holds a `dim × dim` row-major square, and that `xt` holds at
/// least `dim` lane groups of 8.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn qf_block_avx(m: &[f64], dim: usize, xt: &[f64], acc: &mut [f64; QF_LANES]) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd,
    };
    debug_assert!(m.len() >= dim * dim && xt.len() >= dim * QF_LANES);
    let chunks = dim / 4;
    let xp = xt.as_ptr();
    let mut acc_lo = _mm256_setzero_pd();
    let mut acc_hi = _mm256_setzero_pd();
    for r in 0..dim {
        let rp = m.as_ptr().add(r * dim);
        let mut s_lo = [_mm256_setzero_pd(); 4];
        let mut s_hi = [_mm256_setzero_pd(); 4];
        for i in 0..chunks {
            let j = i * 4;
            for (k, (sl, sh)) in s_lo.iter_mut().zip(s_hi.iter_mut()).enumerate() {
                let rv = _mm256_set1_pd(*rp.add(j + k));
                let p = xp.add((j + k) * QF_LANES);
                *sl = _mm256_add_pd(*sl, _mm256_mul_pd(rv, _mm256_loadu_pd(p)));
                *sh = _mm256_add_pd(*sh, _mm256_mul_pd(rv, _mm256_loadu_pd(p.add(4))));
            }
        }
        let mut dot_lo = _mm256_add_pd(
            _mm256_add_pd(_mm256_add_pd(s_lo[0], s_lo[1]), s_lo[2]),
            s_lo[3],
        );
        let mut dot_hi = _mm256_add_pd(
            _mm256_add_pd(_mm256_add_pd(s_hi[0], s_hi[1]), s_hi[2]),
            s_hi[3],
        );
        for j in chunks * 4..dim {
            let rv = _mm256_set1_pd(*rp.add(j));
            let p = xp.add(j * QF_LANES);
            dot_lo = _mm256_add_pd(dot_lo, _mm256_mul_pd(rv, _mm256_loadu_pd(p)));
            dot_hi = _mm256_add_pd(dot_hi, _mm256_mul_pd(rv, _mm256_loadu_pd(p.add(4))));
        }
        let pr = xp.add(r * QF_LANES);
        acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(_mm256_loadu_pd(pr), dot_lo));
        acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(_mm256_loadu_pd(pr.add(4)), dot_hi));
    }
    _mm256_storeu_pd(acc.as_mut_ptr(), acc_lo);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), acc_hi);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_rows(2, 2, vec![a, b, c, d])
    }

    #[test]
    fn identity_and_scaled_identity() {
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let l = Matrix::scaled_identity(3, 2.5);
        assert_eq!(l[(2, 2)], 2.5);
        assert_eq!(l[(1, 0)], 0.0);
        assert_eq!(l.trace(), 7.5);
    }

    #[test]
    fn matvec_known() {
        let m = m2(1.0, 2.0, 3.0, 4.0);
        let x = Vector::from([5.0, 6.0]);
        let y = m.matvec(&x);
        assert_eq!(y.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn matmul_known() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn add_outer_matches_explicit_outer() {
        let x = Vector::from([1.0, 2.0, 3.0]);
        let mut m = Matrix::identity(3);
        m.add_outer(&x, 2.0);
        let expect = &Matrix::identity(3) + &(&outer(&x, &x) * 2.0);
        assert!(m.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn quadratic_form_known() {
        // x^T A x with A = [[2,1],[1,3]], x = [1,2] => 2 + 2*1*2 + 3*4 = 18
        let a = m2(2.0, 1.0, 1.0, 3.0);
        let x = Vector::from([1.0, 2.0]);
        assert!((a.quadratic_form(&x) - 18.0).abs() < 1e-14);
    }

    #[test]
    fn quadratic_form_identity_is_norm_sq() {
        let x = Vector::from([0.3, -0.4, 0.5]);
        let i = Matrix::identity(3);
        assert!((i.quadratic_form(&x) - x.norm_sq()).abs() < 1e-14);
    }

    #[test]
    fn symmetry_checks() {
        let s = m2(1.0, 2.0, 2.0, 5.0);
        assert!(s.is_symmetric(0.0));
        let a = m2(1.0, 2.0, 2.1, 5.0);
        assert!(!a.is_symmetric(1e-3));
        assert!(a.is_symmetric(0.2));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    fn symmetrize_averages() {
        let mut a = m2(1.0, 2.0, 4.0, 5.0);
        a.symmetrize().unwrap();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
        let mut rect = Matrix::zeros(2, 3);
        assert!(matches!(
            rect.symmetrize(),
            Err(LinalgError::NotSquare(2, 3))
        ));
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m2(3.0, 0.0, 0.0, 4.0);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn row_col_access() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(a.col(2).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn operators() {
        let a = m2(1.0, 2.0, 3.0, 4.0);
        let b = m2(10.0, 20.0, 30.0, 40.0);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "from_rows")]
    fn from_rows_length_check() {
        let _ = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn is_finite_detects_bad_entries() {
        let mut a = Matrix::identity(2);
        assert!(a.is_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn display_has_rows() {
        let a = Matrix::identity(2);
        let s = a.to_string();
        assert_eq!(s.lines().count(), 2);
    }

    /// Deterministic non-zero pseudo-random values for kernel tests.
    fn lcg_fill(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136415821433261)
            .wrapping_add(1442695040888963407);
        // Map to (0, 1] then shift away from zero so the skip-zero
        // fallback is not triggered unless a test wants it.
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) + 0.001
    }

    fn random_square(dim: usize, seed: &mut u64) -> Matrix {
        Matrix::from_fn(dim, dim, |_, _| lcg_fill(seed) - 0.5)
    }

    #[test]
    fn batched_quadratic_forms_bit_exact_vs_scalar() {
        // n = 20 is deliberately not a multiple of the lane width: the
        // first 16 events take the lane (AVX where available) path, the
        // last 4 take the scalar tail, and every result must be
        // bit-identical to the per-row reference.
        let mut seed = 0x5eed0001u64;
        for dim in [1usize, 5, 20, 64] {
            let m = random_square(dim, &mut seed);
            let n = 20;
            let xs: Vec<f64> = (0..n * dim).map(|_| lcg_fill(&mut seed) - 0.5).collect();
            let mut out = vec![0.0; n];
            m.quadratic_forms_batch(&xs, dim, &mut out);
            for i in 0..n {
                let reference = m.quadratic_form(&xs[i * dim..(i + 1) * dim]);
                assert_eq!(
                    out[i].to_bits(),
                    reference.to_bits(),
                    "dim={dim} event={i}: batched != scalar"
                );
            }
        }
    }

    #[test]
    fn batched_quadratic_forms_zero_entries_use_scalar_fallback() {
        // quadratic_form skips rows where x[r] == 0.0; blocks containing
        // zeros must route to the scalar fallback and stay bit-exact.
        let mut seed = 0x5eed0002u64;
        let dim = 8;
        let m = random_square(dim, &mut seed);
        let n = 17;
        let mut xs: Vec<f64> = (0..n * dim).map(|_| lcg_fill(&mut seed) - 0.5).collect();
        for i in 0..n {
            xs[i * dim + i % dim] = 0.0;
        }
        let mut out = vec![0.0; n];
        m.quadratic_forms_batch(&xs, dim, &mut out);
        for i in 0..n {
            let reference = m.quadratic_form(&xs[i * dim..(i + 1) * dim]);
            assert_eq!(out[i].to_bits(), reference.to_bits(), "event {i}");
        }
    }

    #[test]
    fn batched_quadratic_forms_dim_above_lane_buffer_falls_back() {
        // dim > QF_MAX_DIM exceeds the stack transpose buffer; the
        // batch must silently take the scalar path, not panic.
        let mut seed = 0x5eed0003u64;
        let dim = 70;
        let m = random_square(dim, &mut seed);
        let n = 9;
        let xs: Vec<f64> = (0..n * dim).map(|_| lcg_fill(&mut seed) - 0.5).collect();
        let mut out = vec![0.0; n];
        m.quadratic_forms_batch(&xs, dim, &mut out);
        for i in 0..n {
            let reference = m.quadratic_form(&xs[i * dim..(i + 1) * dim]);
            assert_eq!(out[i].to_bits(), reference.to_bits(), "event {i}");
        }
    }

    #[test]
    fn fused_quadratic_forms_and_dots_bit_exact() {
        let mut seed = 0x5eed0004u64;
        for dim in [3usize, 20] {
            let m = random_square(dim, &mut seed);
            let y: Vec<f64> = (0..dim).map(|_| lcg_fill(&mut seed) - 0.5).collect();
            let n = 21;
            let xs: Vec<f64> = (0..n * dim).map(|_| lcg_fill(&mut seed) - 0.5).collect();
            let mut qf = vec![0.0; n];
            let mut dots = vec![0.0; n];
            m.quadratic_forms_and_dots_batch(&xs, dim, &y, &mut qf, &mut dots);
            let mut qf_only = vec![0.0; n];
            m.quadratic_forms_batch(&xs, dim, &mut qf_only);
            for i in 0..n {
                let x = &xs[i * dim..(i + 1) * dim];
                assert_eq!(
                    qf[i].to_bits(),
                    m.quadratic_form(x).to_bits(),
                    "dim={dim} event={i}: fused qf != scalar"
                );
                assert_eq!(
                    qf[i].to_bits(),
                    qf_only[i].to_bits(),
                    "dim={dim} event={i}: fused qf != unfused qf"
                );
                assert_eq!(
                    dots[i].to_bits(),
                    crate::vector::dot_slices(x, &y).to_bits(),
                    "dim={dim} event={i}: fused dot != dot_slices"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dots length mismatch")]
    fn fused_batch_checks_dots_length() {
        let m = Matrix::identity(2);
        let xs = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 1.0];
        let mut qf = [0.0; 2];
        let mut dots = [0.0; 1];
        m.quadratic_forms_and_dots_batch(&xs, 2, &y, &mut qf, &mut dots);
    }
}

//! Incrementally maintained inverse of a ridge Gram matrix.

use crate::{LinalgError, Matrix, Vector};

/// Maintains `Y = λI + Σ x xᵀ` **and** `Y⁻¹` under rank-1 updates.
///
/// Every FASEA policy updates its Gram matrix once per arranged event per
/// round (Algorithms 1/3/4, lines "Y ← Y + Σ_{v∈A_t} x xᵀ") and then needs
/// `Y⁻¹` — for the ridge estimate `θ̂ = Y⁻¹ b`, for UCB's per-event
/// quadratic form, and (in TS) for the sampling covariance. Re-inverting
/// from scratch is `O(d³)` per round; the Sherman–Morrison identity
///
/// ```text
/// (Y + x xᵀ)⁻¹ = Y⁻¹ − (Y⁻¹ x)(Y⁻¹ x)ᵀ / (1 + xᵀ Y⁻¹ x)
/// ```
///
/// makes each update `O(d²)`. Because `Y ⪰ λI` stays SPD under positive
/// rank-1 updates, the denominator `1 + xᵀY⁻¹x` is always ≥ 1, so the
/// update is unconditionally stable here; the error branch only triggers
/// on non-finite input.
///
/// The struct also keeps the explicit `Y` so that callers needing a fresh
/// Cholesky factor (TS sampling) can build one, and so that tests can
/// verify the maintained inverse against a direct factorisation.
#[derive(Debug, Clone)]
pub struct ShermanMorrisonInverse {
    y: Matrix,
    y_inv: Matrix,
    lambda: f64,
    updates: u64,
    /// Scratch buffer for `Y⁻¹ x`, reused across updates to avoid
    /// per-round allocation (hot path: called once per arranged event).
    scratch: Vector,
}

impl ShermanMorrisonInverse {
    /// Creates the inverse tracker for `Y = λ I_{d×d}`.
    ///
    /// # Panics
    /// Panics if `lambda <= 0` or `dim == 0` — the ridge seed must be SPD.
    pub fn new(dim: usize, lambda: f64) -> Self {
        assert!(dim > 0, "ShermanMorrisonInverse: dim must be positive");
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "ShermanMorrisonInverse: lambda must be positive and finite"
        );
        ShermanMorrisonInverse {
            y: Matrix::scaled_identity(dim, lambda),
            y_inv: Matrix::scaled_identity(dim, 1.0 / lambda),
            lambda,
            updates: 0,
            scratch: Vector::zeros(dim),
        }
    }

    /// Rebuilds a tracker from a previously saved Gram matrix
    /// (snapshot restore). `Y⁻¹` is re-derived by factorisation, never
    /// trusted from outside.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] / [`LinalgError::NotPositiveDefinite`]
    ///   / [`LinalgError::NonFinite`] if `y` is not a valid SPD matrix.
    ///
    /// # Panics
    /// Panics if `lambda <= 0` (same contract as [`ShermanMorrisonInverse::new`]).
    pub fn from_state(y: Matrix, lambda: f64, updates: u64) -> Result<Self, LinalgError> {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "ShermanMorrisonInverse: lambda must be positive and finite"
        );
        let mut y = y;
        y.symmetrize()?;
        let y_inv = crate::Cholesky::factor(&y)?.inverse();
        let dim = y.rows();
        Ok(ShermanMorrisonInverse {
            y,
            y_inv,
            lambda,
            updates,
            scratch: Vector::zeros(dim),
        })
    }

    /// Rebuilds a tracker from a previously exported `(Y, Y⁻¹)` pair
    /// **without** re-factorising — the bit-exact restore path of the
    /// personalized model store (`fasea-models`).
    ///
    /// Unlike [`ShermanMorrisonInverse::from_state`], the maintained
    /// inverse is trusted from the caller: a spilled estimator faulted
    /// back in must carry the *exact* `Y⁻¹` bits the Sherman–Morrison
    /// recursion had accumulated, because a Cholesky-re-derived inverse
    /// differs in the low mantissa bits and would break the store's
    /// bit-equal residency contract. Callers must only feed back a pair
    /// previously read off a live tracker ([`ShermanMorrisonInverse::y`]
    /// / [`ShermanMorrisonInverse::y_inv`]); shape and finiteness are
    /// still validated.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] if either matrix is not square.
    /// * [`LinalgError::DimensionMismatch`] if the two shapes differ.
    /// * [`LinalgError::NonFinite`] if either matrix carries NaN/∞.
    ///
    /// # Panics
    /// Panics if `lambda <= 0` (same contract as
    /// [`ShermanMorrisonInverse::new`]).
    pub fn from_raw_parts(
        y: Matrix,
        y_inv: Matrix,
        lambda: f64,
        updates: u64,
    ) -> Result<Self, LinalgError> {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "ShermanMorrisonInverse: lambda must be positive and finite"
        );
        if !y.is_square() {
            return Err(LinalgError::NotSquare(y.rows(), y.cols()));
        }
        if !y_inv.is_square() {
            return Err(LinalgError::NotSquare(y_inv.rows(), y_inv.cols()));
        }
        if y.rows() != y_inv.rows() {
            return Err(LinalgError::DimensionMismatch(y.rows(), y_inv.rows()));
        }
        if !y.is_finite() || !y_inv.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let dim = y.rows();
        Ok(ShermanMorrisonInverse {
            y,
            y_inv,
            lambda,
            updates,
            scratch: Vector::zeros(dim),
        })
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.y.rows()
    }

    /// The ridge regularisation strength λ this tracker was seeded with.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Number of rank-1 updates applied so far.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Borrows the maintained Gram matrix `Y`.
    pub fn y(&self) -> &Matrix {
        &self.y
    }

    /// Borrows the maintained inverse `Y⁻¹`.
    pub fn y_inv(&self) -> &Matrix {
        &self.y_inv
    }

    /// Applies the rank-1 update `Y ← Y + x xᵀ`, maintaining `Y⁻¹`.
    ///
    /// # Errors
    /// * [`LinalgError::DimensionMismatch`] if `x.dim() != self.dim()`.
    /// * [`LinalgError::NonFinite`] if `x` contains NaN/∞.
    /// * [`LinalgError::SingularUpdate`] if the denominator is not ≥ 1
    ///   (cannot happen for finite input on an SPD state; kept as a
    ///   defensive check against accumulated corruption).
    pub fn rank1_update(&mut self, x: &[f64]) -> Result<(), LinalgError> {
        let d = self.dim();
        if x.len() != d {
            return Err(LinalgError::DimensionMismatch(d, x.len()));
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(LinalgError::NonFinite);
        }
        // u = Y^{-1} x  (into the scratch buffer)
        for r in 0..d {
            self.scratch[r] = crate::vector::dot_slices(self.y_inv.row(r), x);
        }
        let denom = 1.0 + crate::vector::dot_slices(x, &self.scratch);
        // NaN-safe guard: on an SPD state denom >= 1 always holds, so
        // anything below 0.5 (or non-finite) means corrupted state.
        if denom.is_nan() || denom < 0.5 {
            return Err(LinalgError::SingularUpdate(denom));
        }
        let inv_denom = 1.0 / denom;
        // Y^{-1} -= u u^T / denom  and  Y += x x^T.
        for r in 0..d {
            let ur = self.scratch[r] * inv_denom;
            let xr = x[r];
            let inv_row = self.y_inv.row_mut(r);
            for (c, entry) in inv_row.iter_mut().enumerate() {
                *entry -= ur * self.scratch[c];
            }
            let y_row = self.y.row_mut(r);
            for (c, entry) in y_row.iter_mut().enumerate() {
                *entry += xr * x[c];
            }
        }
        self.updates += 1;
        Ok(())
    }

    /// `Y⁻¹ b` — the ridge regression estimate `θ̂` when `b = Σ r x`.
    ///
    /// # Panics
    /// Panics if `b.dim() != self.dim()`.
    pub fn solve(&self, b: &Vector) -> Vector {
        self.y_inv.matvec(b)
    }

    /// `Y⁻¹ b` written into a caller-owned buffer — the allocation-free
    /// form of [`ShermanMorrisonInverse::solve`], bit-identical to it.
    ///
    /// # Panics
    /// Panics if `b.len()` or `out.len()` differ from `self.dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        self.y_inv.matvec_into(b, out);
    }

    /// `xᵀ Y⁻¹ x` — UCB's squared confidence width (Algorithm 3 line 8).
    ///
    /// # Panics
    /// Panics if `x.len() != self.dim()`.
    pub fn inv_quadratic_form(&self, x: &[f64]) -> f64 {
        self.y_inv.quadratic_form(x)
    }

    /// Batched confidence widths: for every `dim`-length row `x` of the
    /// row-major block `xs`, writes `√(max(xᵀ Y⁻¹ x, 0))` — the UCB width
    /// without the `α` multiplier — into `out`. One blocked pass with
    /// `Y⁻¹` held hot; each row is bit-identical to
    /// `inv_quadratic_form(x).max(0.0).sqrt()`.
    ///
    /// # Panics
    /// Panics on a block/output shape mismatch (see
    /// [`crate::Matrix::quadratic_forms_batch`]).
    pub fn widths_into(&self, xs: &[f64], dim: usize, out: &mut [f64]) {
        self.y_inv.quadratic_forms_batch(xs, dim, out);
        for w in out.iter_mut() {
            *w = w.max(0.0).sqrt();
        }
    }

    /// Fused UCB scoring pass: per row of `xs`, the confidence width
    /// (as [`ShermanMorrisonInverse::widths_into`]) *and* the point
    /// estimate `x_v · theta` (bit-identical to
    /// [`crate::dot_slices`]), sharing one transposed walk over the
    /// block. This is the per-round kernel of the batched LinUCB path.
    ///
    /// # Panics
    /// Panics on a block/output shape mismatch or if
    /// `theta.len() != dim`.
    pub fn widths_and_dots_into(
        &self,
        xs: &[f64],
        dim: usize,
        theta: &[f64],
        widths: &mut [f64],
        dots: &mut [f64],
    ) {
        self.y_inv
            .quadratic_forms_and_dots_batch(xs, dim, theta, widths, dots);
        for w in widths.iter_mut() {
            *w = w.max(0.0).sqrt();
        }
    }

    /// Sub-range form of [`ShermanMorrisonInverse::widths_into`]: widths
    /// for rows `start_row .. start_row + out.len()` of the row-major
    /// block `xs`, written to `out`.
    ///
    /// This is the shard-safe entry point for parallel scoring: the
    /// batched kernel starts a fresh lane group at the beginning of the
    /// slice it is handed, so the results are bit-identical to the same
    /// rows of a full-range [`ShermanMorrisonInverse::widths_into`] call
    /// exactly when `start_row` is a multiple of [`crate::QF_LANES`]
    /// (debug-asserted).
    ///
    /// # Panics
    /// Panics if the addressed rows fall outside `xs` or on a shape
    /// mismatch (see [`crate::Matrix::quadratic_forms_batch`]).
    pub fn widths_range_into(&self, xs: &[f64], dim: usize, start_row: usize, out: &mut [f64]) {
        debug_assert!(
            start_row.is_multiple_of(crate::QF_LANES),
            "widths_range_into: start_row {start_row} breaks lane alignment"
        );
        let sub = &xs[start_row * dim..(start_row + out.len()) * dim];
        self.y_inv.quadratic_forms_batch(sub, dim, out);
        for w in out.iter_mut() {
            *w = w.max(0.0).sqrt();
        }
    }

    /// Sub-range form of [`ShermanMorrisonInverse::widths_and_dots_into`]:
    /// the fused UCB pass over rows `start_row .. start_row +
    /// widths.len()` of `xs`. Bit-identical to the same rows of the
    /// full-range call when `start_row` is a multiple of
    /// [`crate::QF_LANES`] (debug-asserted) — the sharding contract of
    /// the parallel scoring engine.
    ///
    /// # Panics
    /// Panics if the addressed rows fall outside `xs`, on a shape
    /// mismatch, or if `theta.len() != dim`.
    pub fn widths_and_dots_range_into(
        &self,
        xs: &[f64],
        dim: usize,
        theta: &[f64],
        start_row: usize,
        widths: &mut [f64],
        dots: &mut [f64],
    ) {
        debug_assert!(
            start_row.is_multiple_of(crate::QF_LANES),
            "widths_and_dots_range_into: start_row {start_row} breaks lane alignment"
        );
        let sub = &xs[start_row * dim..(start_row + widths.len()) * dim];
        self.y_inv
            .quadratic_forms_and_dots_batch(sub, dim, theta, widths, dots);
        for w in widths.iter_mut() {
            *w = w.max(0.0).sqrt();
        }
    }

    /// Periodically re-derives `Y⁻¹` from a fresh Cholesky factorisation of
    /// `Y` to wash out accumulated floating-point drift. Long-horizon runs
    /// (the paper uses `T = 100 000`) call this every few thousand rounds.
    ///
    /// # Errors
    /// Propagates factorisation failures (which would indicate `Y` itself
    /// has been corrupted).
    pub fn refresh(&mut self) -> Result<(), LinalgError> {
        // Symmetrise first: the rank-1 updates are symmetric in exact
        // arithmetic but round-off can introduce asymmetry.
        self.y.symmetrize()?;
        let ch = crate::Cholesky::factor(&self.y)?;
        self.y_inv = ch.inverse();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cholesky;

    fn direct_inverse(y: &Matrix) -> Matrix {
        Cholesky::factor(y).unwrap().inverse()
    }

    /// Deterministic pseudo-random vectors without pulling in `rand`.
    fn pseudo_vec(dim: usize, seed: u64) -> Vector {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Vector::from_fn(dim, |_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to [-1, 1].
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn initial_state_is_lambda_identity() {
        let sm = ShermanMorrisonInverse::new(3, 2.0);
        assert!(sm.y().max_abs_diff(&Matrix::scaled_identity(3, 2.0)) < 1e-15);
        assert!(sm.y_inv().max_abs_diff(&Matrix::scaled_identity(3, 0.5)) < 1e-15);
        assert_eq!(sm.update_count(), 0);
        assert_eq!(sm.lambda(), 2.0);
    }

    #[test]
    fn single_update_matches_direct_inverse() {
        let mut sm = ShermanMorrisonInverse::new(3, 1.0);
        let x = Vector::from([0.5, -0.3, 0.8]);
        sm.rank1_update(&x).unwrap();
        let direct = direct_inverse(sm.y());
        assert!(sm.y_inv().max_abs_diff(&direct) < 1e-12);
        assert_eq!(sm.update_count(), 1);
    }

    #[test]
    fn many_updates_track_direct_inverse() {
        let d = 6;
        let mut sm = ShermanMorrisonInverse::new(d, 0.5);
        for i in 0..200 {
            let x = pseudo_vec(d, i).normalized();
            sm.rank1_update(&x).unwrap();
        }
        let direct = direct_inverse(sm.y());
        assert!(
            sm.y_inv().max_abs_diff(&direct) < 1e-8,
            "drift {}",
            sm.y_inv().max_abs_diff(&direct)
        );
    }

    #[test]
    fn refresh_restores_exact_inverse() {
        let d = 5;
        let mut sm = ShermanMorrisonInverse::new(d, 1.0);
        for i in 0..500 {
            let x = pseudo_vec(d, i * 7 + 1).normalized();
            sm.rank1_update(&x).unwrap();
        }
        sm.refresh().unwrap();
        let prod = sm.y().matmul(sm.y_inv());
        assert!(prod.max_abs_diff(&Matrix::identity(d)) < 1e-10);
    }

    #[test]
    fn solve_is_ridge_estimate() {
        let mut sm = ShermanMorrisonInverse::new(2, 1.0);
        let x = Vector::from([1.0, 0.0]);
        sm.rank1_update(&x).unwrap();
        // Y = [[2, 0], [0, 1]], b = [1, 1] => theta = [0.5, 1]
        let theta = sm.solve(&Vector::from([1.0, 1.0]));
        assert!((theta[0] - 0.5).abs() < 1e-14);
        assert!((theta[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn inv_quadratic_form_decreases_along_observed_direction() {
        // Observing x repeatedly must shrink x^T Y^{-1} x (more confidence).
        let mut sm = ShermanMorrisonInverse::new(4, 1.0);
        let x = Vector::from([0.5, 0.5, 0.5, 0.5]);
        let before = sm.inv_quadratic_form(&x);
        sm.rank1_update(&x).unwrap();
        let after = sm.inv_quadratic_form(&x);
        assert!(after < before, "{after} !< {before}");
        // And keeps shrinking.
        sm.rank1_update(&x).unwrap();
        assert!(sm.inv_quadratic_form(&x) < after);
    }

    #[test]
    fn zero_vector_update_is_identity_operation() {
        let mut sm = ShermanMorrisonInverse::new(3, 1.0);
        let before = sm.y_inv().clone();
        sm.rank1_update(&Vector::zeros(3)).unwrap();
        assert!(sm.y_inv().max_abs_diff(&before) < 1e-15);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut sm = ShermanMorrisonInverse::new(3, 1.0);
        let err = sm.rank1_update(&Vector::zeros(2)).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch(3, 2)));
    }

    #[test]
    fn rejects_non_finite() {
        let mut sm = ShermanMorrisonInverse::new(2, 1.0);
        let err = sm.rank1_update(&Vector::from([f64::NAN, 0.0])).unwrap_err();
        assert!(matches!(err, LinalgError::NonFinite));
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_non_positive_lambda() {
        let _ = ShermanMorrisonInverse::new(2, 0.0);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn rejects_zero_dim() {
        let _ = ShermanMorrisonInverse::new(0, 1.0);
    }

    #[test]
    fn y_inverse_symmetry_is_preserved() {
        let mut sm = ShermanMorrisonInverse::new(5, 1.0);
        for i in 0..50 {
            sm.rank1_update(&pseudo_vec(5, i + 99).normalized())
                .unwrap();
        }
        assert!(sm.y().is_symmetric(1e-12));
        assert!(sm.y_inv().is_symmetric(1e-10));
    }
}

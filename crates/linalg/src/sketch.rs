//! Frequent-directions sketching of a Gram-matrix update stream.
//!
//! The million-user estimator store keeps per-user Gram state `Σ x xᵀ`
//! that is `O(d²)` per user. Following the streaming matrix-sketching
//! approach of Liberty's frequent directions (the compression applied
//! to contextual linear bandits by Bento et al., see PAPERS.md), a
//! rank-`r` sketch `B ∈ R^{2r×d}` maintains `BᵀB ≈ AᵀA` for the stream
//! of context rows `A`, with the deterministic guarantee
//! `0 ⪯ AᵀA − BᵀB ⪯ (‖A‖²_F / r) · I` — at `O(r·d)` bytes per user
//! instead of `O(d²)`.
//!
//! The update is buffered: rows append into the `2r × d` buffer and,
//! when it fills, a *shrink* step eigendecomposes the small `2r × 2r`
//! Gram `B Bᵀ` (cyclic Jacobi — deterministic fixed sweep order, no
//! randomness, no allocation after construction), subtracts the
//! `(r+1)`-th eigenvalue from every retained direction and keeps the
//! top `r` rows. All state is plain `f64` rows, so the sketch is
//! trivially serialisable bit-for-bit.

use crate::Matrix;

/// Maximum Jacobi sweeps per shrink. The `2r × 2r` problems here are
/// tiny (`r ≤ 32`) and converge in < 10 sweeps; the cap only bounds
/// pathological inputs so a shrink can never loop forever.
const MAX_JACOBI_SWEEPS: usize = 50;

/// Off-diagonal Frobenius threshold at which the Jacobi iteration is
/// declared converged, relative to the matrix trace.
const JACOBI_REL_TOL: f64 = 1e-14;

/// A rank-`r` frequent-directions sketch of a row stream.
///
/// After any number of [`FrequentDirections::update`] calls,
/// [`FrequentDirections::add_gram_to`] accumulates `BᵀB` — a
/// deterministic spectral under-approximation of the streamed
/// `Σ x xᵀ`. While fewer than `2r` rows have ever been streamed the
/// sketch is *exact* (no shrink has happened yet).
#[derive(Debug, Clone)]
pub struct FrequentDirections {
    rank: usize,
    dim: usize,
    /// `2r × d` row-major buffer; rows `0..fill` are live.
    rows: Vec<f64>,
    fill: usize,
    /// Scratch for the shrink step, allocated once:
    /// `gram`/`vecs` are `2r × 2r`, `evals`/`order` are `2r`,
    /// `new_rows` is `r × d`.
    gram: Vec<f64>,
    vecs: Vec<f64>,
    evals: Vec<f64>,
    order: Vec<usize>,
    new_rows: Vec<f64>,
}

impl FrequentDirections {
    /// Creates an empty sketch of `rank` directions over dimension
    /// `dim`.
    ///
    /// # Panics
    /// Panics if `rank == 0` or `dim == 0`.
    pub fn new(rank: usize, dim: usize) -> Self {
        assert!(rank > 0, "FrequentDirections: rank must be positive");
        assert!(dim > 0, "FrequentDirections: dim must be positive");
        let cap = 2 * rank;
        FrequentDirections {
            rank,
            dim,
            rows: vec![0.0; cap * dim],
            fill: 0,
            gram: vec![0.0; cap * cap],
            vecs: vec![0.0; cap * cap],
            evals: vec![0.0; cap],
            order: vec![0; cap],
            new_rows: vec![0.0; rank * dim],
        }
    }

    /// Rebuilds a sketch from serialised live rows (row-major,
    /// `fill × dim`). The result is bit-identical to the sketch that
    /// was serialised: rows are stored verbatim and `fill` restored.
    ///
    /// # Panics
    /// Panics if `fill > 2 * rank` or `rows.len() != fill * dim`.
    pub fn from_rows(rank: usize, dim: usize, rows: &[f64]) -> Self {
        let mut sk = FrequentDirections::new(rank, dim);
        assert!(
            rows.len().is_multiple_of(dim),
            "FrequentDirections::from_rows: ragged row data"
        );
        let fill = rows.len() / dim;
        assert!(
            fill <= 2 * rank,
            "FrequentDirections::from_rows: more rows than the buffer holds"
        );
        sk.rows[..rows.len()].copy_from_slice(rows);
        sk.fill = fill;
        sk
    }

    /// Sketch rank `r`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Row dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live rows (`≤ 2r`; `≤ r` right after a shrink).
    pub fn fill(&self) -> usize {
        self.fill
    }

    /// The live rows, row-major (`fill × d`). This is the sketch's
    /// complete logical state — serialising these bytes and restoring
    /// via [`FrequentDirections::from_rows`] is a bit-exact round trip.
    pub fn live_rows(&self) -> &[f64] {
        &self.rows[..self.fill * self.dim]
    }

    /// Streams one row into the sketch. Allocation-free: the append
    /// writes into the preallocated buffer and a full buffer shrinks in
    /// place using preallocated scratch.
    ///
    /// # Panics
    /// Panics if `x.len() != dim`.
    pub fn update(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.dim, "FrequentDirections: row dim mismatch");
        let d = self.dim;
        self.rows[self.fill * d..(self.fill + 1) * d].copy_from_slice(x);
        self.fill += 1;
        if self.fill == 2 * self.rank {
            self.shrink();
        }
    }

    /// Accumulates `BᵀB` into `y` (`y += BᵀB`), the sketch's
    /// approximation of the streamed Gram update. Row outer products
    /// are added in row order, so the result is a deterministic
    /// function of the live rows.
    ///
    /// # Panics
    /// Panics if `y` is not `d × d`.
    pub fn add_gram_to(&self, y: &mut Matrix) {
        assert!(
            y.is_square() && y.rows() == self.dim,
            "FrequentDirections: Gram target must be d × d"
        );
        let d = self.dim;
        for row in self.rows[..self.fill * d].chunks_exact(d) {
            for (i, &ri) in row.iter().enumerate() {
                if ri == 0.0 {
                    continue;
                }
                let out = y.row_mut(i);
                for (o, &rj) in out.iter_mut().zip(row) {
                    *o += ri * rj;
                }
            }
        }
    }

    /// Heap bytes of the sketch state (rows + scratch) plus the inline
    /// struct — the store's accounting unit for sketched hot slots.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + 8 * (self.rows.len()
                + self.gram.len()
                + self.vecs.len()
                + self.evals.len()
                + self.new_rows.len())
            + std::mem::size_of::<usize>() * self.order.len()
    }

    /// The frequent-directions shrink: eigendecompose `B Bᵀ`, subtract
    /// the `(r+1)`-th eigenvalue, keep the top `r` re-scaled
    /// directions.
    fn shrink(&mut self) {
        let n = self.fill;
        let d = self.dim;
        debug_assert_eq!(n, 2 * self.rank);
        // gram = B Bᵀ (n × n symmetric PSD).
        for i in 0..n {
            let ri = &self.rows[i * d..(i + 1) * d];
            for j in i..n {
                let rj = &self.rows[j * d..(j + 1) * d];
                let dot = crate::vector::dot_slices(ri, rj);
                self.gram[i * n + j] = dot;
                self.gram[j * n + i] = dot;
            }
        }
        jacobi_eigh(&mut self.gram, &mut self.vecs, n);
        // Sort eigenpairs descending; index tiebreak keeps the order a
        // pure function of the values.
        for (i, (o, e)) in self.order.iter_mut().zip(self.evals.iter_mut()).enumerate() {
            *o = i;
            *e = self.gram[i * n + i];
        }
        let evals = &self.evals;
        self.order
            .sort_unstable_by(|&a, &b| evals[b].total_cmp(&evals[a]).then(a.cmp(&b)));
        let delta = self.evals[self.order[self.rank]].max(0.0);
        // new_row_k = sqrt((λ_k − δ)/λ_k) · (u_kᵀ B): the k-th retained
        // direction, re-scaled so the spectrum shifts down by δ.
        self.new_rows.fill(0.0);
        for k in 0..self.rank {
            let src = self.order[k];
            let lam = self.evals[src];
            let shifted = (lam - delta).max(0.0);
            if shifted <= 0.0 || lam <= 0.0 {
                continue;
            }
            let scale = (shifted / lam).sqrt();
            let out = &mut self.new_rows[k * d..(k + 1) * d];
            for (i, row) in self.rows[..n * d].chunks_exact(d).enumerate() {
                let w = scale * self.vecs[i * n + src];
                if w == 0.0 {
                    continue;
                }
                for (o, &v) in out.iter_mut().zip(row) {
                    *o += w * v;
                }
            }
        }
        self.rows[..self.rank * d].copy_from_slice(&self.new_rows);
        self.fill = self.rank;
    }
}

/// In-place cyclic Jacobi eigendecomposition of the symmetric `n × n`
/// row-major matrix `a`. On return `a`'s diagonal holds the
/// eigenvalues and `v`'s columns the corresponding eigenvectors.
/// Deterministic: fixed `(p, q)` sweep order, convergence test on a
/// computed scalar — identical inputs produce identical bits.
fn jacobi_eigh(a: &mut [f64], v: &mut [f64], n: usize) {
    // v = I
    v[..n * n].fill(0.0);
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let trace: f64 = (0..n).map(|i| a[i * n + i].abs()).sum();
    let tol = (trace.max(f64::MIN_POSITIVE) * JACOBI_REL_TOL).powi(2);
    for _ in 0..MAX_JACOBI_SWEEPS {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[p * n + q] * a[p * n + q];
            }
        }
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq == 0.0 {
                    continue;
                }
                let theta = (a[q * n + q] - a[p * n + p]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    -1.0 / (-theta + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of `a`.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136415821433261)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    fn stream(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed;
        (0..n)
            .map(|_| (0..dim).map(|_| lcg(&mut s)).collect())
            .collect()
    }

    fn exact_gram(rows: &[Vec<f64>], dim: usize) -> Matrix {
        let mut y = Matrix::zeros(dim, dim);
        for x in rows {
            for i in 0..dim {
                for j in 0..dim {
                    y[(i, j)] += x[i] * x[j];
                }
            }
        }
        y
    }

    #[test]
    fn below_capacity_the_sketch_is_exact() {
        let dim = 6;
        let rank = 4;
        let rows = stream(2 * rank - 1, dim, 0xFD01);
        let mut sk = FrequentDirections::new(rank, dim);
        for x in &rows {
            sk.update(x);
        }
        assert_eq!(sk.fill(), rows.len());
        let mut approx = Matrix::zeros(dim, dim);
        sk.add_gram_to(&mut approx);
        let exact = exact_gram(&rows, dim);
        assert!(approx.max_abs_diff(&exact) < 1e-12, "pre-shrink not exact");
    }

    #[test]
    fn shrink_respects_the_frequent_directions_bound() {
        // 0 <= AᵀA − BᵀB <= (‖A‖²_F / r) I entry-wise via the spectral
        // bound; check the scalar consequences on quadratic forms.
        let dim = 8;
        let rank = 4;
        let rows = stream(200, dim, 0xFD02);
        let mut sk = FrequentDirections::new(rank, dim);
        let mut frob_sq = 0.0;
        for x in &rows {
            sk.update(x);
            frob_sq += x.iter().map(|v| v * v).sum::<f64>();
        }
        assert!(sk.fill() <= 2 * rank);
        let mut approx = Matrix::zeros(dim, dim);
        sk.add_gram_to(&mut approx);
        let exact = exact_gram(&rows, dim);
        let bound = frob_sq / rank as f64;
        let mut seed = 0xFD03u64;
        for _ in 0..50 {
            let x: Vec<f64> = (0..dim).map(|_| lcg(&mut seed)).collect();
            let norm_sq: f64 = x.iter().map(|v| v * v).sum();
            let gap = exact.quadratic_form(&x) - approx.quadratic_form(&x);
            assert!(gap >= -1e-9, "sketch must under-approximate: gap {gap}");
            assert!(
                gap <= bound * norm_sq + 1e-9,
                "FD bound violated: gap {gap} > {}",
                bound * norm_sq
            );
        }
    }

    #[test]
    fn updates_are_deterministic_bitwise() {
        let dim = 5;
        let rank = 3;
        let rows = stream(77, dim, 0xFD04);
        let mut a = FrequentDirections::new(rank, dim);
        let mut b = FrequentDirections::new(rank, dim);
        for x in &rows {
            a.update(x);
            b.update(x);
        }
        assert_eq!(a.fill(), b.fill());
        for (x, y) in a.live_rows().iter().zip(b.live_rows()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn from_rows_round_trip_is_bit_exact() {
        let dim = 4;
        let rank = 2;
        let rows = stream(31, dim, 0xFD05);
        let mut sk = FrequentDirections::new(rank, dim);
        for x in &rows {
            sk.update(x);
        }
        let restored = FrequentDirections::from_rows(rank, dim, sk.live_rows());
        assert_eq!(restored.fill(), sk.fill());
        for (x, y) in restored.live_rows().iter().zip(sk.live_rows()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Continuing the stream from the restored sketch stays in
        // lockstep with the original.
        let more = stream(20, dim, 0xFD06);
        let mut sk2 = restored;
        let mut sk1 = sk;
        for x in &more {
            sk1.update(x);
            sk2.update(x);
        }
        for (x, y) in sk1.live_rows().iter().zip(sk2.live_rows()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn state_is_sublinear_in_d_squared() {
        // The point of the sketch: rank-4 state at d = 32 is far below
        // the d² Gram it replaces.
        let dim = 32;
        let sk = FrequentDirections::new(4, dim);
        assert!(sk.state_bytes() < dim * dim * 8);
    }

    #[test]
    fn jacobi_recovers_known_eigenvalues() {
        // diag(3, 1) rotated by 45°: eigenvalues {3, 1}.
        let n = 2;
        let mut a = vec![2.0, 1.0, 1.0, 2.0];
        let mut v = vec![0.0; 4];
        jacobi_eigh(&mut a, &mut v, n);
        let mut evs = [a[0], a[3]];
        evs.sort_by(f64::total_cmp);
        assert!((evs[0] - 1.0).abs() < 1e-12);
        assert!((evs[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_is_rejected() {
        let _ = FrequentDirections::new(0, 4);
    }
}

//! Error type for linear algebra operations.

use std::fmt;

/// Errors produced by factorisations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix handed to a routine that requires a square matrix was not
    /// square. Carries `(rows, cols)`.
    NotSquare(usize, usize),
    /// Dimension mismatch between two operands. Carries `(expected, got)`.
    DimensionMismatch(usize, usize),
    /// Cholesky factorisation encountered a non-positive pivot, meaning the
    /// matrix is not (numerically) positive definite. Carries the index of
    /// the offending pivot and its value.
    NotPositiveDefinite(usize, f64),
    /// A value expected to be finite was NaN or infinite.
    NonFinite,
    /// Sherman–Morrison update would divide by a (numerically) zero
    /// denominator, i.e. the update would make the matrix singular.
    SingularUpdate(f64),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare(r, c) => {
                write!(f, "matrix is not square: {r}x{c}")
            }
            LinalgError::DimensionMismatch(expected, got) => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            LinalgError::NotPositiveDefinite(i, v) => {
                write!(
                    f,
                    "matrix is not positive definite: pivot {i} has value {v:e}"
                )
            }
            LinalgError::NonFinite => write!(f, "non-finite value encountered"),
            LinalgError::SingularUpdate(denom) => {
                write!(
                    f,
                    "rank-1 update would make the matrix singular (denominator {denom:e})"
                )
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_not_square() {
        let e = LinalgError::NotSquare(2, 3);
        assert_eq!(e.to_string(), "matrix is not square: 2x3");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch(4, 5);
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 5");
    }

    #[test]
    fn display_not_positive_definite_mentions_pivot() {
        let e = LinalgError::NotPositiveDefinite(1, -0.5);
        let s = e.to_string();
        assert!(s.contains("positive definite"));
        assert!(s.contains("pivot 1"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(LinalgError::NonFinite);
        assert!(e.to_string().contains("non-finite"));
    }
}

//! Property-based tests for fasea-linalg: factorisation round-trips,
//! Sherman–Morrison agreement with direct inversion, and solver residuals
//! on randomly generated SPD matrices.

use fasea_linalg::{Cholesky, Matrix, ShermanMorrisonInverse, Vector};
use proptest::prelude::*;

/// Strategy: a dimension and a batch of bounded vectors of that dimension.
fn dim_and_vectors() -> impl Strategy<Value = (usize, Vec<Vec<f64>>)> {
    (1usize..8).prop_flat_map(|d| {
        (
            Just(d),
            proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, d..=d), 1..30),
        )
    })
}

/// Builds an SPD matrix λI + Σ x xᵀ from a vector batch.
fn spd_from(d: usize, lambda: f64, xs: &[Vec<f64>]) -> Matrix {
    let mut y = Matrix::scaled_identity(d, lambda);
    for x in xs {
        y.add_outer(&Vector::from(x.as_slice()), 1.0);
    }
    y
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Cholesky reconstruction: L Lᵀ must reproduce A.
    #[test]
    fn cholesky_reconstructs((d, xs) in dim_and_vectors()) {
        let a = spd_from(d, 1.0, &xs);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.factor_l();
        let recon = l.matmul(&l.transposed());
        prop_assert!(recon.max_abs_diff(&a) < 1e-9 * (1.0 + a.frobenius_norm()));
    }

    /// Solving A x = b must leave a tiny residual.
    #[test]
    fn solve_residual_small((d, xs) in dim_and_vectors(), seed in 0u64..1000) {
        let a = spd_from(d, 0.5, &xs);
        let b = Vector::from_fn(d, |i| ((seed as f64) * 0.61 + i as f64 * 0.37).sin());
        let ch = Cholesky::factor(&a).unwrap();
        let x = ch.solve(&b);
        let resid = &a.matvec(&x) - &b;
        prop_assert!(resid.norm_inf() < 1e-8 * (1.0 + b.norm()));
    }

    /// Sherman–Morrison maintained inverse equals the direct inverse.
    #[test]
    fn sherman_morrison_matches_direct((d, xs) in dim_and_vectors()) {
        let mut sm = ShermanMorrisonInverse::new(d, 1.0);
        for x in &xs {
            sm.rank1_update(&Vector::from(x.as_slice())).unwrap();
        }
        let direct = Cholesky::factor(sm.y()).unwrap().inverse();
        prop_assert!(sm.y_inv().max_abs_diff(&direct) < 1e-7);
    }

    /// Y · Y⁻¹ ≈ I after arbitrary update sequences.
    #[test]
    fn maintained_inverse_is_inverse((d, xs) in dim_and_vectors()) {
        let mut sm = ShermanMorrisonInverse::new(d, 2.0);
        for x in &xs {
            sm.rank1_update(&Vector::from(x.as_slice())).unwrap();
        }
        let prod = sm.y().matmul(sm.y_inv());
        prop_assert!(prod.max_abs_diff(&Matrix::identity(d)) < 1e-7);
    }

    /// The UCB width xᵀY⁻¹x is always positive and bounded by ‖x‖²/λ.
    #[test]
    fn quadratic_form_bounds((d, xs) in dim_and_vectors(), probe in proptest::collection::vec(-1.0f64..1.0, 1..8)) {
        let lambda = 0.5;
        let mut sm = ShermanMorrisonInverse::new(d, lambda);
        for x in &xs {
            sm.rank1_update(&Vector::from(x.as_slice())).unwrap();
        }
        let mut p = probe;
        p.resize(d, 0.3);
        let x = Vector::from(p);
        let q = sm.inv_quadratic_form(&x);
        prop_assert!(q >= -1e-12);
        // Y >= λI implies Y^{-1} <= (1/λ)I in the PSD order.
        prop_assert!(q <= x.norm_sq() / lambda + 1e-9);
    }

    /// log det grows monotonically under rank-1 updates
    /// (det(Y + xxᵀ) = det(Y)(1 + xᵀY⁻¹x) ≥ det(Y)).
    #[test]
    fn log_det_monotone((d, xs) in dim_and_vectors()) {
        let mut y = Matrix::scaled_identity(d, 1.0);
        let mut prev = Cholesky::factor(&y).unwrap().log_det();
        for x in &xs {
            y.add_outer(&Vector::from(x.as_slice()), 1.0);
            let cur = Cholesky::factor(&y).unwrap().log_det();
            prop_assert!(cur >= prev - 1e-10);
            prev = cur;
        }
    }

    /// Vector normalisation produces ‖x‖ ≤ 1 as FASEA requires.
    #[test]
    fn normalized_vectors_satisfy_context_bound(raw in proptest::collection::vec(-100.0f64..100.0, 1..32)) {
        let v = Vector::from(raw).normalized();
        prop_assert!(v.norm() <= 1.0 + 1e-12);
    }
}

//! The segmented write-ahead log.
//!
//! A WAL directory holds segment files named `wal-<first_seq>.log`
//! (20-digit zero-padded decimal, so lexicographic order is sequence
//! order). Each segment starts with a 32-byte self-describing header:
//!
//! ```text
//! magic       "FASEAWAL"   8 bytes
//! version     u32          4 bytes
//! reserved    u32          4 bytes   (zero)
//! fingerprint u64          8 bytes   (service-instance fingerprint)
//! first_seq   u64          8 bytes   (seq of the segment's first record)
//! ```
//!
//! followed by framed records (see [`crate::record`]). The writer
//! rotates to a fresh segment once the current one crosses
//! [`WalOptions::segment_bytes`].
//!
//! ## Crash semantics
//!
//! * A crash mid-append leaves a torn frame at the end of the **final**
//!   segment; [`Wal::open`] truncates the file back to the last intact
//!   frame boundary and continues. Nothing before the torn frame is
//!   touched. (A bit flip inside the final segment is indistinguishable
//!   from a torn tail and is handled the same way — the log recovers to
//!   the longest intact prefix, never to a corrupt record.)
//! * A failed CRC in a segment that has **successors** cannot be a torn
//!   write — records after the damage were once acknowledged — and is
//!   reported as [`StoreError::CorruptSegment`] rather than silently
//!   dropped, since discarding them would fork history.
//! * Segment headers embed the service-instance fingerprint; replaying
//!   a log into a differently-configured service fails with
//!   [`StoreError::ForeignInstance`] instead of corrupting state.
//!
//! Durability is tunable per append via [`FsyncPolicy`].

use crate::record::{read_frame, write_frame, FrameOutcome, Record};
use crate::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every WAL segment.
pub const MAGIC: &[u8; 8] = b"FASEAWAL";
/// Current segment-format version.
pub const VERSION: u32 = 1;
/// Size of the segment header in bytes.
pub const HEADER_BYTES: u64 = 32;

/// When `append` forces data to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — maximum durability, slowest.
    Always,
    /// `fsync` after every `n` records (and on rotation/snapshot).
    EveryN(u32),
    /// Never `fsync` from `append`; the OS flushes when it pleases.
    /// A crash may lose the most recent acknowledged records, but the
    /// log still recovers to a *prefix* of history (torn-tail rule).
    Never,
}

impl FsyncPolicy {
    /// Short stable label used in reports and benches.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::EveryN(n) => format!("every-{n}"),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Rotate to a new segment once the current one reaches this many
    /// bytes (header included). Small values are useful in tests.
    pub segment_bytes: u64,
    /// Durability policy for `append`.
    pub fsync: FsyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 << 20,
            fsync: FsyncPolicy::EveryN(32),
        }
    }
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// Every intact record, in sequence order.
    pub records: Vec<(u64, Record)>,
    /// Bytes of torn tail truncated from the final segment (0 when the
    /// shutdown was clean).
    pub truncated_bytes: u64,
}

/// The append side of the log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    fingerprint: u64,
    options: WalOptions,
    file: File,
    segment_path: PathBuf,
    segment_len: u64,
    next_seq: u64,
    unsynced: u32,
}

fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

fn encode_header(fingerprint: u64, first_seq: u64) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[0..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    // bytes 12..16 reserved, zero
    h[16..24].copy_from_slice(&fingerprint.to_le_bytes());
    h[24..32].copy_from_slice(&first_seq.to_le_bytes());
    h
}

fn read_header(path: &Path, r: &mut impl Read, expected_fp: u64) -> Result<u64, StoreError> {
    let mut h = [0u8; HEADER_BYTES as usize];
    let mut filled = 0;
    while filled < h.len() {
        match r
            .read(&mut h[filled..])
            .map_err(|e| StoreError::io("read header", path, &e))?
        {
            0 => {
                return Err(StoreError::CorruptSegment {
                    path: path.display().to_string(),
                    what: "shorter than its header".to_string(),
                })
            }
            n => filled += n,
        }
    }
    if &h[0..8] != MAGIC {
        return Err(StoreError::NotAWalSegment {
            path: path.display().to_string(),
        });
    }
    let version = u32::from_le_bytes(h[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::BadVersion { found: version });
    }
    let fp = u64::from_le_bytes(h[16..24].try_into().unwrap());
    if fp != expected_fp {
        return Err(StoreError::ForeignInstance {
            expected: expected_fp,
            found: fp,
        });
    }
    Ok(u64::from_le_bytes(h[24..32].try_into().unwrap()))
}

/// Lists segment files in `dir` in sequence order.
fn list_segments(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(StoreError::io("list segments", dir, &e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("list segments", dir, &e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("wal-") && name.ends_with(".log") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// Scans one segment, appending intact records to `records` and byte
/// boundaries (positions after the header and after each intact frame)
/// to `boundaries`. Returns the clean length of the file, whether a
/// torn tail was found, and the sequence number expected of the next
/// segment (`first_seq` + records in this one).
fn scan_segment(
    path: &Path,
    expected_fp: u64,
    expected_first_seq: Option<u64>,
    records: &mut Vec<(u64, Record)>,
    boundaries: &mut Vec<(PathBuf, u64)>,
) -> Result<(u64, Option<&'static str>, u64), StoreError> {
    let file = File::open(path).map_err(|e| StoreError::io("open segment", path, &e))?;
    let mut r = BufReader::new(file);
    let first_seq = read_header(path, &mut r, expected_fp)?;
    if let Some(expect) = expected_first_seq {
        if first_seq != expect {
            return Err(StoreError::SequenceGap {
                expected: expect,
                found: first_seq,
            });
        }
    }
    boundaries.push((path.to_path_buf(), HEADER_BYTES));
    let mut clean_len = HEADER_BYTES;
    let mut expect_seq = first_seq;
    loop {
        match read_frame(&mut r).map_err(|e| StoreError::io("read record", path, &e))? {
            FrameOutcome::Eof => return Ok((clean_len, None, expect_seq)),
            FrameOutcome::Torn { why } => return Ok((clean_len, Some(why), expect_seq)),
            FrameOutcome::Ok { seq, record, bytes } => {
                if seq != expect_seq {
                    return Err(StoreError::SequenceGap {
                        expected: expect_seq,
                        found: seq,
                    });
                }
                clean_len += bytes;
                expect_seq += 1;
                records.push((seq, record));
                boundaries.push((path.to_path_buf(), clean_len));
            }
        }
    }
}

impl Wal {
    /// Opens (or initialises) the log in `dir`, recovering from a torn
    /// tail if the last shutdown was a crash.
    ///
    /// Returns the writer plus everything intact on disk — the caller
    /// replays [`Recovered::records`] into its in-memory state.
    ///
    /// # Errors
    /// I/O failures, foreign-instance logs, and corruption anywhere
    /// other than the final segment's truncatable tail.
    pub fn open(
        dir: &Path,
        fingerprint: u64,
        options: WalOptions,
    ) -> Result<(Self, Recovered), StoreError> {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create wal dir", dir, &e))?;
        let segments = list_segments(dir)?;
        let mut records = Vec::new();
        let mut boundaries = Vec::new();
        let mut truncated_bytes = 0u64;

        if segments.is_empty() {
            let (file, segment_path) = create_segment(dir, fingerprint, 0)?;
            return Ok((
                Wal {
                    dir: dir.to_path_buf(),
                    fingerprint,
                    options,
                    file,
                    segment_path,
                    segment_len: HEADER_BYTES,
                    next_seq: 0,
                    unsynced: 0,
                },
                Recovered {
                    records,
                    truncated_bytes,
                },
            ));
        }

        let mut expected_first: Option<u64> = None;
        let mut last_clean_len = 0u64;
        let mut next_seq = 0u64;
        for (i, path) in segments.iter().enumerate() {
            let is_last = i == segments.len() - 1;
            let (clean_len, torn, seq_after) = scan_segment(
                path,
                fingerprint,
                expected_first,
                &mut records,
                &mut boundaries,
            )?;
            if let Some(why) = torn {
                if !is_last {
                    // Damage with acknowledged history after it: refuse.
                    return Err(StoreError::CorruptSegment {
                        path: path.display().to_string(),
                        what: format!("{why}, but later segments exist"),
                    });
                }
                let disk_len = fs::metadata(path)
                    .map_err(|e| StoreError::io("stat segment", path, &e))?
                    .len();
                truncated_bytes = disk_len - clean_len;
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| StoreError::io("open segment for truncate", path, &e))?;
                f.set_len(clean_len)
                    .map_err(|e| StoreError::io("truncate torn tail", path, &e))?;
                f.sync_all()
                    .map_err(|e| StoreError::io("sync truncated segment", path, &e))?;
            }
            last_clean_len = clean_len;
            expected_first = Some(seq_after);
            next_seq = seq_after;
        }
        let segment_path = segments.last().unwrap().clone();
        let mut file = OpenOptions::new()
            .write(true)
            .open(&segment_path)
            .map_err(|e| StoreError::io("open segment for append", &segment_path, &e))?;
        file.seek(SeekFrom::Start(last_clean_len))
            .map_err(|e| StoreError::io("seek to append position", &segment_path, &e))?;
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                fingerprint,
                options,
                file,
                segment_path,
                segment_len: last_clean_len,
                next_seq,
                unsynced: 0,
            },
            Recovered {
                records,
                truncated_bytes,
            },
        ))
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active segment's path (diagnostics/tests).
    pub fn current_segment(&self) -> &Path {
        &self.segment_path
    }

    /// Appends one record, applying the fsync policy, rotating the
    /// segment when full. Returns the record's sequence number.
    ///
    /// After an `Err` the writer must be considered poisoned: the
    /// in-memory service may have diverged from the log, and the safe
    /// continuation is to drop the service and recover from disk.
    pub fn append(&mut self, record: &Record) -> Result<u64, StoreError> {
        let seq = self.append_unsynced(record)?;
        self.apply_fsync_policy()?;
        Ok(seq)
    }

    /// Appends one record *without* applying the fsync policy (rotation
    /// still happens when a segment fills, and rotation remains a
    /// durability point). The group-commit pipeline uses this to write a
    /// whole batch and then apply the policy once via
    /// [`Wal::apply_fsync_policy`], so N records share one fsync.
    pub fn append_unsynced(&mut self, record: &Record) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        let bytes = write_frame(&mut self.file, seq, record)
            .map_err(|e| StoreError::io("append record", &self.segment_path, &e))?;
        self.next_seq += 1;
        self.segment_len += bytes;
        self.unsynced += 1;
        if self.segment_len >= self.options.segment_bytes {
            self.rotate()?;
        }
        Ok(seq)
    }

    /// Applies the configured fsync policy to everything appended since
    /// the last sync: `Always` syncs unconditionally, `EveryN(n)` syncs
    /// once at least `n` records are pending, `Never` does nothing.
    pub fn apply_fsync_policy(&mut self) -> Result<(), StoreError> {
        match self.options.fsync {
            FsyncPolicy::Always => {
                if self.unsynced > 0 {
                    self.sync()?;
                }
            }
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Records appended since the last fsync (diagnostics/tests — the
    /// every-N regression test asserts this resets at rotation and
    /// snapshot boundaries rather than drifting).
    pub fn unsynced_records(&self) -> u32 {
        self.unsynced
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.options.fsync
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .flush()
            .and_then(|_| self.file.sync_all())
            .map_err(|e| StoreError::io("fsync segment", &self.segment_path, &e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Closes the current segment and starts a fresh one (also done
    /// automatically when a segment fills). The old segment is synced
    /// first so rotation is a durability point regardless of policy.
    /// A no-op (beyond the sync) if the current segment holds no
    /// records yet — the fresh segment would carry the same first
    /// sequence number as the existing one.
    pub fn rotate(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        if self.segment_len == HEADER_BYTES {
            return Ok(());
        }
        let (file, path) = create_segment(&self.dir, self.fingerprint, self.next_seq)?;
        self.file = file;
        self.segment_path = path;
        self.segment_len = HEADER_BYTES;
        Ok(())
    }

    /// Deletes every segment whose records all have sequence numbers
    /// below `seq` (never the active segment). Called after a snapshot
    /// at `seq` makes those records redundant. Returns the number of
    /// segments removed.
    pub fn compact_below(&mut self, seq: u64) -> Result<usize, StoreError> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for pair in segments.windows(2) {
            let (path, next) = (&pair[0], &pair[1]);
            if *path == self.segment_path {
                break;
            }
            // The segment's records end where the next segment starts.
            let next_first = first_seq_of(next)?;
            if next_first <= seq {
                fs::remove_file(path).map_err(|e| StoreError::io("remove segment", path, &e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

fn first_seq_of(path: &Path) -> Result<u64, StoreError> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_default();
    name.strip_prefix("wal-")
        .and_then(|s| s.strip_suffix(".log"))
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| StoreError::CorruptSegment {
            path: path.display().to_string(),
            what: "unparsable segment file name".to_string(),
        })
}

fn create_segment(
    dir: &Path,
    fingerprint: u64,
    first_seq: u64,
) -> Result<(File, PathBuf), StoreError> {
    let path = dir.join(segment_name(first_seq));
    let mut file = OpenOptions::new()
        .create_new(true)
        .write(true)
        .open(&path)
        .map_err(|e| StoreError::io("create segment", &path, &e))?;
    file.write_all(&encode_header(fingerprint, first_seq))
        .map_err(|e| StoreError::io("write header", &path, &e))?;
    file.sync_all()
        .map_err(|e| StoreError::io("sync new segment", &path, &e))?;
    // Make the directory entry durable too, so the segment survives a
    // crash immediately after rotation (POSIX requires syncing the
    // parent directory for that).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok((file, path))
}

/// What [`scan`] finds: `(records, boundaries, torn_tail_reason)` —
/// every intact `(seq, record)`, the byte position after the header and
/// after each intact frame of every segment (kill targets for crash
/// tests), and whether the final segment ends in a torn tail.
pub type ScanOutcome = (
    Vec<(u64, Record)>,
    Vec<(PathBuf, u64)>,
    Option<&'static str>,
);

/// Read-only scan of a log directory: every intact record plus the byte
/// boundaries after the header and after each record of every segment,
/// in order. Used by crash-matrix tests to kill a log at an arbitrary
/// record boundary, and by tooling that inspects logs without opening
/// them for append.
///
/// # Errors
/// Same validation as [`Wal::open`], except a torn tail is reported in
/// the outcome (nothing is truncated).
pub fn scan(dir: &Path, fingerprint: u64) -> Result<ScanOutcome, StoreError> {
    let segments = list_segments(dir)?;
    let mut records = Vec::new();
    let mut boundaries = Vec::new();
    let mut expected_first = None;
    let mut torn = None;
    for (i, path) in segments.iter().enumerate() {
        let is_last = i == segments.len() - 1;
        let (_, t, seq_after) = scan_segment(
            path,
            fingerprint,
            expected_first,
            &mut records,
            &mut boundaries,
        )?;
        if let Some(why) = t {
            if !is_last {
                return Err(StoreError::CorruptSegment {
                    path: path.display().to_string(),
                    what: format!("{why}, but later segments exist"),
                });
            }
            torn = Some(why);
        }
        expected_first = Some(seq_after);
    }
    Ok((records, boundaries, torn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultFile;
    use std::path::Path;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fasea-wal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn marker(n: u64) -> Record {
        Record::SnapshotMarker { snapshot_seq: n }
    }

    fn feedback(t: u64, len: usize) -> Record {
        Record::Feedback {
            t,
            accepts: vec![t.is_multiple_of(2); len],
        }
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = tmp("round-trip");
        let opts = WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Never,
        };
        let mut appended = Vec::new();
        {
            let (mut wal, rec) = Wal::open(&dir, 42, opts).unwrap();
            assert!(rec.records.is_empty());
            for t in 0..50u64 {
                let r = feedback(t, 3);
                let seq = wal.append(&r).unwrap();
                assert_eq!(seq, t);
                appended.push((seq, r));
            }
            wal.sync().unwrap();
        }
        let (wal, rec) = Wal::open(&dir, 42, opts).unwrap();
        assert_eq!(rec.records, appended);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(wal.next_seq(), 50);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let dir = tmp("rotation");
        let opts = WalOptions {
            segment_bytes: 128,
            fsync: FsyncPolicy::Never,
        };
        {
            let (mut wal, _) = Wal::open(&dir, 7, opts).unwrap();
            for t in 0..40u64 {
                wal.append(&feedback(t, 2)).unwrap();
            }
            wal.sync().unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "expected rotation, got {segments:?}");
        let (_, rec) = Wal::open(&dir, 7, opts).unwrap();
        assert_eq!(rec.records.len(), 40);
        for (i, (seq, _)) in rec.records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp("torn-tail");
        let opts = WalOptions::default();
        {
            let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
            for t in 0..10u64 {
                wal.append(&feedback(t, 4)).unwrap();
            }
            wal.sync().unwrap();
        }
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        FaultFile::new(&seg).torn_write(len - 3).unwrap();

        let (mut wal, rec) = Wal::open(&dir, 1, opts).unwrap();
        assert_eq!(rec.records.len(), 9, "torn final record dropped");
        assert!(rec.truncated_bytes > 0);
        assert_eq!(wal.next_seq(), 9);
        // The log accepts appends at the recovered position.
        assert_eq!(wal.append(&feedback(9, 4)).unwrap(), 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_final_segment_recovers_longest_intact_prefix() {
        let dir = tmp("bit-flip");
        let opts = WalOptions::default();
        {
            let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
            for t in 0..10u64 {
                wal.append(&feedback(t, 4)).unwrap();
            }
            wal.sync().unwrap();
        }
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        // A flip inside the final segment is indistinguishable from a
        // torn tail; open() recovers the longest intact prefix and must
        // never hand back a corrupt record.
        FaultFile::new(&seg).flip_bit(HEADER_BYTES + 30, 3).unwrap();
        let (_, rec) = Wal::open(&dir, 1, opts).unwrap();
        assert!(rec.records.len() < 10);
        for (i, (seq, _)) in rec.records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_non_final_segment_is_an_error() {
        let dir = tmp("mid-corrupt");
        let opts = WalOptions {
            segment_bytes: 128,
            fsync: FsyncPolicy::Never,
        };
        {
            let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
            for t in 0..40u64 {
                wal.append(&feedback(t, 2)).unwrap();
            }
            wal.sync().unwrap();
        }
        let first = list_segments(&dir).unwrap().remove(0);
        FaultFile::new(&first)
            .flip_bit(HEADER_BYTES + 10, 0)
            .unwrap();
        match Wal::open(&dir, 1, opts) {
            Err(StoreError::CorruptSegment { .. }) => {}
            other => panic!("expected CorruptSegment, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_fingerprint_rejected() {
        let dir = tmp("foreign");
        let opts = WalOptions::default();
        {
            let (mut wal, _) = Wal::open(&dir, 0xAAAA, opts).unwrap();
            wal.append(&marker(0)).unwrap();
            wal.sync().unwrap();
        }
        match Wal::open(&dir, 0xBBBB, opts) {
            Err(StoreError::ForeignInstance { expected, found }) => {
                assert_eq!(expected, 0xBBBB);
                assert_eq!(found, 0xAAAA);
            }
            other => panic!("expected ForeignInstance, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tmp("magic");
        let opts = WalOptions::default();
        {
            let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
            wal.append(&marker(0)).unwrap();
            wal.sync().unwrap();
        }
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        FaultFile::new(&seg).flip_bit(0, 0).unwrap();
        assert!(matches!(
            Wal::open(&dir, 1, opts),
            Err(StoreError::NotAWalSegment { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_removes_only_covered_segments() {
        let dir = tmp("compact");
        let opts = WalOptions {
            segment_bytes: 128,
            fsync: FsyncPolicy::Never,
        };
        let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
        for t in 0..40u64 {
            wal.append(&feedback(t, 2)).unwrap();
        }
        let before = list_segments(&dir).unwrap().len();
        assert!(before > 2);
        // Snapshot at the start of the current segment: everything in
        // earlier segments is covered.
        let snapshot_seq = first_seq_of(Path::new(wal.current_segment())).unwrap();
        let removed = wal.compact_below(snapshot_seq).unwrap();
        assert_eq!(removed, before - 1);
        // The log still opens cleanly and the surviving records chain
        // (one post-compaction append, since the fresh segment starts
        // empty after the final rotation).
        wal.append(&feedback(40, 2)).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&dir, 1, opts).unwrap();
        assert_eq!(rec.records.first().map(|(s, _)| *s), Some(snapshot_seq));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_all_append() {
        for fsync in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(4),
            FsyncPolicy::Never,
        ] {
            let dir = tmp(&format!("fsync-{}", fsync.label()));
            let opts = WalOptions {
                segment_bytes: 1 << 20,
                fsync,
            };
            let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
            for t in 0..10u64 {
                wal.append(&feedback(t, 1)).unwrap();
            }
            drop(wal);
            let (_, rec) = Wal::open(&dir, 1, opts).unwrap();
            assert_eq!(rec.records.len(), 10);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn every_n_counter_resets_at_rotation_and_keeps_cadence() {
        // Regression: the every-N counter must restart from zero at a
        // rotation (rotation itself syncs, so the rotated-away records
        // are a durability point) instead of carrying a stale phase
        // into the new segment.
        let dir = tmp("every-n-rotation");
        let opts = WalOptions {
            // Header (32) + six 31-byte feedback frames = 218, so a
            // rotation lands on the 6th append — mid-cadence of
            // EveryN(4), two past the policy sync.
            segment_bytes: 210,
            fsync: FsyncPolicy::EveryN(4),
        };
        let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
        let mut seen_rotation_reset = false;
        let mut seen_policy_sync = false;
        let mut after_sync = 0u32;
        for t in 0..32u64 {
            let before_segment = wal.current_segment().to_path_buf();
            let before_unsynced = wal.unsynced_records();
            wal.append(&feedback(t, 2)).unwrap();
            let rotated = wal.current_segment() != before_segment;
            if rotated {
                // Rotation synced: nothing may be left pending.
                assert_eq!(
                    wal.unsynced_records(),
                    0,
                    "rotation at t={t} left unsynced records"
                );
                seen_rotation_reset = true;
                after_sync = 0;
            } else if wal.unsynced_records() == 0 {
                // A policy-driven sync: must fire exactly when the 4th
                // pending record lands, never earlier or later.
                assert_eq!(
                    before_unsynced + 1,
                    4,
                    "EveryN(4) synced after {} records at t={t}",
                    before_unsynced + 1
                );
                seen_policy_sync = true;
                after_sync = 0;
            } else {
                after_sync += 1;
                assert_eq!(
                    wal.unsynced_records(),
                    after_sync,
                    "unsynced counter drifted at t={t}"
                );
                assert!(
                    wal.unsynced_records() < 4,
                    "counter passed the EveryN threshold without syncing at t={t}"
                );
            }
        }
        assert!(
            seen_rotation_reset,
            "test never exercised a rotation; shrink segment_bytes"
        );
        assert!(
            seen_policy_sync,
            "test never exercised an EveryN policy sync; grow segment_bytes"
        );
        // Snapshot boundary: an explicit sync (what a snapshot performs
        // first) also restarts the cadence.
        wal.append(&feedback(100, 2)).unwrap();
        if wal.unsynced_records() == 0 {
            wal.append(&feedback(101, 2)).unwrap();
        }
        assert!(wal.unsynced_records() > 0);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced_records(), 0);
        // Everything written is recoverable.
        drop(wal);
        let (_, rec) = Wal::open(&dir, 1, opts).unwrap();
        assert!(rec.records.len() >= 33);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_reports_boundaries_and_torn_tail() {
        let dir = tmp("scan");
        let opts = WalOptions {
            segment_bytes: 1 << 20,
            fsync: FsyncPolicy::Never,
        };
        {
            let (mut wal, _) = Wal::open(&dir, 1, opts).unwrap();
            for t in 0..5u64 {
                wal.append(&feedback(t, 2)).unwrap();
            }
            wal.sync().unwrap();
        }
        let (records, boundaries, torn) = scan(&dir, 1).unwrap();
        assert_eq!(records.len(), 5);
        assert!(torn.is_none());
        // Header boundary + one per record.
        assert_eq!(boundaries.len(), 6);
        assert_eq!(boundaries[0].1, HEADER_BYTES);
        // Tear the tail: scan reports it without modifying the file.
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        FaultFile::new(&seg).torn_write(len - 1).unwrap();
        let (records, _, torn) = scan(&dir, 1).unwrap();
        assert_eq!(records.len(), 4);
        assert!(torn.is_some());
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            len - 1,
            "scan must not truncate"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! # fasea-store
//!
//! Durable state for the FASEA arrangement service: a CRC-checked
//! write-ahead round log with segment rotation, atomically-written
//! service snapshots, and a fault-injection harness for crash-recovery
//! testing.
//!
//! The arrangement protocol (paper Definition 3) is *irrevocable*: once
//! an arrangement is proposed to a user it cannot be retracted, and
//! once feedback is consumed the learner has moved. A process crash
//! must therefore never lose a proposal that a user may have seen, and
//! never double-propose a round. This crate provides the storage
//! primitives; `fasea-sim`'s `DurableArrangementService` composes them
//! into the recovery protocol:
//!
//! * [`wal`] — append-only segmented log of [`Record`]s, each framed
//!   with a length prefix and CRC-32. A torn final record (crash
//!   mid-write) is truncated away on open; corruption anywhere earlier
//!   is reported, never silently skipped. Segment headers carry an
//!   instance fingerprint so a log can never be replayed into the
//!   wrong service.
//! * [`group`] — a group-commit pipeline over the WAL: appends land in
//!   an in-memory commit queue tagged with a monotone LSN, a dedicated
//!   syncer thread writes + fsyncs whole batches, and a `durable_lsn`
//!   watermark tells callers when a record may be acknowledged. N
//!   concurrent producers share one fsync instead of paying one each.
//! * [`snapshot`] — a full point-in-time image of the service (round
//!   counter, remaining capacities, regret accounting, the pending
//!   proposal if any, and an opaque policy-state blob), written via
//!   temp-file + rename so a crash during snapshotting leaves the
//!   previous snapshot intact. A snapshot at WAL sequence `S` makes
//!   every record below `S` compactable.
//! * [`fault`] — [`FaultFile`] and [`ShortReader`], which inject torn
//!   writes, bit flips and short reads at chosen offsets to drive the
//!   recovery test matrix.
//!
//! The crate is deliberately dependency-free (std only) and speaks in
//! plain types (`Vec<u32>` capacities, row-major `Vec<f64>` contexts,
//! opaque `Vec<u8>` policy blobs); `fasea-sim` owns the conversion to
//! and from domain types.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod crc;
pub mod fault;
pub mod group;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use crc::{crc32, Crc32};
pub use fault::{FaultFile, ShortReader};
pub use group::{live_commit_syncers, CommitNotifier, CommitObserver, GroupCommitWal};
pub use record::{
    context_hash, parse_raw_frame, read_raw_frame, write_raw_frame, FrameParse, RawFrame, Record,
    MAX_PAYLOAD,
};
pub use snapshot::{PendingProposal, ServiceSnapshot};
pub use wal::{FsyncPolicy, Wal, WalOptions};

/// Frame tag for [`Record::Propose`].
pub const TAG_PROPOSE: u8 = 1;
/// Frame tag for [`Record::Feedback`].
pub const TAG_FEEDBACK: u8 = 2;
/// Frame tag for [`Record::SnapshotMarker`].
pub const TAG_SNAPSHOT_MARKER: u8 = 3;
/// Frame tag for [`Record::TxnPrepare`].
pub const TAG_TXN_PREPARE: u8 = 4;
/// Frame tag for [`Record::TxnCommit`].
pub const TAG_TXN_COMMIT: u8 = 5;
/// Frame tag for [`Record::TxnAbort`].
pub const TAG_TXN_ABORT: u8 = 6;
/// Frame tag for [`Record::Lifecycle`].
pub const TAG_LIFECYCLE: u8 = 7;

/// Errors surfaced by the store.
///
/// The type is `Clone + PartialEq + Eq` (it carries
/// [`std::io::ErrorKind`] plus context rather than `std::io::Error`) so
/// that `fasea-sim` can embed it in its `ServiceError` without losing
/// that enum's derives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operating-system I/O failure.
    Io {
        /// What the store was doing ("open segment", "append", …).
        op: &'static str,
        /// The underlying error kind.
        kind: std::io::ErrorKind,
        /// The path involved.
        path: String,
    },
    /// The file is not a FASEA WAL segment (bad magic).
    NotAWalSegment {
        /// Offending path.
        path: String,
    },
    /// The file is not a FASEA service snapshot (bad magic).
    NotASnapshot {
        /// Offending path.
        path: String,
    },
    /// The on-disk format version is not supported.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The log or snapshot was written by a different service instance
    /// (fingerprint mismatch) and must not be replayed here.
    ForeignInstance {
        /// Fingerprint this service derives from its configuration.
        expected: u64,
        /// Fingerprint found in the file header.
        found: u64,
    },
    /// A record failed its CRC or decoded to garbage somewhere other
    /// than the truncatable tail of the final segment.
    CorruptRecord {
        /// Sequence number, when knowable.
        seq: Option<u64>,
        /// What was wrong.
        what: &'static str,
    },
    /// A segment-level structural problem (bad header length, records
    /// out of order, a torn record followed by later segments, …).
    CorruptSegment {
        /// Offending segment path.
        path: String,
        /// What was wrong.
        what: String,
    },
    /// Record sequence numbers are not gap-free.
    SequenceGap {
        /// Sequence number expected next.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// A snapshot file failed validation.
    CorruptSnapshot {
        /// Offending path.
        path: String,
        /// What was wrong.
        what: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, kind, path } => {
                write!(f, "i/o failure during {op} on {path}: {kind:?}")
            }
            StoreError::NotAWalSegment { path } => {
                write!(f, "{path} is not a FASEA WAL segment")
            }
            StoreError::NotASnapshot { path } => {
                write!(f, "{path} is not a FASEA service snapshot")
            }
            StoreError::BadVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            StoreError::ForeignInstance { expected, found } => write!(
                f,
                "log belongs to a different service instance \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            StoreError::CorruptRecord { seq, what } => match seq {
                Some(s) => write!(f, "corrupt record at seq {s}: {what}"),
                None => write!(f, "corrupt record: {what}"),
            },
            StoreError::CorruptSegment { path, what } => {
                write!(f, "corrupt segment {path}: {what}")
            }
            StoreError::SequenceGap { expected, found } => {
                write!(f, "sequence gap: expected {expected}, found {found}")
            }
            StoreError::CorruptSnapshot { path, what } => {
                write!(f, "corrupt snapshot {path}: {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an [`std::io::Error`] with operation and path context.
    pub fn io(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> Self {
        StoreError::Io {
            op,
            kind: err.kind(),
            path: path.display().to_string(),
        }
    }
}

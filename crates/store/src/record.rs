//! WAL record types and their binary codec.
//!
//! Every mutation of the arrangement service is one [`Record`]. Records
//! are framed on disk as
//!
//! ```text
//! len  u32   payload length in bytes
//! crc  u32   CRC-32 of the payload
//! payload    tag u8 | seq u64 | body
//! ```
//!
//! (all integers little-endian). The frame is what makes torn writes
//! detectable: a record cut short by a crash either has fewer bytes
//! than `len` promises or fails the CRC, and the tail of the final
//! segment is truncated back to the last intact frame. The sequence
//! number inside the payload makes records self-identifying, so replay
//! can verify the log is gap-free even across segment boundaries.
//!
//! Record bodies:
//!
//! | tag | record           | body |
//! |-----|------------------|------|
//! | 1   | `Propose`        | `t u64, user_capacity u32, num_events u32, dim u32, contexts f64×(n·d), arr_len u32, arrangement u32×len, context_hash u64` |
//! | 2   | `Feedback`       | `t u64, len u32, accepts u8×len` |
//! | 3   | `SnapshotMarker` | `snapshot_seq u64` |
//! | 4   | `TxnPrepare`     | `txn u64, len u32, (event u32, dec u32)×len` |
//! | 5   | `TxnCommit`      | `txn u64` |
//! | 6   | `TxnAbort`       | `txn u64` |
//! | 7   | `Lifecycle`      | `t u64, event u32, capacity u32` |
//!
//! `Propose` logs the *full* revealed context block, not just its hash:
//! recovery re-executes the policy's `select` on the logged contexts
//! and cross-checks the resulting arrangement against the logged one,
//! which both rebuilds policy-internal state (score caches, RNG
//! advancement) and detects non-deterministic replay. The hash is kept
//! as a cheap end-to-end integrity check on the context floats.

use crate::crc::crc32;
use crate::{
    StoreError, TAG_FEEDBACK, TAG_LIFECYCLE, TAG_PROPOSE, TAG_SNAPSHOT_MARKER, TAG_TXN_ABORT,
    TAG_TXN_COMMIT, TAG_TXN_PREPARE,
};
use std::io::{self, Read, Write};

/// Upper bound on a record payload (16 MiB). A `len` above this is
/// treated as corruption rather than an allocation request.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// One durable mutation of the arrangement service.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An arrangement was proposed to the arriving user at round `t`.
    /// Logged *after* the policy computed it (compute-then-log): if the
    /// process dies before this record is durable, recovery re-draws
    /// the identical proposal from the replayed policy state.
    Propose {
        /// Round index of the proposal.
        t: u64,
        /// The arriving user's capacity `c_u`.
        user_capacity: u32,
        /// Number of events in the revealed context block.
        num_events: u32,
        /// Context dimension `d`.
        dim: u32,
        /// Row-major revealed contexts (`num_events × dim`).
        contexts: Vec<f64>,
        /// Arranged event indices.
        arrangement: Vec<u32>,
        /// FNV-1a hash over the context bytes (fast integrity check).
        context_hash: u64,
    },
    /// The user's accept/reject answers for the pending proposal of
    /// round `t`. Logged *before* being applied (log-then-apply).
    Feedback {
        /// Round index the feedback answers.
        t: u64,
        /// Accept/reject per arranged slot.
        accepts: Vec<bool>,
    },
    /// A service snapshot covering every record with sequence number
    /// `< snapshot_seq` exists on disk; older segments are compactable.
    SnapshotMarker {
        /// First sequence number *not* covered by the snapshot.
        snapshot_seq: u64,
    },
    /// Phase 1 of a cross-shard capacity transaction: this shard's
    /// write set (per-event capacity decrements) for transaction `txn`.
    /// Written to a *shard* log and made durable before the coordinator
    /// takes its commit decision; a prepare without a matching
    /// [`Record::TxnCommit`] or [`Record::TxnAbort`] later in the log
    /// is in-doubt and resolved from the coordinator log on recovery.
    TxnPrepare {
        /// Transaction id (the coordinator's round index, or a repair
        /// id with the high bit set).
        txn: u64,
        /// The write set: `(event id, capacity decrement)` pairs, in
        /// ascending event order.
        decs: Vec<(u32, u32)>,
    },
    /// Phase 2 outcome: the decrements of the matching
    /// [`Record::TxnPrepare`] took effect.
    TxnCommit {
        /// Transaction id being committed.
        txn: u64,
    },
    /// Phase 2 outcome: the matching [`Record::TxnPrepare`] was
    /// discarded without effect.
    TxnAbort {
        /// Transaction id being aborted.
        txn: u64,
    },
    /// One event-lifecycle action applied immediately before round `t`:
    /// the event's remaining capacity was *set* to `capacity` (0 =
    /// closed/expired; a later record re-opens it). Set-capacity
    /// semantics make replay idempotent. Appears in service round logs
    /// (coordinator churn decisions) and in shard logs (the owning
    /// shard's durable copy of the same decision).
    Lifecycle {
        /// Round index the action fires before.
        t: u64,
        /// The event being re-planned.
        event: u32,
        /// The new remaining capacity (0 closes the event).
        capacity: u32,
    },
}

impl Record {
    /// The frame tag byte for this record type.
    pub fn tag(&self) -> u8 {
        match self {
            Record::Propose { .. } => TAG_PROPOSE,
            Record::Feedback { .. } => TAG_FEEDBACK,
            Record::SnapshotMarker { .. } => TAG_SNAPSHOT_MARKER,
            Record::TxnPrepare { .. } => TAG_TXN_PREPARE,
            Record::TxnCommit { .. } => TAG_TXN_COMMIT,
            Record::TxnAbort { .. } => TAG_TXN_ABORT,
            Record::Lifecycle { .. } => TAG_LIFECYCLE,
        }
    }

    /// Short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Record::Propose { .. } => "Propose",
            Record::Feedback { .. } => "Feedback",
            Record::SnapshotMarker { .. } => "SnapshotMarker",
            Record::TxnPrepare { .. } => "TxnPrepare",
            Record::TxnCommit { .. } => "TxnCommit",
            Record::TxnAbort { .. } => "TxnAbort",
            Record::Lifecycle { .. } => "Lifecycle",
        }
    }
}

/// FNV-1a over the little-endian bytes of a context block, the
/// `context_hash` carried by [`Record::Propose`].
pub fn context_hash(contexts: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in contexts {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Serialises the payload (`tag | seq | body`) of one record.
pub fn encode_payload(seq: u64, record: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(record.tag());
    out.extend_from_slice(&seq.to_le_bytes());
    match record {
        Record::Propose {
            t,
            user_capacity,
            num_events,
            dim,
            contexts,
            arrangement,
            context_hash,
        } => {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&user_capacity.to_le_bytes());
            out.extend_from_slice(&num_events.to_le_bytes());
            out.extend_from_slice(&dim.to_le_bytes());
            for v in contexts {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(arrangement.len() as u32).to_le_bytes());
            for v in arrangement {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&context_hash.to_le_bytes());
        }
        Record::Feedback { t, accepts } => {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&(accepts.len() as u32).to_le_bytes());
            out.extend(accepts.iter().map(|&b| b as u8));
        }
        Record::SnapshotMarker { snapshot_seq } => {
            out.extend_from_slice(&snapshot_seq.to_le_bytes());
        }
        Record::TxnPrepare { txn, decs } => {
            out.extend_from_slice(&txn.to_le_bytes());
            out.extend_from_slice(&(decs.len() as u32).to_le_bytes());
            for (event, dec) in decs {
                out.extend_from_slice(&event.to_le_bytes());
                out.extend_from_slice(&dec.to_le_bytes());
            }
        }
        Record::TxnCommit { txn } => {
            out.extend_from_slice(&txn.to_le_bytes());
        }
        Record::TxnAbort { txn } => {
            out.extend_from_slice(&txn.to_le_bytes());
        }
        Record::Lifecycle { t, event, capacity } => {
            out.extend_from_slice(&t.to_le_bytes());
            out.extend_from_slice(&event.to_le_bytes());
            out.extend_from_slice(&capacity.to_le_bytes());
        }
    }
    out
}

/// Writes one raw frame (`len | crc | payload`) to `w`. Returns the
/// number of bytes written. This is the framing primitive shared by the
/// WAL and by `fasea-serve`'s wire protocol; the payload is opaque.
pub fn write_raw_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<u64> {
    let crc = crc32(payload);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(8 + payload.len() as u64)
}

/// Writes one framed record (`len | crc | payload`) to `w`. Returns the
/// number of bytes written.
pub fn write_frame<W: Write>(w: &mut W, seq: u64, record: &Record) -> io::Result<u64> {
    let payload = encode_payload(seq, record);
    write_raw_frame(w, &payload)
}

/// Outcome of reading one frame from a stream.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameOutcome {
    /// A fully intact record.
    Ok {
        /// The record's sequence number.
        seq: u64,
        /// The decoded record.
        record: Record,
        /// Frame size in bytes (header + payload).
        bytes: u64,
    },
    /// Clean end of stream: zero bytes remained.
    Eof,
    /// The stream ends inside a frame, or the frame fails its CRC or
    /// decodes to garbage — a torn or corrupted tail. `valid_prefix`
    /// additional bytes (always 0 here) are *not* part of the damage;
    /// the caller truncates the file back to the frame start.
    Torn {
        /// Human-readable reason the frame was rejected.
        why: &'static str,
    },
}

/// Outcome of reading one raw frame from a stream.
#[derive(Debug, Clone, PartialEq)]
pub enum RawFrame {
    /// A CRC-valid payload.
    Payload {
        /// The opaque frame payload.
        payload: Vec<u8>,
        /// Frame size in bytes (header + payload).
        bytes: u64,
    },
    /// Clean end of stream: zero bytes remained.
    Eof,
    /// The stream ends inside a frame, the length field is implausible,
    /// or the payload fails its CRC.
    Torn {
        /// Human-readable reason the frame was rejected.
        why: &'static str,
    },
}

/// Reads one raw frame (`len | crc | payload`). Partial reads (as
/// produced by [`crate::fault::ShortReader`]) are handled by
/// `read_exact`; only a genuine end-of-stream inside a frame reports
/// [`RawFrame::Torn`].
pub fn read_raw_frame<R: Read>(r: &mut R) -> io::Result<RawFrame> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes) from a torn length field.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(RawFrame::Eof),
            0 => {
                return Ok(RawFrame::Torn {
                    why: "torn length field",
                })
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_PAYLOAD {
        return Ok(RawFrame::Torn {
            why: "implausible payload length",
        });
    }
    let mut crc_buf = [0u8; 4];
    if read_exact_or_eof(r, &mut crc_buf)?.is_none() {
        return Ok(RawFrame::Torn {
            why: "torn checksum field",
        });
    }
    let expect_crc = u32::from_le_bytes(crc_buf);
    let mut payload = vec![0u8; len as usize];
    if read_exact_or_eof(r, &mut payload)?.is_none() {
        return Ok(RawFrame::Torn {
            why: "torn payload",
        });
    }
    if crc32(&payload) != expect_crc {
        return Ok(RawFrame::Torn {
            why: "checksum mismatch",
        });
    }
    Ok(RawFrame::Payload {
        payload,
        bytes: 8 + len as u64,
    })
}

/// Incremental-parse outcome for one raw frame sitting at the front of
/// a byte buffer — the non-blocking dual of [`read_raw_frame`], used by
/// network readers that accumulate bytes under read timeouts.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameParse {
    /// The buffer does not yet hold a complete frame; read more bytes.
    NeedMore,
    /// A CRC-valid frame was parsed.
    Frame {
        /// The opaque frame payload.
        payload: Vec<u8>,
        /// Bytes to drain from the front of the buffer.
        consumed: usize,
    },
    /// The buffer front is not a valid frame (implausible length or CRC
    /// failure); the stream is unrecoverably desynchronised.
    Bad {
        /// Human-readable reason the frame was rejected.
        why: &'static str,
    },
}

/// Attempts to parse one raw frame from the front of `buf`.
pub fn parse_raw_frame(buf: &[u8]) -> FrameParse {
    if buf.len() < 4 {
        return FrameParse::NeedMore;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len == 0 || len > MAX_PAYLOAD {
        return FrameParse::Bad {
            why: "implausible payload length",
        };
    }
    let total = 8 + len as usize;
    if buf.len() < total {
        return FrameParse::NeedMore;
    }
    let expect_crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload = &buf[8..total];
    if crc32(payload) != expect_crc {
        return FrameParse::Bad {
            why: "checksum mismatch",
        };
    }
    FrameParse::Frame {
        payload: payload.to_vec(),
        consumed: total,
    }
}

/// Reads one framed record. Partial reads (as produced by
/// [`crate::fault::ShortReader`]) are handled by `read_exact`; only a
/// genuine end-of-stream inside a frame reports [`FrameOutcome::Torn`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<FrameOutcome> {
    let (payload, bytes) = match read_raw_frame(r)? {
        RawFrame::Eof => return Ok(FrameOutcome::Eof),
        RawFrame::Torn { why } => return Ok(FrameOutcome::Torn { why }),
        RawFrame::Payload { payload, bytes } => (payload, bytes),
    };
    match decode_payload(&payload) {
        Ok((seq, record)) => Ok(FrameOutcome::Ok { seq, record, bytes }),
        // CRC passed but the payload is malformed: an encoder/decoder
        // mismatch rather than disk damage, but still a rejection.
        Err(_) => Ok(FrameOutcome::Torn {
            why: "undecodable payload",
        }),
    }
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<Option<()>> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..])? {
            0 => return Ok(None),
            n => filled += n,
        }
    }
    Ok(Some(()))
}

/// Decodes a payload (`tag | seq | body`) produced by
/// [`encode_payload`].
pub fn decode_payload(payload: &[u8]) -> Result<(u64, Record), StoreError> {
    let mut at = 0usize;
    let corrupt = |what: &'static str| StoreError::CorruptRecord { seq: None, what };
    let take = |at: &mut usize, n: usize| -> Result<&[u8], StoreError> {
        if *at + n > payload.len() {
            return Err(corrupt("payload truncated"));
        }
        let s = &payload[*at..*at + n];
        *at += n;
        Ok(s)
    };

    let tag = take(&mut at, 1)?[0];
    let seq = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
    let record = match tag {
        TAG_PROPOSE => {
            let t = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            let user_capacity = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            let num_events = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            let dim = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            let cells = (num_events as usize)
                .checked_mul(dim as usize)
                .ok_or_else(|| corrupt("context shape overflow"))?;
            let raw = take(&mut at, 8 * cells)?;
            let contexts: Vec<f64> = raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let arr_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            if arr_len > num_events {
                return Err(corrupt("arrangement longer than event set"));
            }
            let raw = take(&mut at, 4 * arr_len as usize)?;
            let arrangement: Vec<u32> = raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            if arrangement.iter().any(|&v| v >= num_events) {
                return Err(corrupt("arranged event out of range"));
            }
            let context_hash = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            Record::Propose {
                t,
                user_capacity,
                num_events,
                dim,
                contexts,
                arrangement,
                context_hash,
            }
        }
        TAG_FEEDBACK => {
            let t = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            let len = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            let raw = take(&mut at, len as usize)?;
            if raw.iter().any(|&b| b > 1) {
                return Err(corrupt("feedback byte is not a bool"));
            }
            let accepts = raw.iter().map(|&b| b == 1).collect();
            Record::Feedback { t, accepts }
        }
        TAG_SNAPSHOT_MARKER => {
            let snapshot_seq = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            Record::SnapshotMarker { snapshot_seq }
        }
        TAG_TXN_PREPARE => {
            let txn = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            let len = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            let bytes = (len as usize)
                .checked_mul(8)
                .ok_or_else(|| corrupt("write-set length overflow"))?;
            let raw = take(&mut at, bytes)?;
            let decs: Vec<(u32, u32)> = raw
                .chunks_exact(8)
                .map(|c| {
                    (
                        u32::from_le_bytes(c[..4].try_into().unwrap()),
                        u32::from_le_bytes(c[4..].try_into().unwrap()),
                    )
                })
                .collect();
            if decs.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(corrupt("write set not in ascending event order"));
            }
            Record::TxnPrepare { txn, decs }
        }
        TAG_TXN_COMMIT => {
            let txn = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            Record::TxnCommit { txn }
        }
        TAG_TXN_ABORT => {
            let txn = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            Record::TxnAbort { txn }
        }
        TAG_LIFECYCLE => {
            let t = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
            let event = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            let capacity = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
            Record::Lifecycle { t, event, capacity }
        }
        _ => return Err(corrupt("unknown record tag")),
    };
    if at != payload.len() {
        return Err(corrupt("trailing payload bytes"));
    }
    Ok((seq, record))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_propose() -> Record {
        let contexts: Vec<f64> = (0..6).map(|i| i as f64 * 0.25 - 0.5).collect();
        Record::Propose {
            t: 41,
            user_capacity: 3,
            num_events: 3,
            dim: 2,
            context_hash: context_hash(&contexts),
            contexts,
            arrangement: vec![2, 0],
        }
    }

    #[test]
    fn round_trip_all_kinds() {
        let records = [
            sample_propose(),
            Record::Feedback {
                t: 41,
                accepts: vec![true, false],
            },
            Record::SnapshotMarker { snapshot_seq: 84 },
            Record::TxnPrepare {
                txn: 41,
                decs: vec![(2, 1), (7, 3)],
            },
            Record::TxnPrepare {
                txn: (1 << 63) | 9,
                decs: vec![],
            },
            Record::TxnCommit { txn: 41 },
            Record::TxnAbort { txn: 42 },
            Record::Lifecycle {
                t: 43,
                event: 7,
                capacity: 0,
            },
            Record::Lifecycle {
                t: 44,
                event: 7,
                capacity: 12,
            },
        ];
        for (i, rec) in records.iter().enumerate() {
            let payload = encode_payload(1000 + i as u64, rec);
            let (seq, decoded) = decode_payload(&payload).unwrap();
            assert_eq!(seq, 1000 + i as u64);
            assert_eq!(&decoded, rec);
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        let rec = sample_propose();
        let bytes = write_frame(&mut buf, 7, &rec).unwrap();
        assert_eq!(bytes as usize, buf.len());
        let mut r = &buf[..];
        match read_frame(&mut r).unwrap() {
            FrameOutcome::Ok {
                seq,
                record,
                bytes: b,
            } => {
                assert_eq!(seq, 7);
                assert_eq!(record, rec);
                assert_eq!(b, bytes);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(read_frame(&mut r).unwrap(), FrameOutcome::Eof);
    }

    #[test]
    fn torn_frame_detected_at_every_cut() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0, &sample_propose()).unwrap();
        for cut in 1..buf.len() {
            let mut r = &buf[..cut];
            assert!(
                matches!(read_frame(&mut r).unwrap(), FrameOutcome::Torn { .. }),
                "cut at {cut} not reported as torn"
            );
        }
    }

    #[test]
    fn bit_flip_detected_everywhere_in_payload() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            3,
            &Record::Feedback {
                t: 9,
                accepts: vec![true, true, false],
            },
        )
        .unwrap();
        // Flipping any bit after the length field must fail the CRC (a
        // flip inside `len` instead yields a torn/implausible frame).
        for byte in 4..buf.len() {
            for bit in 0..8 {
                let mut copy = buf.clone();
                copy[byte] ^= 1 << bit;
                let mut r = &copy[..];
                assert!(
                    matches!(read_frame(&mut r).unwrap(), FrameOutcome::Torn { .. }),
                    "flip at {byte}:{bit} accepted"
                );
            }
        }
    }

    #[test]
    fn oversized_length_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r).unwrap(),
            FrameOutcome::Torn {
                why: "implausible payload length"
            }
        ));
    }

    #[test]
    fn decode_rejects_structural_garbage() {
        // Unknown tag.
        let mut payload = encode_payload(0, &Record::SnapshotMarker { snapshot_seq: 1 });
        payload[0] = 99;
        assert!(decode_payload(&payload).is_err());
        // Arrangement index out of range.
        let bad = Record::Propose {
            t: 0,
            user_capacity: 1,
            num_events: 2,
            dim: 1,
            contexts: vec![0.0, 0.0],
            arrangement: vec![5],
            context_hash: 0,
        };
        let payload = encode_payload(0, &bad);
        assert!(decode_payload(&payload).is_err());
        // Trailing bytes.
        let mut payload = encode_payload(0, &Record::SnapshotMarker { snapshot_seq: 1 });
        payload.push(0);
        assert!(decode_payload(&payload).is_err());
        // Prepare write set out of order (also catches duplicates).
        let bad = Record::TxnPrepare {
            txn: 3,
            decs: vec![(5, 1), (5, 2)],
        };
        assert!(decode_payload(&encode_payload(0, &bad)).is_err());
        // Prepare whose length field promises more pairs than exist.
        let mut payload = encode_payload(
            0,
            &Record::TxnPrepare {
                txn: 3,
                decs: vec![(1, 1)],
            },
        );
        let at = 1 + 8 + 8; // tag | seq | txn → length field
        payload[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_payload(&payload).is_err());
    }

    #[test]
    fn raw_frame_round_trip_and_parse() {
        let payload = b"serve-payload".to_vec();
        let mut buf = Vec::new();
        let bytes = write_raw_frame(&mut buf, &payload).unwrap();
        assert_eq!(bytes as usize, buf.len());
        // Streaming read.
        let mut r = &buf[..];
        assert_eq!(
            read_raw_frame(&mut r).unwrap(),
            RawFrame::Payload {
                payload: payload.clone(),
                bytes
            }
        );
        assert_eq!(read_raw_frame(&mut r).unwrap(), RawFrame::Eof);
        // Incremental parse: every prefix short of the full frame needs
        // more bytes; the full buffer parses exactly once.
        for cut in 0..buf.len() {
            assert_eq!(parse_raw_frame(&buf[..cut]), FrameParse::NeedMore);
        }
        match parse_raw_frame(&buf) {
            FrameParse::Frame {
                payload: p,
                consumed,
            } => {
                assert_eq!(p, payload);
                assert_eq!(consumed, buf.len());
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn parse_raw_frame_rejects_corruption() {
        let mut buf = Vec::new();
        write_raw_frame(&mut buf, b"x".repeat(16).as_slice()).unwrap();
        // Bit flip in the payload → CRC failure.
        let mut flipped = buf.clone();
        flipped[10] ^= 0x40;
        assert!(matches!(
            parse_raw_frame(&flipped),
            FrameParse::Bad {
                why: "checksum mismatch"
            }
        ));
        // Oversized length field.
        let mut oversized = buf.clone();
        oversized[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            parse_raw_frame(&oversized),
            FrameParse::Bad {
                why: "implausible payload length"
            }
        ));
    }

    #[test]
    fn context_hash_is_order_sensitive() {
        assert_ne!(context_hash(&[1.0, 2.0]), context_hash(&[2.0, 1.0]));
        assert_eq!(context_hash(&[]), 0xcbf2_9ce4_8422_2325);
    }
}

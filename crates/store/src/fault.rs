//! Fault injection for crash-recovery tests.
//!
//! Two tools:
//!
//! * [`FaultFile`] mutates files on disk the way real failures do —
//!   torn writes (the file ends mid-record), bit flips (a storage or
//!   transfer error that CRCs must catch), and byte-range overwrites.
//! * [`ShortReader`] wraps any [`Read`] and returns at most `max_chunk`
//!   bytes per call, optionally splitting a read at one chosen absolute
//!   offset — exercising the (easy to get wrong) partial-read handling
//!   of decode paths.
//!
//! Everything here is test infrastructure, but it lives in the library
//! (not `#[cfg(test)]`) so downstream crates — `fasea-sim`'s recovery
//! tests, the integration crash matrix — can drive the same faults.

use std::fs::{self, OpenOptions};
use std::io::{self, Read};
use std::path::{Path, PathBuf};

/// Handle for injecting storage faults into one file.
#[derive(Debug, Clone)]
pub struct FaultFile {
    path: PathBuf,
}

impl FaultFile {
    /// Targets `path` (which must exist when a fault is injected).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FaultFile { path: path.into() }
    }

    /// The targeted path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length in bytes.
    pub fn len(&self) -> io::Result<u64> {
        Ok(fs::metadata(&self.path)?.len())
    }

    /// `true` if the file is empty.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Simulates a torn write: the file is cut to `keep_bytes`, as if
    /// the process died while the tail was still in flight.
    pub fn torn_write(&self, keep_bytes: u64) -> io::Result<()> {
        let f = OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(keep_bytes)?;
        f.sync_all()
    }

    /// Flips bit `bit` (0–7) of the byte at `offset`.
    pub fn flip_bit(&self, offset: u64, bit: u8) -> io::Result<()> {
        assert!(bit < 8, "bit index out of range");
        let mut bytes = fs::read(&self.path)?;
        let idx = offset as usize;
        if idx >= bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("flip offset {offset} beyond file of {} bytes", bytes.len()),
            ));
        }
        bytes[idx] ^= 1 << bit;
        fs::write(&self.path, bytes)
    }

    /// Overwrites `data.len()` bytes starting at `offset` (a localised
    /// scribble, e.g. a misdirected write).
    pub fn overwrite(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut bytes = fs::read(&self.path)?;
        let start = offset as usize;
        let end = start + data.len();
        if end > bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "overwrite {start}..{end} beyond file of {} bytes",
                    bytes.len()
                ),
            ));
        }
        bytes[start..end].copy_from_slice(data);
        fs::write(&self.path, bytes)
    }

    /// Appends `garbage` to the file (e.g. a partially-written next
    /// record of unknown shape).
    pub fn append_garbage(&self, garbage: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = OpenOptions::new().append(true).open(&self.path)?;
        f.write_all(garbage)?;
        f.sync_all()
    }
}

/// A [`Read`] adapter that never returns more than `max_chunk` bytes
/// per call and additionally splits one read exactly at `split_at`
/// bytes from the start of the stream. Decode paths that assume `read`
/// fills the buffer break under this adapter; correct ones don't.
#[derive(Debug)]
pub struct ShortReader<R> {
    inner: R,
    max_chunk: usize,
    split_at: Option<u64>,
    position: u64,
}

impl<R: Read> ShortReader<R> {
    /// Caps every read at `max_chunk` bytes (must be ≥ 1).
    pub fn new(inner: R, max_chunk: usize) -> Self {
        assert!(max_chunk >= 1, "max_chunk must be at least 1");
        ShortReader {
            inner,
            max_chunk,
            split_at: None,
            position: 0,
        }
    }

    /// Additionally forces a read boundary at absolute offset
    /// `split_at` — the read that would straddle it is cut short.
    pub fn with_split(mut self, split_at: u64) -> Self {
        self.split_at = Some(split_at);
        self
    }
}

impl<R: Read> Read for ShortReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut limit = buf.len().min(self.max_chunk);
        if let Some(split) = self.split_at {
            if self.position < split {
                let until_split = (split - self.position) as usize;
                limit = limit.min(until_split);
            }
        }
        let n = self.inner.read(&mut buf[..limit])?;
        self.position += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{read_frame, write_frame, FrameOutcome, Record};

    fn tmp_file(name: &str, contents: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!("fasea-fault-{name}-{}", std::process::id()));
        fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn torn_write_truncates() {
        let path = tmp_file("torn", &[1, 2, 3, 4, 5, 6]);
        let f = FaultFile::new(&path);
        f.torn_write(2).unwrap();
        assert_eq!(fs::read(&path).unwrap(), vec![1, 2]);
        assert_eq!(f.len().unwrap(), 2);
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn flip_bit_flips_exactly_one() {
        let path = tmp_file("flip", &[0b0000_0000; 4]);
        let f = FaultFile::new(&path);
        f.flip_bit(2, 5).unwrap();
        assert_eq!(fs::read(&path).unwrap(), vec![0, 0, 0b0010_0000, 0]);
        assert!(f.flip_bit(99, 0).is_err());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn overwrite_and_append() {
        let path = tmp_file("scribble", &[9; 8]);
        let f = FaultFile::new(&path);
        f.overwrite(3, &[1, 2]).unwrap();
        f.append_garbage(&[7, 7]).unwrap();
        assert_eq!(fs::read(&path).unwrap(), vec![9, 9, 9, 1, 2, 9, 9, 9, 7, 7]);
        assert!(f.overwrite(9, &[1, 1]).is_err());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn short_reader_chunks_and_splits() {
        let data: Vec<u8> = (0..64).collect();
        let mut r = ShortReader::new(&data[..], 5).with_split(13);
        let mut out = Vec::new();
        let mut buf = [0u8; 32];
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 5);
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn frame_decoding_survives_short_reads() {
        let mut buf = Vec::new();
        let rec = Record::Feedback {
            t: 5,
            accepts: vec![true, false, true],
        };
        write_frame(&mut buf, 11, &rec).unwrap();
        for chunk in 1..8 {
            for split in 0..buf.len() as u64 {
                let mut r = ShortReader::new(&buf[..], chunk).with_split(split);
                match read_frame(&mut r).unwrap() {
                    FrameOutcome::Ok { seq, record, .. } => {
                        assert_eq!(seq, 11);
                        assert_eq!(record, rec);
                    }
                    other => panic!("chunk {chunk} split {split}: {other:?}"),
                }
            }
        }
    }
}

//! Full service snapshots.
//!
//! A [`ServiceSnapshot`] is a point-in-time image of everything the
//! arrangement service needs to resume: the round counter, remaining
//! per-event capacities, cumulative regret accounting, the pending
//! proposal (if the service crashed between `propose` and `feedback`),
//! and an opaque policy-state blob (estimator matrices plus any
//! policy-private RNG state — `fasea-sim` owns its encoding).
//!
//! Snapshots are written with the classic temp-file + `rename` dance:
//! the bytes (including a trailing CRC-32) go to
//! `<name>.tmp-<pid>`, are fsynced, and only then renamed over the
//! final path, so a crash mid-snapshot can never damage an existing
//! snapshot. Files are named `snap-<seq>.snap` where `seq` is the WAL
//! sequence number the snapshot covers up to (exclusive); after the
//! rename, WAL segments containing only records below `seq` are
//! compactable.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic        "FASEASNP"    8 bytes
//! version      u32
//! fingerprint  u64
//! seq          u64     first WAL seq NOT covered by this snapshot
//! t            u64     completed rounds
//! rounds       u64     ┐
//! arranged     u64     │ regret accounting
//! rewards      u64     ┘
//! n_events     u32
//! remaining    u32 × n_events
//! has_pending  u8
//! [pending]    arr_len u32, arrangement u32×len,
//!              num_events u32, dim u32, contexts f64×(n·d)
//! name_len     u32
//! policy_name  utf-8 bytes
//! state_len    u32
//! policy_state bytes
//! crc          u32     CRC-32 of everything above
//! ```

use crate::crc::crc32;
use crate::StoreError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of every service snapshot.
pub const MAGIC: &[u8; 8] = b"FASEASNP";
/// Current snapshot-format version.
pub const VERSION: u32 = 1;

/// A proposal that was pending (awaiting user feedback) at snapshot
/// time. Carried so recovery surfaces the crashed-mid-round state
/// instead of silently re-proposing.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingProposal {
    /// Arranged event indices.
    pub arrangement: Vec<u32>,
    /// Number of events in the revealed context block.
    pub num_events: u32,
    /// Context dimension `d`.
    pub dim: u32,
    /// Row-major revealed contexts.
    pub contexts: Vec<f64>,
}

/// A point-in-time image of the arrangement service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSnapshot {
    /// Service-instance fingerprint (must match the WAL's).
    pub fingerprint: u64,
    /// First WAL sequence number *not* covered by this snapshot;
    /// recovery replays records with `seq >= this`.
    pub seq: u64,
    /// Completed rounds at snapshot time.
    pub t: u64,
    /// Regret accounting: rounds recorded.
    pub rounds: u64,
    /// Regret accounting: total events arranged.
    pub arranged: u64,
    /// Regret accounting: total events accepted.
    pub rewards: u64,
    /// Remaining capacity per event.
    pub remaining: Vec<u32>,
    /// The pending proposal, if the service was mid-round.
    pub pending: Option<PendingProposal>,
    /// Name of the wrapped policy (sanity-checked on restore).
    pub policy_name: String,
    /// Opaque policy state blob (encoded by `fasea-sim`).
    pub policy_state: Vec<u8>,
}

impl ServiceSnapshot {
    /// Serialises the snapshot, CRC trailer included.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.policy_state.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.t.to_le_bytes());
        out.extend_from_slice(&self.rounds.to_le_bytes());
        out.extend_from_slice(&self.arranged.to_le_bytes());
        out.extend_from_slice(&self.rewards.to_le_bytes());
        out.extend_from_slice(&(self.remaining.len() as u32).to_le_bytes());
        for &c in &self.remaining {
            out.extend_from_slice(&c.to_le_bytes());
        }
        match &self.pending {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                out.extend_from_slice(&(p.arrangement.len() as u32).to_le_bytes());
                for &v in &p.arrangement {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&p.num_events.to_le_bytes());
                out.extend_from_slice(&p.dim.to_le_bytes());
                for &x in &p.contexts {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.policy_name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.policy_name.as_bytes());
        out.extend_from_slice(&(self.policy_state.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.policy_state);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a snapshot blob, verifying magic, version and CRC.
    ///
    /// # Errors
    /// [`StoreError::NotASnapshot`], [`StoreError::BadVersion`], or
    /// [`StoreError::CorruptSnapshot`] on any structural damage.
    pub fn decode(path: &Path, blob: &[u8]) -> Result<Self, StoreError> {
        let pstr = || path.display().to_string();
        let corrupt = |what: &str| StoreError::CorruptSnapshot {
            path: pstr(),
            what: what.to_string(),
        };
        if blob.len() < 12 || &blob[0..8] != MAGIC {
            return Err(StoreError::NotASnapshot { path: pstr() });
        }
        let version = u32::from_le_bytes(blob[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(StoreError::BadVersion { found: version });
        }
        if blob.len() < 16 {
            return Err(corrupt("shorter than its trailer"));
        }
        let (body, trailer) = blob.split_at(blob.len() - 4);
        let expect_crc = u32::from_le_bytes(trailer.try_into().unwrap());
        if crc32(body) != expect_crc {
            return Err(corrupt("checksum mismatch"));
        }

        let mut at = 12usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            if *at + n > body.len() {
                return Err(StoreError::CorruptSnapshot {
                    path: pstr(),
                    what: "body truncated".to_string(),
                });
            }
            let s = &body[*at..*at + n];
            *at += n;
            Ok(s)
        };
        let u64_at = |at: &mut usize| -> Result<u64, StoreError> {
            Ok(u64::from_le_bytes(take(at, 8)?.try_into().unwrap()))
        };
        let u32_at = |at: &mut usize| -> Result<u32, StoreError> {
            Ok(u32::from_le_bytes(take(at, 4)?.try_into().unwrap()))
        };

        let fingerprint = u64_at(&mut at)?;
        let seq = u64_at(&mut at)?;
        let t = u64_at(&mut at)?;
        let rounds = u64_at(&mut at)?;
        let arranged = u64_at(&mut at)?;
        let rewards = u64_at(&mut at)?;
        let n_events = u32_at(&mut at)? as usize;
        if n_events > 1 << 24 {
            return Err(corrupt("implausible event count"));
        }
        let mut remaining = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            remaining.push(u32_at(&mut at)?);
        }
        let pending = match take(&mut at, 1)?[0] {
            0 => None,
            1 => {
                let arr_len = u32_at(&mut at)? as usize;
                let mut arrangement = Vec::with_capacity(arr_len);
                for _ in 0..arr_len {
                    arrangement.push(u32_at(&mut at)?);
                }
                let num_events = u32_at(&mut at)?;
                let dim = u32_at(&mut at)?;
                let cells = (num_events as usize)
                    .checked_mul(dim as usize)
                    .filter(|&c| c <= 1 << 28)
                    .ok_or_else(|| corrupt("context shape overflow"))?;
                let raw = take(&mut at, 8 * cells)?;
                let contexts = raw
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                Some(PendingProposal {
                    arrangement,
                    num_events,
                    dim,
                    contexts,
                })
            }
            _ => return Err(corrupt("invalid pending flag")),
        };
        let name_len = u32_at(&mut at)? as usize;
        let policy_name = String::from_utf8(take(&mut at, name_len)?.to_vec())
            .map_err(|_| corrupt("policy name is not utf-8"))?;
        let state_len = u32_at(&mut at)? as usize;
        let policy_state = take(&mut at, state_len)?.to_vec();
        if at != body.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(ServiceSnapshot {
            fingerprint,
            seq,
            t,
            rounds,
            arranged,
            rewards,
            remaining,
            pending,
            policy_name,
            policy_state,
        })
    }

    /// Writes the snapshot atomically into `dir` as `snap-<seq>.snap`
    /// (temp file + fsync + rename + directory fsync). Returns the
    /// final path.
    ///
    /// # Errors
    /// I/O failures only; an existing snapshot is never left damaged.
    pub fn write_atomic(&self, dir: &Path) -> Result<PathBuf, StoreError> {
        fs::create_dir_all(dir).map_err(|e| StoreError::io("create snapshot dir", dir, &e))?;
        let final_path = dir.join(snapshot_name(self.seq));
        let tmp_path = dir.join(format!("snap-{:020}.tmp-{}", self.seq, std::process::id()));
        let bytes = self.encode();
        let mut f = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&tmp_path)
            .map_err(|e| StoreError::io("create snapshot temp", &tmp_path, &e))?;
        f.write_all(&bytes)
            .and_then(|_| f.sync_all())
            .map_err(|e| StoreError::io("write snapshot", &tmp_path, &e))?;
        drop(f);
        fs::rename(&tmp_path, &final_path)
            .map_err(|e| StoreError::io("rename snapshot", &final_path, &e))?;
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(final_path)
    }

    /// Loads and validates one snapshot file.
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let mut blob = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut blob))
            .map_err(|e| StoreError::io("read snapshot", path, &e))?;
        Self::decode(path, &blob)
    }
}

fn snapshot_name(seq: u64) -> String {
    format!("snap-{seq:020}.snap")
}

/// Finds the newest *valid* snapshot for this instance in `dir`,
/// scanning candidates from highest sequence downward and skipping any
/// that fail validation (a half-damaged snapshot must not block
/// recovery — an older intact one plus a longer WAL replay is always
/// available). Returns `None` when no usable snapshot exists.
///
/// # Errors
/// Only directory-listing I/O failures; individually corrupt or
/// foreign snapshot files are skipped.
pub fn latest_snapshot(
    dir: &Path,
    fingerprint: u64,
) -> Result<Option<ServiceSnapshot>, StoreError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreError::io("list snapshots", dir, &e)),
    };
    let mut candidates = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("list snapshots", dir, &e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("snap-") && name.ends_with(".snap") {
            candidates.push(entry.path());
        }
    }
    candidates.sort();
    for path in candidates.iter().rev() {
        match ServiceSnapshot::load(path) {
            Ok(snap) if snap.fingerprint == fingerprint => return Ok(Some(snap)),
            // Foreign or damaged snapshots are skipped, not fatal.
            Ok(_) | Err(_) => continue,
        }
    }
    Ok(None)
}

/// Removes snapshots older than the newest `keep` (house-keeping after
/// a successful snapshot). Returns the number removed.
pub fn prune_snapshots(dir: &Path, keep: usize) -> Result<usize, StoreError> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(StoreError::io("list snapshots", dir, &e)),
    };
    let mut candidates = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("list snapshots", dir, &e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("snap-") && name.ends_with(".snap") {
            candidates.push(entry.path());
        }
    }
    candidates.sort();
    let mut removed = 0;
    if candidates.len() > keep {
        for path in &candidates[..candidates.len() - keep] {
            fs::remove_file(path).map_err(|e| StoreError::io("remove snapshot", path, &e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultFile;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fasea-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(seq: u64) -> ServiceSnapshot {
        ServiceSnapshot {
            fingerprint: 0xFEED,
            seq,
            t: 12,
            rounds: 12,
            arranged: 30,
            rewards: 17,
            remaining: vec![3, 0, 5],
            pending: Some(PendingProposal {
                arrangement: vec![2, 0],
                num_events: 3,
                dim: 2,
                contexts: vec![0.1, -0.2, 0.3, 0.0, 0.5, 0.9],
            }),
            policy_name: "UCB".to_string(),
            policy_state: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = sample(99);
        let blob = snap.encode();
        let decoded = ServiceSnapshot::decode(Path::new("x"), &blob).unwrap();
        assert_eq!(decoded, snap);
        // And without a pending proposal.
        let mut snap = sample(100);
        snap.pending = None;
        let decoded = ServiceSnapshot::decode(Path::new("x"), &snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn every_bit_flip_detected() {
        let blob = sample(5).encode();
        for byte in 0..blob.len() {
            let mut copy = blob.clone();
            copy[byte] ^= 0x10;
            assert!(
                ServiceSnapshot::decode(Path::new("x"), &copy).is_err(),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn every_truncation_detected() {
        let blob = sample(5).encode();
        for cut in 0..blob.len() {
            assert!(
                ServiceSnapshot::decode(Path::new("x"), &blob[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn atomic_write_and_latest() {
        let dir = tmp("atomic");
        sample(10).write_atomic(&dir).unwrap();
        sample(25).write_atomic(&dir).unwrap();
        let latest = latest_snapshot(&dir, 0xFEED).unwrap().unwrap();
        assert_eq!(latest.seq, 25);
        // Foreign fingerprint: nothing usable.
        assert!(latest_snapshot(&dir, 0xDEAD).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_newest_falls_back_to_older() {
        let dir = tmp("fallback");
        sample(10).write_atomic(&dir).unwrap();
        let newest = sample(25).write_atomic(&dir).unwrap();
        FaultFile::new(&newest).flip_bit(40, 2).unwrap();
        let latest = latest_snapshot(&dir, 0xFEED).unwrap().unwrap();
        assert_eq!(latest.seq, 10, "should fall back past the damaged snapshot");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp("prune");
        for seq in [1u64, 2, 3, 4] {
            sample(seq).write_atomic(&dir).unwrap();
        }
        let removed = prune_snapshots(&dir, 2).unwrap();
        assert_eq!(removed, 2);
        let latest = latest_snapshot(&dir, 0xFEED).unwrap().unwrap();
        assert_eq!(latest.seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Group-commit pipeline over the [`Wal`](crate::wal::Wal).
//!
//! The PR 1 durability design puts every append — and, under
//! [`FsyncPolicy::Always`](crate::wal::FsyncPolicy), a full `fsync` —
//! inline on the caller. That is correct but serialises the service's
//! round loop behind disk latency: N concurrent clients pay N fsyncs.
//! [`GroupCommitWal`] decouples the two halves:
//!
//! * **Front end** (any thread): [`GroupCommitWal::append`] assigns the
//!   record a monotone LSN (identical to the sequence number the `Wal`
//!   will give it), pushes it onto an in-memory commit queue and
//!   returns immediately.
//! * **Syncer** (one dedicated thread, owns the `Wal`): drains the
//!   whole queue, writes every record via
//!   [`Wal::append_unsynced`](crate::wal::Wal::append_unsynced), then
//!   applies the fsync policy **once** for the batch — so N queued
//!   records share a single write + fsync syscall pair — and publishes
//!   the durability watermark.
//!
//! The watermark [`GroupCommitWal::durable_lsn`] is a *count*: every
//! record with `lsn < durable_lsn()` has reached the durability level
//! the configured policy promises (`Always` ⇒ fsynced; `EveryN`/`Never`
//! ⇒ written to the OS, exactly the PR 1/2 acknowledgement semantics).
//! Callers that acknowledge work to the outside world wait on the
//! watermark ([`GroupCommitWal::wait_durable`]) before replying, which
//! preserves acked-implies-durable while letting the round loop run
//! ahead of the disk.
//!
//! Maintenance operations ([`rotate`](GroupCommitWal::rotate),
//! [`compact_below`](GroupCommitWal::compact_below),
//! [`sync_barrier`](GroupCommitWal::sync_barrier)) travel through the
//! same queue, so they are totally ordered with the appends around them
//! — the asynchronous snapshotter in `fasea-sim` relies on this to
//! rotate and compact without ever touching the `Wal` from a second
//! thread.
//!
//! # Failure model
//!
//! The first storage error poisons the pipeline: the error is published
//! to every current and future caller (appends fail fast, waiters wake
//! with the error), and the syncer parks — keeping the `Wal` so
//! [`GroupCommitWal::close`] can still hand it back — until closed.
//! This mirrors the PR 1 rule that a failed append poisons the service.

use crate::record::Record;
use crate::wal::{FsyncPolicy, Wal};
use crate::StoreError;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Live commit-syncer threads across the whole process — the serving
/// layer's drain test asserts this returns to zero after a graceful
/// shutdown, i.e. that closing the service joined its syncer.
static LIVE_SYNCERS: AtomicUsize = AtomicUsize::new(0);

/// Number of [`GroupCommitWal`] syncer threads currently alive in this
/// process.
pub fn live_commit_syncers() -> usize {
    LIVE_SYNCERS.load(Ordering::SeqCst)
}

/// Observer invoked by the syncer after each published batch with
/// `(batch_size, commit_latency)`: the number of records the batch
/// carried and the queue-to-durable latency of its oldest record.
pub type CommitObserver = Arc<dyn Fn(usize, Duration) + Send + Sync>;

/// Notifier invoked by the syncer whenever the durability watermark
/// advances, with the new [`GroupCommitWal::durable_lsn`] value. The
/// serve actor installs one that pokes its command channel so deferred
/// client replies flush without waiting for the poll interval.
pub type CommitNotifier = Arc<dyn Fn(u64) + Send + Sync>;

/// One unit of ordered work for the syncer.
enum Task {
    /// Append `record` (its LSN was assigned at enqueue time and the
    /// `Wal` will reproduce it). `enqueued` feeds the commit-latency
    /// observer.
    Append { record: Record, enqueued: Instant },
    /// Close the current segment and start a fresh one.
    Rotate,
    /// Delete fully-covered segments below `seq`.
    CompactBelow(u64),
    /// Force an fsync regardless of policy and bump the barrier
    /// counter; [`GroupCommitWal::sync_barrier`] waits on it.
    SyncBarrier,
}

struct State {
    queue: VecDeque<Task>,
    /// The LSN the next append will receive — always equal to the
    /// `Wal`'s `next_seq` plus the queued appends.
    next_lsn: u64,
    /// Barriers enqueued / completed; a `sync_barrier` caller waits for
    /// its ticket.
    barriers_issued: u64,
    barriers_done: u64,
    /// First storage error; poisons the pipeline.
    error: Option<StoreError>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals the syncer: work queued or shutdown requested.
    work_cv: Condvar,
    /// Signals callers: watermark advanced, barrier done, or error.
    progress_cv: Condvar,
    /// The durability watermark (count semantics: `lsn < durable` ⇒
    /// durable per policy). Written only by the syncer while holding
    /// `state`; read lock-free by anyone.
    durable: AtomicU64,
    observer: Mutex<Option<CommitObserver>>,
    notifier: Mutex<Option<CommitNotifier>>,
}

/// A [`Wal`](crate::wal::Wal) fronted by an in-memory commit queue and
/// a dedicated syncer thread. See the [module docs](self) for the
/// protocol.
pub struct GroupCommitWal {
    shared: Arc<Shared>,
    /// `Some` until [`close`](GroupCommitWal::close) joins it.
    syncer: Option<JoinHandle<Wal>>,
    policy: FsyncPolicy,
}

impl fmt::Debug for GroupCommitWal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupCommitWal")
            .field("durable_lsn", &self.durable_lsn())
            .field("next_lsn", &self.next_lsn())
            .field("policy", &self.policy)
            .finish()
    }
}

impl GroupCommitWal {
    /// Takes ownership of `wal` and spawns the syncer thread. Records
    /// already in the log count as durable (`durable_lsn` starts at the
    /// `Wal`'s `next_seq`).
    pub fn spawn(wal: Wal) -> Self {
        let policy = wal.fsync_policy();
        let next = wal.next_seq();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                next_lsn: next,
                barriers_issued: 0,
                barriers_done: 0,
                error: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            progress_cv: Condvar::new(),
            durable: AtomicU64::new(next),
            observer: Mutex::new(None),
            notifier: Mutex::new(None),
        });
        let for_thread = Arc::clone(&shared);
        // Counted on the spawning side so the liveness counter is
        // already accurate when `spawn` returns; the syncer's drop
        // guard decrements on exit.
        LIVE_SYNCERS.fetch_add(1, Ordering::SeqCst);
        let syncer = std::thread::Builder::new()
            .name("fasea-commit-syncer".into())
            .spawn(move || syncer_loop(wal, for_thread))
            .inspect_err(|_| {
                LIVE_SYNCERS.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn commit syncer");
        GroupCommitWal {
            shared,
            syncer: Some(syncer),
            policy,
        }
    }

    /// Installs (or clears) the per-batch metrics observer.
    pub fn set_commit_observer(&self, observer: Option<CommitObserver>) {
        *self.shared.observer.lock().expect("observer poisoned") = observer;
    }

    /// Installs (or clears) the watermark-advance notifier.
    pub fn set_commit_notifier(&self, notifier: Option<CommitNotifier>) {
        *self.shared.notifier.lock().expect("notifier poisoned") = notifier;
    }

    /// Enqueues one record for the syncer and returns its LSN — the
    /// exact sequence number the underlying `Wal` will assign. The
    /// record is **not yet durable**; acknowledge it only once
    /// [`durable_lsn`](GroupCommitWal::durable_lsn) exceeds the
    /// returned LSN.
    ///
    /// # Errors
    /// The pipeline's poisoning error, if a previous batch failed.
    pub fn append(&self, record: Record) -> Result<u64, StoreError> {
        let mut st = self.lock_state();
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.queue.push_back(Task::Append {
            record,
            enqueued: Instant::now(),
        });
        drop(st);
        self.shared.work_cv.notify_one();
        Ok(lsn)
    }

    /// Enqueues a segment rotation, ordered after everything already
    /// queued.
    ///
    /// # Errors
    /// The pipeline's poisoning error, if a previous batch failed.
    pub fn rotate(&self) -> Result<(), StoreError> {
        self.enqueue_maintenance(Task::Rotate)
    }

    /// Enqueues compaction of segments fully below `seq`, ordered after
    /// everything already queued.
    ///
    /// # Errors
    /// The pipeline's poisoning error, if a previous batch failed.
    pub fn compact_below(&self, seq: u64) -> Result<(), StoreError> {
        self.enqueue_maintenance(Task::CompactBelow(seq))
    }

    fn enqueue_maintenance(&self, task: Task) -> Result<(), StoreError> {
        let mut st = self.lock_state();
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        st.queue.push_back(task);
        drop(st);
        self.shared.work_cv.notify_one();
        Ok(())
    }

    /// Enqueues a forced fsync ordered after everything already queued
    /// and blocks until it has completed — on return, every previously
    /// appended record is fsynced regardless of policy. The snapshotter
    /// uses this before writing a snapshot that makes records
    /// compactable.
    ///
    /// # Errors
    /// The pipeline's poisoning error.
    pub fn sync_barrier(&self) -> Result<(), StoreError> {
        let mut st = self.lock_state();
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        st.barriers_issued += 1;
        let ticket = st.barriers_issued;
        st.queue.push_back(Task::SyncBarrier);
        self.shared.work_cv.notify_one();
        while st.barriers_done < ticket {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            st = self
                .shared
                .progress_cv
                .wait(st)
                .expect("group commit state poisoned");
        }
        Ok(())
    }

    /// The durability watermark: every record whose LSN is *strictly
    /// below* this value has reached the durability level the fsync
    /// policy promises. Lock-free.
    pub fn durable_lsn(&self) -> u64 {
        self.shared.durable.load(Ordering::Acquire)
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> u64 {
        self.lock_state().next_lsn
    }

    /// Records enqueued but not yet handed to the `Wal` (diagnostics).
    pub fn queued(&self) -> usize {
        self.lock_state().queue.len()
    }

    /// The underlying log's fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The pipeline's poisoning error, if any batch has failed.
    pub fn error(&self) -> Option<StoreError> {
        self.lock_state().error.clone()
    }

    /// Blocks until `lsn` is covered by the watermark (`durable_lsn() >
    /// lsn`) and returns the watermark.
    ///
    /// # Errors
    /// The pipeline's poisoning error — in that case the record may or
    /// may not have reached disk and the caller must *not* acknowledge
    /// it.
    pub fn wait_durable(&self, lsn: u64) -> Result<u64, StoreError> {
        // Fast path: already covered.
        let seen = self.durable_lsn();
        if seen > lsn {
            return Ok(seen);
        }
        let mut st = self.lock_state();
        loop {
            // `durable` is only stored while `state` is held, so
            // re-checking under the lock cannot miss a wakeup.
            let seen = self.durable_lsn();
            if seen > lsn {
                return Ok(seen);
            }
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            st = self
                .shared
                .progress_cv
                .wait(st)
                .expect("group commit state poisoned");
        }
    }

    /// Shuts the pipeline down: the syncer drains everything still
    /// queued (unless already poisoned), fsyncs, and hands the `Wal`
    /// back for synchronous use (final snapshot, close protocol).
    ///
    /// # Errors
    /// The pipeline's poisoning error. The `Wal` is dropped in that
    /// case — per the PR 1 rule, the safe continuation after a storage
    /// failure is to re-open and recover from disk, not to keep
    /// appending to a writer of unknown state.
    pub fn close(mut self) -> Result<Wal, StoreError> {
        let wal = self.join_syncer();
        match self.lock_state().error.clone() {
            None => Ok(wal),
            Some(e) => Err(e),
        }
    }

    fn join_syncer(&mut self) -> Wal {
        {
            let mut st = self.lock_state();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        self.syncer
            .take()
            .expect("syncer already joined")
            .join()
            .expect("commit syncer panicked")
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.shared
            .state
            .lock()
            .expect("group commit state poisoned")
    }
}

impl Drop for GroupCommitWal {
    fn drop(&mut self) {
        if self.syncer.is_some() {
            // Not closed explicitly: still drain and join so nothing
            // queued is silently lost and no thread leaks.
            let _ = self.join_syncer();
        }
    }
}

/// The syncer thread: drains the queue in whole batches, writes the
/// batch, applies the fsync policy once, publishes the watermark.
/// Returns the `Wal` at shutdown so `close()` can hand it back.
fn syncer_loop(mut wal: Wal, shared: Arc<Shared>) -> Wal {
    struct LiveGuard;
    impl Drop for LiveGuard {
        fn drop(&mut self) {
            LIVE_SYNCERS.fetch_sub(1, Ordering::SeqCst);
        }
    }
    // The matching increment happened in `GroupCommitWal::spawn`.
    let _live = LiveGuard;

    loop {
        // Wait for work; on shutdown keep draining until empty.
        let batch: Vec<Task> = {
            let mut st = shared.state.lock().expect("group commit state poisoned");
            loop {
                if !st.queue.is_empty() {
                    if st.error.is_some() {
                        // Poisoned: drop the queue (nothing was acked)
                        // and park until shutdown.
                        st.queue.clear();
                        continue;
                    }
                    break;
                }
                if st.shutdown {
                    return wal;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .expect("group commit state poisoned");
            }
            st.queue.drain(..).collect()
        };

        let mut appended = 0usize;
        let mut oldest: Option<Instant> = None;
        let mut barriers = 0u64;
        let mut outcome: Result<(), StoreError> = Ok(());
        let mut last_seq: Option<u64> = None;
        for task in batch {
            let step = match task {
                Task::Append { record, enqueued } => {
                    oldest = Some(oldest.map_or(enqueued, |o| o.min(enqueued)));
                    wal.append_unsynced(&record).map(|seq| {
                        // LSN-order invariant: `append` promised the
                        // caller `next_lsn` at enqueue time, which is
                        // only honest if the single-writer syncer sees
                        // a dense FIFO queue — every on-disk sequence
                        // number must be exactly one past its batch
                        // predecessor. The pipelined round engine acks
                        // rounds off these LSNs, so drift here would
                        // silently reorder acked durability.
                        if let Some(prev) = last_seq {
                            debug_assert_eq!(
                                seq,
                                prev + 1,
                                "group-commit WAL assigned a non-dense sequence"
                            );
                        }
                        last_seq = Some(seq);
                        appended += 1;
                    })
                }
                Task::Rotate => wal.rotate(),
                Task::CompactBelow(seq) => wal.compact_below(seq).map(|_| ()),
                Task::SyncBarrier => wal.sync().map(|()| {
                    barriers += 1;
                }),
            };
            if let Err(e) = step {
                outcome = Err(e);
                break;
            }
        }
        if outcome.is_ok() && appended > 0 {
            // One policy application for the whole batch: this is the
            // group commit — N records, at most one fsync.
            outcome = wal.apply_fsync_policy();
        }

        let watermark = wal.next_seq();
        if outcome.is_ok() {
            if let Some(last) = last_seq {
                // The published watermark must cover exactly the LSNs
                // this batch wrote — nothing skipped, nothing extra.
                debug_assert_eq!(watermark, last + 1, "watermark out of step with batch");
            }
        }
        let published = {
            let mut st = shared.state.lock().expect("group commit state poisoned");
            match &outcome {
                Ok(()) => {
                    // `Always` reached here post-fsync; `EveryN`/`Never`
                    // post-write — exactly the per-policy durability
                    // point the synchronous path acknowledged at.
                    shared.durable.store(watermark, Ordering::Release);
                    st.barriers_done += barriers;
                    true
                }
                Err(e) => {
                    st.error = Some(e.clone());
                    false
                }
            }
        };
        shared.progress_cv.notify_all();

        if published {
            if appended > 0 {
                let observer = shared.observer.lock().expect("observer poisoned").clone();
                if let Some(obs) = observer {
                    let latency = oldest.map_or(Duration::ZERO, |at| at.elapsed());
                    obs(appended, latency);
                }
            }
            let notifier = shared.notifier.lock().expect("notifier poisoned").clone();
            if let Some(notify) = notifier {
                notify(watermark);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalOptions;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicUsize;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fasea-group-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn feedback(t: u64, len: usize) -> Record {
        Record::Feedback {
            t,
            accepts: vec![t.is_multiple_of(2); len],
        }
    }

    fn open_wal(dir: &std::path::Path, fsync: FsyncPolicy) -> Wal {
        let opts = WalOptions {
            segment_bytes: u64::MAX,
            fsync,
        };
        Wal::open(dir, 7, opts).unwrap().0
    }

    #[test]
    fn batched_appends_reach_disk_identically_to_direct_appends() {
        let dir = tmp("parity");
        let group = GroupCommitWal::spawn(open_wal(&dir, FsyncPolicy::Always));
        let mut last = 0;
        for t in 0..50u64 {
            last = group.append(feedback(t, 3)).unwrap();
            assert_eq!(last, t, "LSN must equal the Wal sequence number");
        }
        let watermark = group.wait_durable(last).unwrap();
        assert!(watermark > last);
        let wal = group.close().unwrap();
        drop(wal);

        let dir2 = tmp("parity-direct");
        let mut direct = open_wal(&dir2, FsyncPolicy::Always);
        for t in 0..50u64 {
            direct.append(&feedback(t, 3)).unwrap();
        }
        drop(direct);

        let (grouped, _, torn_a) = crate::wal::scan(&dir, 7).unwrap();
        let (directly, _, torn_b) = crate::wal::scan(&dir2, 7).unwrap();
        assert_eq!(torn_a, None);
        assert_eq!(torn_b, None);
        assert_eq!(grouped, directly, "grouped and direct logs diverge");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn maintenance_tasks_are_ordered_with_appends() {
        let dir = tmp("maintenance");
        let group = GroupCommitWal::spawn(open_wal(&dir, FsyncPolicy::Never));
        for t in 0..10u64 {
            group.append(feedback(t, 2)).unwrap();
        }
        group.rotate().unwrap();
        let marker_lsn = group
            .append(Record::SnapshotMarker { snapshot_seq: 10 })
            .unwrap();
        assert_eq!(marker_lsn, 10);
        group.compact_below(10).unwrap();
        group.sync_barrier().unwrap();
        // After the barrier everything is on disk and the first segment
        // (records 0..10) is gone.
        assert!(group.durable_lsn() > marker_lsn);
        let (records, _, _) = crate::wal::scan(&dir, 7).unwrap();
        assert_eq!(records.len(), 1, "compaction kept old records");
        assert!(matches!(
            records[0].1,
            Record::SnapshotMarker { snapshot_seq: 10 }
        ));
        let wal = group.close().unwrap();
        assert_eq!(wal.next_seq(), 11);
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn close_drains_the_queue_and_joins_the_syncer() {
        let dir = tmp("drain");
        let group = GroupCommitWal::spawn(open_wal(&dir, FsyncPolicy::EveryN(16)));
        // Other tests spawn/close syncers concurrently, so only a lower
        // bound is stable here.
        assert!(live_commit_syncers() >= 1);
        for t in 0..100u64 {
            group.append(feedback(t, 1)).unwrap();
        }
        // No waiting: close must still land all 100 records.
        let wal = group.close().unwrap();
        assert_eq!(wal.next_seq(), 100);
        drop(wal);
        let (records, _, _) = crate::wal::scan(&dir, 7).unwrap();
        assert_eq!(records.len(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_appenders_get_distinct_ordered_lsns() {
        let dir = tmp("concurrent");
        let group = Arc::new(GroupCommitWal::spawn(open_wal(&dir, FsyncPolicy::Never)));
        let mut handles = Vec::new();
        for worker in 0..4u64 {
            let g = Arc::clone(&group);
            handles.push(std::thread::spawn(move || {
                let mut lsns = Vec::new();
                for i in 0..25u64 {
                    lsns.push(g.append(feedback(worker * 100 + i, 1)).unwrap());
                }
                lsns
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..100).collect();
        assert_eq!(all, expect, "LSNs must be dense and unique");
        group.wait_durable(99).unwrap();
        let group = Arc::try_unwrap(group).expect("sole owner");
        let wal = group.close().unwrap();
        // On-disk sequence numbers are the assigned LSNs, gap-free.
        assert_eq!(wal.next_seq(), 100);
        drop(wal);
        let (records, _, _) = crate::wal::scan(&dir, 7).unwrap();
        for (i, (seq, _)) in records.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observer_and_notifier_fire_with_consistent_values() {
        let dir = tmp("observer");
        let group = GroupCommitWal::spawn(open_wal(&dir, FsyncPolicy::Always));
        let batched = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicU64::new(0));
        let b = Arc::clone(&batched);
        group.set_commit_observer(Some(Arc::new(move |n, _latency| {
            b.fetch_add(n, Ordering::SeqCst);
        })));
        let hw = Arc::clone(&high_water);
        group.set_commit_notifier(Some(Arc::new(move |durable| {
            hw.fetch_max(durable, Ordering::SeqCst);
        })));
        let mut last = 0;
        for t in 0..40u64 {
            last = group.append(feedback(t, 2)).unwrap();
        }
        group.wait_durable(last).unwrap();
        assert_eq!(batched.load(Ordering::SeqCst), 40);
        assert!(high_water.load(Ordering::SeqCst) >= 40);
        group.close().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! CRC-32 (IEEE 802.3 polynomial), the checksum guarding every WAL
//! record and snapshot file.
//!
//! The reflected polynomial `0xEDB88320` with initial value and final
//! XOR of `0xFFFFFFFF` — the same parametrisation as zlib's `crc32()`,
//! so blobs can be cross-checked with standard tooling. A 256-entry
//! lookup table is built once at first use.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 hasher for multi-part payloads.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalises and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"feedback-aware social event-participant arrangement";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}

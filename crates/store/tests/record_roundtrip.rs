//! Property tests: every WAL record type survives encode → frame →
//! decode byte-exactly, under arbitrary payloads, short reads, and
//! arbitrary framing damage.

use fasea_store::record::{
    context_hash, decode_payload, encode_payload, read_frame, write_frame, FrameOutcome,
};
use fasea_store::{Record, ShortReader};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy for an arbitrary `Propose` record with a consistent shape.
fn arb_propose() -> impl Strategy<Value = Record> {
    (1u32..8, 1u32..5, any::<u64>(), any::<u32>()).prop_flat_map(|(n, d, t, cap)| {
        (
            Just((n, d, t, cap)),
            vec(-1.0f64..1.0, (n * d) as usize..=(n * d) as usize),
            vec(0u32..n, 0..=(n as usize)),
        )
            .prop_map(|((n, d, t, cap), contexts, arrangement)| Record::Propose {
                t,
                user_capacity: cap,
                num_events: n,
                dim: d,
                context_hash: context_hash(&contexts),
                contexts,
                arrangement,
            })
    })
}

fn arb_feedback() -> impl Strategy<Value = Record> {
    (any::<u64>(), vec(any::<bool>(), 0..=12))
        .prop_map(|(t, accepts)| Record::Feedback { t, accepts })
}

fn arb_marker() -> impl Strategy<Value = Record> {
    any::<u64>().prop_map(|snapshot_seq| Record::SnapshotMarker { snapshot_seq })
}

fn roundtrip(seq: u64, record: &Record) -> Record {
    let payload = encode_payload(seq, record);
    let (got_seq, decoded) = decode_payload(&payload).expect("decode");
    assert_eq!(got_seq, seq);
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn propose_roundtrip(seq in any::<u64>(), rec in arb_propose()) {
        prop_assert_eq!(roundtrip(seq, &rec), rec);
    }

    #[test]
    fn feedback_roundtrip(seq in any::<u64>(), rec in arb_feedback()) {
        prop_assert_eq!(roundtrip(seq, &rec), rec);
    }

    #[test]
    fn marker_roundtrip(seq in any::<u64>(), rec in arb_marker()) {
        prop_assert_eq!(roundtrip(seq, &rec), rec);
    }

    #[test]
    fn framed_roundtrip_survives_short_reads(
        seq in any::<u64>(),
        rec in arb_propose(),
        chunk in 1usize..9,
        split_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, seq, &rec).unwrap();
        let split = (buf.len() as f64 * split_frac) as u64;
        let mut r = ShortReader::new(&buf[..], chunk).with_split(split);
        match read_frame(&mut r).unwrap() {
            FrameOutcome::Ok { seq: s, record, bytes } => {
                prop_assert_eq!(s, seq);
                prop_assert_eq!(record, rec);
                prop_assert_eq!(bytes as usize, buf.len());
            }
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    #[test]
    fn truncated_frame_never_decodes(
        seq in any::<u64>(),
        rec in arb_feedback(),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, seq, &rec).unwrap();
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        let mut r = &buf[..cut];
        let outcome = read_frame(&mut r).unwrap();
        if cut == 0 {
            prop_assert_eq!(outcome, FrameOutcome::Eof);
        } else {
            prop_assert!(matches!(outcome, FrameOutcome::Torn { .. }),
                "cut {} of {} gave {:?}", cut, buf.len(), outcome);
        }
    }

    #[test]
    fn flipped_frame_never_decodes_wrong(
        seq in any::<u64>(),
        rec in arb_propose(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, seq, &rec).unwrap();
        let byte = ((buf.len() - 1) as f64 * byte_frac) as usize;
        buf[byte] ^= 1 << bit;
        let mut r = &buf[..];
        // A flip in the length prefix may still frame a CRC-valid
        // record only if it restores the original length; any decoded
        // record must therefore be byte-identical to what was written.
        match read_frame(&mut r).unwrap() {
            FrameOutcome::Ok { seq: s, record, .. } => {
                prop_assert_eq!(s, seq);
                prop_assert_eq!(record, rec);
            }
            FrameOutcome::Torn { .. } | FrameOutcome::Eof => {}
        }
    }
}

//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the criterion 0.5 API its benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Throughput`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after a short warm-up, each
//! benchmark runs timed batches until a fixed wall-clock budget is
//! spent, then reports the mean, min and max time per iteration (plus
//! derived throughput when configured). There are no statistical
//! comparisons or HTML reports; the output is one line per benchmark
//! on stdout, which is what the repo's perf baselines record.

#![warn(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives the timed closure of one benchmark.
pub struct Bencher<'a> {
    measured: &'a mut Option<Sample>,
    budget: Duration,
}

/// One benchmark's aggregated timing result.
#[derive(Debug, Clone, Copy)]
struct Sample {
    iters: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, called in batches until the time budget is
    /// spent. The routine's return value is passed through
    /// [`black_box`] so the computation is not optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for ~10% of the budget (at least once).
        let warm_budget = self.budget / 10;
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= warm_budget {
                break;
            }
        }

        // Choose a batch size aiming for ~1ms per batch.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

        let mut sample = Sample {
            iters: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        };
        let run_start = Instant::now();
        while run_start.elapsed() < self.budget {
            let batch_start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = batch_start.elapsed();
            let per_iter = elapsed / batch as u32;
            sample.iters += batch;
            sample.total += elapsed;
            sample.min = sample.min.min(per_iter);
            sample.max = sample.max.max(per_iter);
        }
        *self.measured = Some(sample);
    }
}

/// A named set of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes work by time
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (measurement time is fixed).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(&label, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for call-shape compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // FASEA_BENCH_MS overrides the per-benchmark time budget
        // (milliseconds); the default keeps full suites quick while
        // still averaging thousands of iterations for hot paths.
        let ms = std::env::var("FASEA_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms.max(10)),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let label = id.label.clone();
        self.run_one(&label, None, f);
        self
    }

    fn run_one<F>(&mut self, label: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut measured = None;
        let mut bencher = Bencher {
            measured: &mut measured,
            budget: self.budget,
        };
        f(&mut bencher);
        match measured {
            Some(s) => {
                let mean_ns = s.total.as_nanos() as f64 / s.iters.max(1) as f64;
                let rate = throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!("  thrpt: {:.3} Melem/s", n as f64 / mean_ns * 1e3)
                    }
                    Throughput::Bytes(n) => {
                        format!(
                            "  thrpt: {:.3} MiB/s",
                            n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                        )
                    }
                });
                println!(
                    "{label:<56} time: [{} {} {}]  iters: {}{}",
                    fmt_ns(s.min.as_nanos() as f64),
                    fmt_ns(mean_ns),
                    fmt_ns(s.max.as_nanos() as f64),
                    s.iters,
                    rate.unwrap_or_default(),
                );
            }
            None => println!("{label:<56} (no measurement: Bencher::iter never called)"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags such as `--bench`;
            // this minimal harness ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        std::env::set_var("FASEA_BENCH_MS", "10");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_round_trip() {
        std::env::set_var("FASEA_BENCH_MS", "10");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 7 * 7));
        g.finish();
    }

    #[test]
    fn fmt_ns_units() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2_000_000_000.0).contains(" s"));
    }
}

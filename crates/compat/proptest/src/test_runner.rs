//! Test-case execution plumbing (mirrors `proptest::test_runner`).

/// Per-test configuration. Only the case count is honoured by this
/// shim.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why one generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is not counted.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// Deterministic RNG for case generation (xorshift64* seeded from the
/// test name, so every `cargo test` run replays identical cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's name via FNV-1a.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h | 1, // avoid the xorshift fixed point 0
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, bound)`; `bound` 0 is treated as the full
    /// 64-bit domain.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        // Multiply-shift; the tiny modulo bias is irrelevant for test
        // case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        let mut c = TestRng::deterministic("bar");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::deterministic("unit");
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! Value-generation strategies (mirrors `proptest::strategy`).

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply draws a value from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy: empty range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy: empty range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (mirrors
/// `proptest::arbitrary::Arbitrary` for the primitives the workspace
/// uses).
pub trait Arbitrary: Sized {
    /// Draws a value from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: the workspace's numeric code treats
        // NaN/inf as a bug, not an input.
        rng.unit_f64() * 2e6 - 1e6
    }
}

/// Whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

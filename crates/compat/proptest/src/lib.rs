//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of the proptest 1.x API its tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * range strategies (`0..n`, `a..=b`, float ranges), tuple
//!   strategies, [`Just`], [`any`], and [`collection::vec`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from upstream, deliberately accepted for a test-only
//! shim: no shrinking (a failing case panics with the assertion
//! message; re-running reproduces it because case generation is
//! deterministic per test name), and no persistence/regression files.

#![warn(clippy::all)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        /// Draws a length within the bounds.
        pub fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection::vec: empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests (mirrors
    //! `proptest::prelude`).

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs the statements of one generated test case; used by the
/// [`proptest!`] expansion (a named function keeps clippy quiet about
/// immediately-called closures in macro output).
pub fn run_case<F>(f: F) -> Result<(), test_runner::TestCaseError>
where
    F: FnOnce() -> Result<(), test_runner::TestCaseError>,
{
    f()
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` against `cases` generated
/// inputs (default 256, overridable with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let outcome = $crate::run_case(move || {
                    $body
                    Ok(())
                });
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(64).saturating_add(4096),
                            "proptest {}: too many rejected cases ({} accepted)",
                            stringify!($name),
                            passed,
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            passed,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Property-test assertion: fails the current case (with an optional
/// formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r,
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Discards the current case (not counted against `cases`) when its
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2i32..=2, z in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vec_lengths_respect_size((n, items) in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..10, n..=n))
        })) {
            prop_assert_eq!(items.len(), n);
            prop_assert!(items.iter().all(|&v| v < 10));
        }

        #[test]
        fn assume_filters_cases(v in 0u64..100) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        fn map_transforms(s in (0u32..5).prop_map(|v| v * 10)) {
            prop_assert!(s % 10 == 0 && s < 50);
        }

        #[test]
        fn any_u64_runs(bits in any::<u64>()) {
            prop_assert_eq!(bits, bits);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn inner(v in 0u32..10) {
                prop_assert!(v < 5, "v was {}", v);
            }
        }
        inner();
    }
}

//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small subset of the rand 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng`], and the [`Rng`] extension
//! trait with `gen`, `gen_range`, `gen_bool` and `fill_bytes`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic, seedable, high-quality, and `Copy`-free,
//! exactly what the workspace relies on. It is **not** the upstream
//! ChaCha12 core, so raw streams differ from crates.io `rand`; nothing
//! in this workspace pins upstream streams (the golden tests pin
//! self-consistency, not external values).
//!
//! One deliberate extension over the upstream API: [`rngs::StdRng`]
//! exposes its full 32-byte internal state
//! ([`rngs::StdRng::to_state_bytes`] / [`rngs::StdRng::from_state_bytes`])
//! so learner snapshots can persist the exact RNG position — upstream
//! requires a serde feature for that.

#![warn(clippy::all)]

/// A source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A random generator that can be rebuilt from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator directly from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed by expanding it with
    /// SplitMix64 (the same construction upstream rand uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1), as upstream does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        lo + (hi - lo) * u
    }
}

/// Unbiased uniform draw from `[0, bound)` (`bound > 0`) via Lemire's
/// multiply-shift with rejection.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Low-word values below `2^64 mod bound` belong to the partial
    // final stripe and are rejected to stay unbiased.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = x as u128 * bound as u128;
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over the full domain).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace-standard seedable generator: xoshiro256++.
    ///
    /// Clonable, comparable, and with its full state exposed as 32
    /// bytes so durable snapshots can capture the exact stream
    /// position.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Serialises the full generator state.
        pub fn to_state_bytes(&self) -> [u8; 32] {
            let mut out = [0u8; 32];
            for (i, w) in self.s.iter().enumerate() {
                out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
            }
            out
        }

        /// Rebuilds a generator at the exact position captured by
        /// [`StdRng::to_state_bytes`].
        pub fn from_state_bytes(bytes: [u8; 32]) -> Self {
            StdRng::from_seed(bytes)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro;
                // remap it to an arbitrary nonzero constant.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&b));
            let c = rng.gen_range(-4i32..3);
            assert!((-4..3).contains(&c));
            let d = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing values: {seen:?}");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            rng.gen::<u64>();
        }
        let saved = rng.to_state_bytes();
        let expect: Vec<u64> = (0..20).map(|_| rng.gen()).collect();
        let mut resumed = StdRng::from_state_bytes(saved);
        let got: Vec<u64> = (0..20).map(|_| resumed.gen()).collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.gen::<u64>();
        let b = rng.gen::<u64>();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}

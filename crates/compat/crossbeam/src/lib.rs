//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the one API it uses: [`thread::scope`] with
//! [`thread::Scope::spawn`]. Since Rust 1.63 the standard library's
//! `std::thread::scope` provides the same borrow-the-stack guarantee,
//! so this shim is a thin adapter that keeps crossbeam's call shape
//! (the closure receives `&Scope`, and `scope` returns a `Result`
//! carrying any worker panic instead of unwinding).

#![warn(clippy::all)]

pub mod thread {
    //! Scoped threads (mirrors `crossbeam::thread`).

    use std::any::Any;

    /// A handle for spawning scoped threads; passed to every spawned
    /// closure, mirroring crossbeam's nested-spawn-capable signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread that may borrow from the enclosing
        /// stack frame. The join handle can be ignored; all threads are
        /// joined when the scope ends.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Creates a scope for spawning borrowing threads. Returns `Err`
    /// with the panic payload if any spawned thread panicked (crossbeam
    /// semantics), rather than resuming the unwind.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn worker_panic_surfaces_as_err() {
        let out = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let out = super::thread::scope(|_| 41 + 1).unwrap();
        assert_eq!(out, 42);
    }
}

//! Property-based tests for fasea-stats.

use fasea_stats::{
    dist::Distribution, kendall_tau, kendall_tau_naive, rng_from_seed, Bernoulli, CoinStream,
    Normal, PowerLaw, RunningStats, Uniform,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast Kendall implementation agrees with the naive one on
    /// arbitrary inputs, including heavy ties.
    #[test]
    fn kendall_fast_equals_naive(
        pairs in proptest::collection::vec((0i32..20, 0i32..20), 2..64)
    ) {
        let a: Vec<f64> = pairs.iter().map(|&(x, _)| x as f64).collect();
        let b: Vec<f64> = pairs.iter().map(|&(_, y)| y as f64).collect();
        let naive = kendall_tau_naive(&a, &b).unwrap();
        let fast = kendall_tau(&a, &b).unwrap();
        prop_assert!((naive - fast).abs() < 1e-12, "naive {naive} fast {fast}");
    }

    /// τ is within [-1, 1] and antisymmetric under reversing one ranking.
    #[test]
    fn kendall_range_and_antisymmetry(
        vals in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 2..40)
    ) {
        // De-duplicate to avoid tie subtleties in the antisymmetry check.
        let a: Vec<f64> = vals.iter().enumerate().map(|(i, &(x, _))| x as f64 + i as f64 * 1e-6).collect();
        let b: Vec<f64> = vals.iter().enumerate().map(|(i, &(_, y))| y as f64 + i as f64 * 1e-7).collect();
        let tau = kendall_tau(&a, &b).unwrap();
        prop_assert!((-1.0..=1.0).contains(&tau));
        let neg_b: Vec<f64> = b.iter().map(|y| -y).collect();
        let tau_neg = kendall_tau(&a, &neg_b).unwrap();
        prop_assert!((tau + tau_neg).abs() < 1e-12);
    }

    /// Uniform samples always fall inside the bounds.
    #[test]
    fn uniform_in_bounds(a in -100.0f64..100.0, width in 0.0f64..50.0, seed in 0u64..1000) {
        let d = Uniform::new(a, a + width);
        let mut rng = rng_from_seed(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= a && x <= a + width);
        }
    }

    /// Power samples always fall inside [0, 1].
    #[test]
    fn power_in_unit(k in 0.1f64..10.0, seed in 0u64..1000) {
        let d = PowerLaw::new(k);
        let mut rng = rng_from_seed(seed);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    /// Bernoulli samples are exactly 0 or 1 and obey clamping.
    #[test]
    fn bernoulli_binary(p in -1.0f64..2.0, seed in 0u64..1000) {
        let d = Bernoulli::new(p);
        prop_assert!((0.0..=1.0).contains(&d.p()));
        let mut rng = rng_from_seed(seed);
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(x == 0.0 || x == 1.0);
        }
    }

    /// Normal with σ=0 is the constant μ.
    #[test]
    fn normal_degenerate(mu in -10.0f64..10.0, seed in 0u64..100) {
        let d = Normal::new(mu, 0.0);
        let mut rng = rng_from_seed(seed);
        prop_assert_eq!(d.sample(&mut rng), mu);
    }

    /// CRN draws are deterministic functions of (seed, t, v) and live in [0,1).
    #[test]
    fn crn_deterministic_and_bounded(seed in any::<u64>(), t in any::<u64>(), v in any::<u64>()) {
        let s1 = CoinStream::new(seed);
        let s2 = CoinStream::new(seed);
        let u = s1.uniform(t, v);
        prop_assert_eq!(u, s2.uniform(t, v));
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// RunningStats::merge is associative with sequential pushes.
    #[test]
    fn running_stats_merge_consistency(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        split in 0usize..100
    ) {
        let split = split.min(xs.len());
        let mut whole = RunningStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut l = RunningStats::new();
        let mut r = RunningStats::new();
        xs[..split].iter().for_each(|&x| l.push(x));
        xs[split..].iter().for_each(|&x| r.push(x));
        l.merge(&r);
        prop_assert_eq!(l.count(), whole.count());
        prop_assert!((l.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((l.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance().abs()));
    }
}

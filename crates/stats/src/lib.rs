//! # fasea-stats
//!
//! Random distributions, rank statistics and streaming statistics for the
//! FASEA reproduction.
//!
//! The paper's synthetic workload (Table 4) draws the weight vector `θ`
//! and the per-round contexts `x_{t,v}` from Uniform[-1,1], Normal(0,1),
//! Power(2) and a per-dimension "shuffle" mixture of the three; event
//! capacities follow Normal distributions and user capacities
//! Uniform{1..5}. Its evaluation (Figure 2) ranks algorithms by the
//! **Kendall rank correlation** between estimated and true expected event
//! rewards. This crate supplies all of those primitives:
//!
//! * [`dist`] — scalar distributions implemented from scratch on top of a
//!   raw uniform bit source ([`rand`] is used only as the generator of
//!   uniform `f64`s).
//! * [`mvn`] — sampling from `N(θ̂, q² Y⁻¹)` given a Cholesky factor of
//!   `Y` (Thompson Sampling's line 7).
//! * [`kendall`] — Kendall's τ in both the naive `O(n²)` form and
//!   Knight's `O(n log n)` merge-sort form.
//! * [`crn`] — counter-based *common random numbers*: a stateless hash
//!   `u(seed, t, v) ∈ [0,1)` so that every policy in an experiment faces
//!   exactly the same acceptance coin flips (variance reduction, and the
//!   reason regret curves across policies are directly comparable).
//! * [`summary`] — Welford online moments and fixed-width histograms.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod crn;
pub mod dist;
pub mod kendall;
pub mod mvn;
pub mod quantile;
pub mod summary;

pub use crn::CoinStream;
pub use dist::{Bernoulli, Distribution, Normal, PowerLaw, Uniform};
pub use kendall::{kendall_tau, kendall_tau_naive};
pub use mvn::sample_gaussian_with_precision_factor;
pub use quantile::P2Quantile;
pub use summary::{Histogram, RunningStats};

/// Re-exported seedable RNG used across the workspace so every crate
/// agrees on one generator type.
pub type Rng = rand::rngs::StdRng;

/// Builds the workspace-standard RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}

/// Exports the RNG's exact internal state, so durable snapshots can
/// resume a policy's private randomness mid-stream (crash recovery must
/// re-draw precisely the values the uninterrupted run would have).
pub fn rng_state(rng: &Rng) -> [u8; 32] {
    rng.to_state_bytes()
}

/// Rebuilds an RNG from a state exported by [`rng_state`], continuing
/// the stream exactly where it left off.
pub fn rng_from_state(state: [u8; 32]) -> Rng {
    Rng::from_state_bytes(state)
}

//! Kendall's rank correlation coefficient.
//!
//! Figure 2 of the paper tracks, over time, the Kendall correlation
//! between the ranking of events by a policy's *estimated* expected
//! rewards and the ranking by the *true* expected rewards (`x_{t,v}ᵀθ`).
//! The paper's formula is τ-a:
//!
//! ```text
//! τ = (#concordant − #discordant) / (n(n−1)/2)
//! ```
//!
//! Two implementations are provided: the transparent `O(n²)` pair count
//! ([`kendall_tau_naive`]) and Knight's merge-sort inversion count
//! ([`kendall_tau`]), which is what the experiment harness uses at
//! |V| = 1000 over many checkpoints. Ties (in either coordinate) count
//! as neither concordant nor discordant, matching τ-a on continuous data
//! where ties have probability zero.

/// Naive `O(n²)` Kendall τ-a.
///
/// Returns `None` if the slices have different lengths or fewer than two
/// elements.
pub fn kendall_tau_naive(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i].partial_cmp(&a[j])?;
            let db = b[i].partial_cmp(&b[j])?;
            use std::cmp::Ordering::Equal;
            if da == Equal || db == Equal {
                continue;
            }
            if da == db {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    Some((concordant - discordant) as f64 / pairs)
}

/// Knight's `O(n log n)` Kendall τ-a.
///
/// Sorts by `a` (ties broken by `b`), then counts inversions of the `b`
/// sequence by merge sort; tied groups are subtracted so the result
/// matches [`kendall_tau_naive`] exactly. Returns `None` on length
/// mismatch, fewer than two elements, or NaN input.
///
/// # Example
///
/// ```
/// use fasea_stats::kendall_tau;
///
/// let truth = [0.9, 0.1, 0.5];
/// assert_eq!(kendall_tau(&truth, &truth), Some(1.0)); // same ranking
/// // One discordant pair of three: τ = (2 − 1) / 3.
/// assert_eq!(kendall_tau(&[0.5, 0.1, 0.9], &truth), Some(1.0 / 3.0));
/// ```
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    if a.iter().chain(b).any(|x| x.is_nan()) {
        return None;
    }
    let n = a.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&i, &j| {
        a[i].partial_cmp(&a[j])
            .unwrap()
            .then(b[i].partial_cmp(&b[j]).unwrap())
    });

    // Ties in `a`: pairs within a tied group never count.
    let mut tied_a = 0i64;
    // Pairs tied in both a and b (counted inside a-tied groups).
    let mut tied_both = 0i64;
    {
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && a[idx[j]] == a[idx[i]] {
                j += 1;
            }
            let g = (j - i) as i64;
            tied_a += g * (g - 1) / 2;
            // Within the a-tied group, count b-ties (group is b-sorted).
            let mut k = i;
            while k < j {
                let mut m = k + 1;
                while m < j && b[idx[m]] == b[idx[k]] {
                    m += 1;
                }
                let h = (m - k) as i64;
                tied_both += h * (h - 1) / 2;
                k = m;
            }
            i = j;
        }
    }

    // Extract the b-sequence in a-sorted order and count inversions.
    let mut seq: Vec<f64> = idx.iter().map(|&i| b[i]).collect();
    let mut buf = vec![0.0; n];
    let discordant = merge_count(&mut seq, &mut buf) as i64;

    // Ties in `b` overall (pairs tied in b never count either way).
    let mut sorted_b: Vec<f64> = b.to_vec();
    sorted_b.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let mut tied_b = 0i64;
    {
        let mut i = 0;
        while i < n {
            let mut j = i + 1;
            while j < n && sorted_b[j] == sorted_b[i] {
                j += 1;
            }
            let g = (j - i) as i64;
            tied_b += g * (g - 1) / 2;
            i = j;
        }
    }

    let total = (n as i64) * (n as i64 - 1) / 2;
    // Pairs that are comparable in both coordinates:
    //   total − tied_a − tied_b + tied_both   (inclusion–exclusion)
    // Of those, `discordant` are inversions; concordant is the rest.
    // Note: merge_count counts strict inversions of b in a-sorted order;
    // pairs inside a-tied groups are b-sorted so contribute none, and
    // b-ties are never strict inversions. So `discordant` is exact.
    let comparable = total - tied_a - tied_b + tied_both;
    let concordant = comparable - discordant;
    Some((concordant - discordant) as f64 / total as f64)
}

/// Merge sort that returns the number of strict inversions.
fn merge_count(seq: &mut [f64], buf: &mut [f64]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = seq.split_at_mut(mid);
    let mut inv = merge_count(left, &mut buf[..mid]) + merge_count(right, &mut buf[mid..]);
    // Merge, counting right-before-left placements.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if right[j] < left[i] {
            buf[k] = right[j];
            j += 1;
            inv += (left.len() - i) as u64;
        } else {
            buf[k] = left[i];
            i += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    seq.copy_from_slice(&buf[..n]);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_give_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(kendall_tau_naive(&a, &a), Some(1.0));
        assert_eq!(kendall_tau(&a, &a), Some(1.0));
    }

    #[test]
    fn reversed_rankings_give_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau_naive(&a, &b), Some(-1.0));
        assert_eq!(kendall_tau(&a, &b), Some(-1.0));
    }

    #[test]
    fn known_small_example() {
        // a: 1 2 3; b: 1 3 2 — pairs: (1,2)C, (1,3)C, (2,3)D => (2-1)/3.
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0];
        let expect = (2.0 - 1.0) / 3.0;
        assert!((kendall_tau_naive(&a, &b).unwrap() - expect).abs() < 1e-15);
        assert!((kendall_tau(&a, &b).unwrap() - expect).abs() < 1e-15);
    }

    #[test]
    fn ties_drop_pairs() {
        // a has a tie; that pair contributes 0 to the numerator but the
        // denominator stays n(n-1)/2 (τ-a as in the paper's formula).
        let a = [1.0, 1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        // Comparable pairs: (0,2) C, (1,2) C => tau = 2/3.
        let expect = 2.0 / 3.0;
        assert!((kendall_tau_naive(&a, &b).unwrap() - expect).abs() < 1e-15);
        assert!((kendall_tau(&a, &b).unwrap() - expect).abs() < 1e-15);
    }

    #[test]
    fn fast_matches_naive_on_random_data() {
        // Deterministic pseudo-random streams, including injected ties.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 16) % 1000) as f64 / 100.0
        };
        for n in [2usize, 3, 5, 10, 37, 100] {
            let a: Vec<f64> = (0..n).map(|_| next()).collect();
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let naive = kendall_tau_naive(&a, &b).unwrap();
            let fast = kendall_tau(&a, &b).unwrap();
            assert!(
                (naive - fast).abs() < 1e-12,
                "n={n}: naive {naive} vs fast {fast}"
            );
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
        assert_eq!(kendall_tau(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(kendall_tau(&[1.0, f64::NAN], &[1.0, 2.0]), None);
        assert_eq!(kendall_tau_naive(&[], &[]), None);
    }

    #[test]
    fn independent_rankings_near_zero() {
        // Interleaved hash-derived sequences: expect |tau| small.
        let a: Vec<f64> = (0..500u64).map(|i| crate::crn::mix64(i) as f64).collect();
        let b: Vec<f64> = (0..500u64)
            .map(|i| crate::crn::mix64(i ^ 0xDEADBEEF) as f64)
            .collect();
        let tau = kendall_tau(&a, &b).unwrap();
        assert!(tau.abs() < 0.08, "tau={tau}");
    }

    #[test]
    fn all_tied_gives_zero() {
        let a = [1.0, 1.0, 1.0];
        let b = [2.0, 3.0, 1.0];
        assert_eq!(kendall_tau_naive(&a, &b), Some(0.0));
        assert_eq!(kendall_tau(&a, &b), Some(0.0));
    }
}

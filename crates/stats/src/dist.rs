//! Scalar distributions used by the Table 4 synthetic workload.
//!
//! Only the raw uniform source comes from `rand`; the transformations
//! (polar Gaussian, inverse-CDF power law, Bernoulli thresholding) are
//! implemented here so the workload generator is self-contained and
//! auditable against the paper.

use rand::Rng as _;

/// A scalar distribution that can be sampled with the workspace RNG.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut crate::Rng) -> f64;

    /// Theoretical mean, used by moment-matching tests.
    fn mean(&self) -> f64;

    /// Theoretical variance, used by moment-matching tests.
    fn variance(&self) -> f64;

    /// Fills a slice with i.i.d. samples.
    fn sample_into(&self, rng: &mut crate::Rng, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }
}

/// Continuous Uniform[a, b].
///
/// Table 4's default for both `θ` and `x` is Uniform[-1, 1].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates Uniform[a, b].
    ///
    /// # Panics
    /// Panics if `a > b` or either bound is non-finite.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a.is_finite() && b.is_finite(),
            "Uniform: bounds must be finite"
        );
        assert!(a <= b, "Uniform: a must be <= b");
        Uniform { a, b }
    }

    /// The symmetric unit interval Uniform[-1, 1] used as the paper's
    /// default distribution.
    pub fn symmetric_unit() -> Self {
        Uniform::new(-1.0, 1.0)
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.a
    }

    /// Upper bound.
    pub fn high(&self) -> f64 {
        self.b
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        self.a + (self.b - self.a) * rng.gen::<f64>()
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn variance(&self) -> f64 {
        let w = self.b - self.a;
        w * w / 12.0
    }
}

/// Normal(μ, σ²) via the Marsaglia polar method.
///
/// The polar method produces samples in pairs; to keep `sample(&self)`
/// stateless (no cached spare) we simply discard the second variate. For
/// the workload-generation volumes of this project that costs < 2× of an
/// already-cheap operation and keeps sampling order deterministic and
/// independent of call history — which matters for reproducibility when
/// different policies interleave their draws differently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates Normal(mu, sigma²).
    ///
    /// # Panics
    /// Panics if `sigma < 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite(),
            "Normal: parameters must be finite"
        );
        assert!(sigma >= 0.0, "Normal: sigma must be non-negative");
        Normal { mu, sigma }
    }

    /// The standard normal N(0, 1).
    pub fn standard() -> Self {
        Normal::new(0.0, 1.0)
    }

    /// Mean parameter μ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one standard-normal variate with the polar method.
    pub fn sample_standard(rng: &mut crate::Rng) -> f64 {
        loop {
            let u = 2.0 * rng.gen::<f64>() - 1.0;
            let v = 2.0 * rng.gen::<f64>() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        self.mu + self.sigma * Normal::sample_standard(rng)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Power distribution on [0, 1] with density `f(x) = k·x^(k−1)`.
///
/// Table 4 lists "Power: 2". Sampling is by inverse CDF: `X = U^(1/k)`.
/// For k = 2 the mass concentrates near 1 — the paper's Figure 5
/// discussion ("under Power distribution, the values … are generally
/// large (closer to 1)") pins down this parameterisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    k: f64,
}

impl PowerLaw {
    /// Creates Power(k).
    ///
    /// # Panics
    /// Panics if `k <= 0` or non-finite.
    pub fn new(k: f64) -> Self {
        assert!(k.is_finite() && k > 0.0, "PowerLaw: k must be positive");
        PowerLaw { k }
    }

    /// Exponent k.
    pub fn k(&self) -> f64 {
        self.k
    }
}

impl Distribution for PowerLaw {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        rng.gen::<f64>().powf(1.0 / self.k)
    }

    fn mean(&self) -> f64 {
        self.k / (self.k + 1.0)
    }

    fn variance(&self) -> f64 {
        let k = self.k;
        k / ((k + 2.0) * (k + 1.0) * (k + 1.0))
    }
}

/// Bernoulli(p) returning 1.0 / 0.0, with `p` clamped to [0, 1].
///
/// The clamp mirrors the paper's feedback model: the "probability"
/// `xᵀθ` of accepting an event can fall outside \[0,1\] early on (contexts
/// and θ are only norm-bounded), in which case it saturates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates Bernoulli(clamp(p, 0, 1)). NaN is treated as p = 0.
    pub fn new(p: f64) -> Self {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        Bernoulli { p }
    }

    /// Success probability after clamping.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Evaluates the trial against an externally supplied uniform draw in
    /// [0, 1): returns `true` iff `u < p`. This is how the simulator
    /// applies common random numbers (see [`crate::crn`]).
    #[inline]
    pub fn trial_with(&self, u: f64) -> bool {
        u < self.p
    }
}

impl Distribution for Bernoulli {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        if self.trial_with(rng.gen::<f64>()) {
            1.0
        } else {
            0.0
        }
    }

    fn mean(&self) -> f64 {
        self.p
    }

    fn variance(&self) -> f64 {
        self.p * (1.0 - self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    /// Checks the empirical mean/variance of `dist` against theory.
    fn check_moments(dist: &dyn Distribution, n: usize, tol_mean: f64, tol_var: f64) {
        let mut rng = rng_from_seed(42);
        let mut stats = crate::RunningStats::new();
        for _ in 0..n {
            stats.push(dist.sample(&mut rng));
        }
        assert!(
            (stats.mean() - dist.mean()).abs() < tol_mean,
            "mean {} vs {}",
            stats.mean(),
            dist.mean()
        );
        assert!(
            (stats.variance() - dist.variance()).abs() < tol_var,
            "var {} vs {}",
            stats.variance(),
            dist.variance()
        );
    }

    #[test]
    fn uniform_moments() {
        check_moments(&Uniform::new(-1.0, 1.0), 200_000, 0.01, 0.01);
        check_moments(&Uniform::new(2.0, 5.0), 200_000, 0.01, 0.02);
    }

    #[test]
    fn uniform_respects_bounds() {
        let d = Uniform::new(-3.0, -1.0);
        let mut rng = rng_from_seed(7);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-3.0..=-1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "a must be <= b")]
    fn uniform_rejects_inverted_bounds() {
        let _ = Uniform::new(1.0, 0.0);
    }

    #[test]
    fn normal_moments() {
        check_moments(&Normal::standard(), 200_000, 0.02, 0.03);
        check_moments(&Normal::new(100.0, 10.0), 200_000, 0.2, 3.0);
    }

    #[test]
    fn normal_zero_sigma_is_constant() {
        let d = Normal::new(5.0, 0.0);
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn normal_symmetry() {
        // P(X > mu) should be ~0.5.
        let d = Normal::new(2.0, 3.0);
        let mut rng = rng_from_seed(9);
        let above = (0..100_000).filter(|_| d.sample(&mut rng) > 2.0).count();
        let frac = above as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "frac={frac}");
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn normal_rejects_negative_sigma() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn power_moments() {
        // k=2: mean 2/3, var 2/(4*9) = 1/18.
        check_moments(&PowerLaw::new(2.0), 200_000, 0.01, 0.01);
        check_moments(&PowerLaw::new(5.0), 200_000, 0.01, 0.01);
    }

    #[test]
    fn power_concentrates_near_one_for_k2() {
        let d = PowerLaw::new(2.0);
        let mut rng = rng_from_seed(3);
        let above_half = (0..50_000).filter(|_| d.sample(&mut rng) > 0.5).count();
        // P(X > 0.5) = 1 - 0.25 = 0.75.
        let frac = above_half as f64 / 50_000.0;
        assert!((frac - 0.75).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn power_in_unit_interval() {
        let d = PowerLaw::new(2.0);
        let mut rng = rng_from_seed(11);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_clamps() {
        assert_eq!(Bernoulli::new(1.7).p(), 1.0);
        assert_eq!(Bernoulli::new(-0.2).p(), 0.0);
        assert_eq!(Bernoulli::new(f64::NAN).p(), 0.0);
        assert_eq!(Bernoulli::new(0.3).p(), 0.3);
    }

    #[test]
    fn bernoulli_moments() {
        check_moments(&Bernoulli::new(0.3), 200_000, 0.005, 0.005);
    }

    #[test]
    fn bernoulli_trial_with_is_threshold() {
        let b = Bernoulli::new(0.4);
        assert!(b.trial_with(0.0));
        assert!(b.trial_with(0.399));
        assert!(!b.trial_with(0.4));
        assert!(!b.trial_with(0.999));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = rng_from_seed(5);
        let always = Bernoulli::new(1.0);
        let never = Bernoulli::new(0.0);
        for _ in 0..1000 {
            assert_eq!(always.sample(&mut rng), 1.0);
            assert_eq!(never.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn sample_into_fills_slice() {
        let mut rng = rng_from_seed(2);
        let mut buf = [0.0; 16];
        Uniform::new(1.0, 2.0).sample_into(&mut rng, &mut buf);
        assert!(buf.iter().all(|&x| (1.0..=2.0).contains(&x)));
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let d = Normal::standard();
        let mut a = rng_from_seed(77);
        let mut b = rng_from_seed(77);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}

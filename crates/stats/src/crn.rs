//! Counter-based common random numbers (CRN).
//!
//! FASEA compares five policies plus OPT against each other on the same
//! context stream. If each policy drew its own acceptance coins, regret
//! curves would mix policy quality with coin-flip luck. Instead the
//! simulator derives the uniform draw for "does user `t` accept event `v`"
//! from a **stateless hash** of `(seed, t, v)`: every policy that arranges
//! event `v` at time `t` sees exactly the same coin, arranged or not.
//! This is the classic common-random-numbers variance-reduction device,
//! and it also makes runs resumable and order-independent.
//!
//! The hash is SplitMix64's finaliser, which passes the usual avalanche
//! tests and is two multiplications and three xor-shifts — effectively
//! free next to the `O(d·|V|)` per-round linear algebra.

/// Stateless uniform streams indexed by `(tag, t, v)` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinStream {
    seed: u64,
}

/// SplitMix64 finaliser: a bijective avalanche mix on 64 bits.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Converts the top 53 bits of `x` to a uniform `f64` in `[0, 1)`.
#[inline]
pub fn u64_to_unit_f64(x: u64) -> f64 {
    // 2^-53 scaling of a 53-bit integer: exactly representable, never 1.0.
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl CoinStream {
    /// Creates a stream keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        CoinStream { seed }
    }

    /// The stream's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform draw in `[0, 1)` for counter pair `(t, v)`.
    ///
    /// The three inputs are combined with odd multipliers before the
    /// avalanche mix so that neighbouring `(t, v)` pairs land far apart.
    #[inline]
    pub fn uniform(&self, t: u64, v: u64) -> f64 {
        u64_to_unit_f64(mix64(
            self.seed ^ t.wrapping_mul(0xA24BAED4963EE407) ^ v.wrapping_mul(0x9FB21C651E98DF25),
        ))
    }

    /// Uniform draw with an extra domain-separation tag, for callers that
    /// need several independent streams over the same `(t, v)` grid
    /// (e.g. one for feedback coins, one for exploration coins).
    #[inline]
    pub fn uniform_tagged(&self, tag: u64, t: u64, v: u64) -> f64 {
        u64_to_unit_f64(mix64(
            self.seed
                ^ mix64(tag)
                ^ t.wrapping_mul(0xA24BAED4963EE407)
                ^ v.wrapping_mul(0x9FB21C651E98DF25),
        ))
    }

    /// Derives a child stream, e.g. per-policy exploration randomness that
    /// must *not* be shared across policies.
    pub fn child(&self, tag: u64) -> CoinStream {
        CoinStream {
            seed: mix64(self.seed ^ mix64(tag ^ 0xD6E8FEB86659FD93)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let s = CoinStream::new(123);
        assert_eq!(s.uniform(5, 9), s.uniform(5, 9));
        assert_eq!(
            CoinStream::new(123).uniform(5, 9),
            CoinStream::new(123).uniform(5, 9)
        );
    }

    #[test]
    fn different_counters_give_different_draws() {
        let s = CoinStream::new(1);
        let a = s.uniform(1, 1);
        assert_ne!(a, s.uniform(1, 2));
        assert_ne!(a, s.uniform(2, 1));
        assert_ne!(a, CoinStream::new(2).uniform(1, 1));
    }

    #[test]
    fn in_unit_interval() {
        let s = CoinStream::new(99);
        for t in 0..100 {
            for v in 0..100 {
                let u = s.uniform(t, v);
                assert!((0.0..1.0).contains(&u), "u={u} at ({t},{v})");
            }
        }
    }

    #[test]
    fn approximately_uniform() {
        // Chi-square-ish sanity check: 10 buckets over 100k draws should
        // each hold 10% ± 1%.
        let s = CoinStream::new(2024);
        let mut buckets = [0usize; 10];
        let n = 100_000u64;
        for i in 0..n {
            let u = s.uniform(i / 317, i % 317);
            buckets[(u * 10.0) as usize] += 1;
        }
        for (i, &c) in buckets.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn mean_close_to_half() {
        let s = CoinStream::new(7);
        let n = 50_000;
        let sum: f64 = (0..n).map(|i| s.uniform(i, i * 31 + 7)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn tagged_streams_are_independent() {
        let s = CoinStream::new(5);
        let a = s.uniform_tagged(0, 3, 3);
        let b = s.uniform_tagged(1, 3, 3);
        assert_ne!(a, b);
        // Tag 0 is NOT required to coincide with the untagged stream;
        // just verify determinism.
        assert_eq!(a, s.uniform_tagged(0, 3, 3));
    }

    #[test]
    fn child_streams_differ_from_parent_and_siblings() {
        let s = CoinStream::new(42);
        let c0 = s.child(0);
        let c1 = s.child(1);
        assert_ne!(c0.seed(), s.seed());
        assert_ne!(c0.seed(), c1.seed());
        assert_ne!(c0.uniform(0, 0), c1.uniform(0, 0));
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        // Spot-check injectivity over a modest sample.
        use std::collections::HashSet;
        let outs: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn u64_to_unit_f64_bounds() {
        assert_eq!(u64_to_unit_f64(0), 0.0);
        assert!(u64_to_unit_f64(u64::MAX) < 1.0);
        assert!(u64_to_unit_f64(u64::MAX) > 0.999_999_999);
    }
}

//! Streaming summary statistics.

/// Welford's online algorithm for mean and variance, plus min/max.
///
/// Used by the experiment harness to aggregate per-round wall times
/// (Tables 5 and 6) without storing 100 000 samples, and by the test
/// suite to verify distribution moments.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by n); 0 if fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divide by n−1); 0 if fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; +∞ if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; −∞ if empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[low, high)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high` or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low < high, "Histogram: low must be < high");
        assert!(bins > 0, "Histogram: need at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let frac = (x - self.low) / (self.high - self.low);
            let i = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below `low`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `high`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Fraction of in-range mass at or below the upper edge of bin `i`.
    pub fn cdf_at_bin(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let cum: u64 = self.bins[..=i].iter().sum();
        cum as f64 / in_range as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_sequence() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(3.0);
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
        assert!((s.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.77).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(2.0);
        let before = s.clone();
        s.merge(&RunningStats::new());
        assert_eq!(s.count(), before.count());
        assert_eq!(s.mean(), before.mean());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 1.5).abs() < 1e-15);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.0, 9.999, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin(0), 2); // 0.0 and 0.5
        assert_eq!(h.bin(5), 1);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_cdf() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 2.5, 3.5] {
            h.push(x);
        }
        assert!((h.cdf_at_bin(0) - 0.25).abs() < 1e-15);
        assert!((h.cdf_at_bin(3) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "low must be < high")]
    fn histogram_rejects_bad_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }
}

//! Multivariate normal sampling for Thompson Sampling.
//!
//! Algorithm 1 (line 7) samples `θ̃_t ∼ N(θ̂_t, q² Y⁻¹)`. Given the
//! Cholesky factor `Y = L Lᵀ`, the transform `θ̃ = θ̂ + q · L⁻ᵀ z` with
//! `z ∼ N(0, I)` has exactly that distribution, because
//! `Cov(L⁻ᵀ z) = L⁻ᵀ L⁻¹ = Y⁻¹`. Working from the factor of the
//! *precision* matrix `Y` (rather than factoring the covariance `Y⁻¹`)
//! avoids ever materialising the inverse for sampling purposes.

use crate::dist::Normal;
use fasea_linalg::{Cholesky, Vector};

/// Draws `mean + scale · L⁻ᵀ z` where `z ∼ N(0, I)` and `precision_factor`
/// is the Cholesky factor of the precision matrix `Y`.
///
/// The result is distributed `N(mean, scale² · Y⁻¹)` — exactly the TS
/// posterior sample of Algorithm 1 with `scale = q = R√(9 d ln(t/δ))`.
///
/// # Panics
/// Panics if `mean.dim() != precision_factor.dim()`.
pub fn sample_gaussian_with_precision_factor(
    mean: &Vector,
    scale: f64,
    precision_factor: &Cholesky,
    rng: &mut crate::Rng,
) -> Vector {
    assert_eq!(
        mean.dim(),
        precision_factor.dim(),
        "sample_gaussian_with_precision_factor: dimension mismatch"
    );
    let z = Vector::from_fn(mean.dim(), |_| Normal::sample_standard(rng));
    let mut sample = precision_factor.correlate_with_inverse_cov(&z);
    sample.scale_mut(scale);
    sample += mean;
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;
    use fasea_linalg::Matrix;

    #[test]
    fn identity_precision_reduces_to_iid_normal() {
        let mut rng = rng_from_seed(4);
        let ch = Cholesky::factor(&Matrix::identity(2)).unwrap();
        let mean = Vector::from([1.0, -2.0]);
        let mut s0 = crate::RunningStats::new();
        let mut s1 = crate::RunningStats::new();
        for _ in 0..50_000 {
            let s = sample_gaussian_with_precision_factor(&mean, 1.0, &ch, &mut rng);
            s0.push(s[0]);
            s1.push(s[1]);
        }
        assert!((s0.mean() - 1.0).abs() < 0.02);
        assert!((s1.mean() + 2.0).abs() < 0.02);
        assert!((s0.variance() - 1.0).abs() < 0.03);
        assert!((s1.variance() - 1.0).abs() < 0.03);
    }

    #[test]
    fn covariance_matches_inverse_precision() {
        // Precision Y = [[4, 2], [2, 3]] => covariance Y^{-1} = [[3,-2],[-2,4]]/8.
        let y = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
        let ch = Cholesky::factor(&y).unwrap();
        let mean = Vector::zeros(2);
        let mut rng = rng_from_seed(10);
        let n = 200_000;
        let (mut c00, mut c01, mut c11) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let s = sample_gaussian_with_precision_factor(&mean, 1.0, &ch, &mut rng);
            c00 += s[0] * s[0];
            c01 += s[0] * s[1];
            c11 += s[1] * s[1];
        }
        let nf = n as f64;
        assert!((c00 / nf - 3.0 / 8.0).abs() < 0.01, "c00={}", c00 / nf);
        assert!((c01 / nf + 2.0 / 8.0).abs() < 0.01, "c01={}", c01 / nf);
        assert!((c11 / nf - 4.0 / 8.0).abs() < 0.01, "c11={}", c11 / nf);
    }

    #[test]
    fn scale_scales_variance_quadratically() {
        let ch = Cholesky::factor(&Matrix::identity(1)).unwrap();
        let mean = Vector::zeros(1);
        let mut rng = rng_from_seed(20);
        let mut stats = crate::RunningStats::new();
        for _ in 0..100_000 {
            let s = sample_gaussian_with_precision_factor(&mean, 3.0, &ch, &mut rng);
            stats.push(s[0]);
        }
        assert!((stats.variance() - 9.0).abs() < 0.2, "{}", stats.variance());
    }

    #[test]
    fn zero_scale_returns_mean_exactly() {
        let ch = Cholesky::factor(&Matrix::identity(3)).unwrap();
        let mean = Vector::from([0.5, 0.25, -0.75]);
        let mut rng = rng_from_seed(30);
        let s = sample_gaussian_with_precision_factor(&mean, 0.0, &ch, &mut rng);
        assert_eq!(s.as_slice(), mean.as_slice());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let ch = Cholesky::factor(&Matrix::identity(2)).unwrap();
        let mean = Vector::zeros(3);
        let mut rng = rng_from_seed(1);
        let _ = sample_gaussian_with_precision_factor(&mean, 1.0, &ch, &mut rng);
    }
}

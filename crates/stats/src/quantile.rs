//! Streaming quantile estimation with the P² algorithm
//! (Jain & Chlamtac, 1985).
//!
//! The efficiency tables report *average* per-round time, but averages
//! hide the latency tail that an online arrangement platform actually
//! cares about (the paper's constraint: "the arrangement for a
//! new-coming u must be decided before the next user appears"). P²
//! estimates any fixed quantile in O(1) memory — five markers — without
//! storing the 100 000 per-round samples.

/// P² estimator of a single quantile `p ∈ (0, 1)`.
///
/// After at least 5 observations, [`P2Quantile::value`] approximates the
/// p-quantile with piecewise-parabolic marker updates; before that it
/// falls back to the exact small-sample quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimates of the 0, p/2, p, (1+p)/2, 1 quantiles).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments.
    dn: [f64; 5],
    count: usize,
    /// First five observations, sorted during warm-up.
    warmup: [f64; 5],
}

impl P2Quantile {
    /// Creates an estimator for quantile `p`.
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "P2Quantile: p must be in (0, 1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            warmup: [0.0; 5],
        }
    }

    /// The target quantile `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics on NaN input (a NaN sample would poison every marker).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "P2Quantile: NaN observation");
        if self.count < 5 {
            self.warmup[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                let mut s = self.warmup;
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                self.q = s;
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that q[k] <= x < q[k+1], adjusting
        // extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[0] <= x < q[4]
            (0..4).find(|&i| x < self.q[i + 1]).unwrap_or(3)
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, n, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        q + d / (np - nm)
            * ((n - nm + d) * (qp - q) / (np - n) + (np - n - d) * (q - qm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate; `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                // Exact small-sample quantile (nearest-rank).
                let mut s: Vec<f64> = self.warmup[..c].to_vec();
                s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let rank = ((self.p * c as f64).ceil() as usize).clamp(1, c);
                Some(s[rank - 1])
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution as _;
    use crate::{rng_from_seed, Normal, Uniform};

    fn exact_quantile(sorted: &[f64], p: f64) -> f64 {
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut est = P2Quantile::new(0.5);
        let d = Uniform::new(0.0, 1.0);
        let mut rng = rng_from_seed(1);
        for _ in 0..50_000 {
            est.push(d.sample(&mut rng));
        }
        let v = est.value().unwrap();
        assert!((v - 0.5).abs() < 0.01, "median {v}");
    }

    #[test]
    fn p95_of_normal_stream() {
        let mut est = P2Quantile::new(0.95);
        let d = Normal::new(10.0, 2.0);
        let mut rng = rng_from_seed(2);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            est.push(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let truth = exact_quantile(&all, 0.95);
        let v = est.value().unwrap();
        assert!((v - truth).abs() < 0.1, "p95 estimate {v} vs exact {truth}");
        // Theoretical value: 10 + 1.645*2 ≈ 13.29.
        assert!((v - 13.29).abs() < 0.15, "p95 {v}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.value(), None);
        est.push(3.0);
        assert_eq!(est.value(), Some(3.0));
        est.push(1.0);
        est.push(2.0);
        // Median of {1,2,3} by nearest rank (ceil(0.5*3)=2) => 2.
        assert_eq!(est.value(), Some(2.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn monotone_input() {
        let mut est = P2Quantile::new(0.9);
        for i in 0..10_000 {
            est.push(i as f64);
        }
        let v = est.value().unwrap();
        assert!(
            (v - 9000.0).abs() < 150.0,
            "p90 of 0..10000 ≈ 9000, got {v}"
        );
    }

    #[test]
    fn constant_input() {
        let mut est = P2Quantile::new(0.25);
        for _ in 0..1000 {
            est.push(7.5);
        }
        assert_eq!(est.value(), Some(7.5));
    }

    #[test]
    fn tracks_exact_quantile_on_heavy_tail() {
        // Exponential-ish tail via -ln(U): p99 matters for latency.
        let mut est = P2Quantile::new(0.99);
        let mut rng = rng_from_seed(5);
        let u = Uniform::new(1e-12, 1.0);
        let mut all = Vec::new();
        for _ in 0..30_000 {
            let x = -u.sample(&mut rng).ln();
            est.push(x);
            all.push(x);
        }
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let truth = exact_quantile(&all, 0.99);
        let v = est.value().unwrap();
        assert!((v - truth).abs() / truth < 0.1, "p99 {v} vs exact {truth}");
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn rejects_bad_p() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    #[should_panic(expected = "NaN observation")]
    fn rejects_nan() {
        let mut est = P2Quantile::new(0.5);
        est.push(f64::NAN);
    }
}

//! Workload-generation throughput: the arrival stream is regenerated
//! every round (|V|·d draws plus row normalisation), so its cost bounds
//! the whole simulation's overhead budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fasea_datagen::{RealDataset, SyntheticConfig, SyntheticWorkload, ValueDistribution};
use std::hint::black_box;

fn bench_arrival_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_generation");
    for &(n, d) in &[(100usize, 20usize), (500, 20), (1000, 20), (500, 5)] {
        let workload = SyntheticWorkload::generate(SyntheticConfig {
            num_events: n,
            dim: d,
            seed: 1,
            ..Default::default()
        });
        group.throughput(Throughput::Elements((n * d) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("v{n}_d{d}")),
            &(n, d),
            |b, _| {
                let mut t = 0u64;
                b.iter(|| {
                    t += 1;
                    black_box(workload.arrivals.arrival(t).capacity)
                })
            },
        );
    }
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution_fill");
    let mut rng = fasea_stats::rng_from_seed(3);
    let mut buf = vec![0.0; 20];
    for dist in [
        ValueDistribution::Uniform,
        ValueDistribution::Normal,
        ValueDistribution::Power,
        ValueDistribution::Shuffle,
    ] {
        group.bench_function(dist.label(), |b| {
            b.iter(|| {
                dist.fill(&mut rng, &mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

fn bench_real_dataset(c: &mut Criterion) {
    c.bench_function("real_dataset_generate", |b| {
        b.iter(|| black_box(RealDataset::generate(2016).num_events()))
    });
    let dataset = RealDataset::generate(2016);
    c.bench_function("real_dataset_contexts_for_user", |b| {
        b.iter(|| black_box(dataset.contexts_for(0).num_events()))
    });
    c.bench_function("real_dataset_full_knowledge_mis", |b| {
        b.iter(|| black_box(dataset.full_knowledge(1)))
    });
}

criterion_group!(
    benches,
    bench_arrival_generation,
    bench_distributions,
    bench_real_dataset
);
criterion_main!(benches);

//! Write-ahead log append cost per fsync policy, direct vs group
//! commit.
//!
//! The interesting number is the per-round durability tax the FASEA
//! service pays for crash safety. The `direct` rows time the
//! synchronous [`Wal`]: `never` measures pure serialisation (CRC +
//! framing + buffered write), `every8` amortises the fsync over a
//! batch, and `always` is the full synchronous-commit price. The
//! `group` rows time the same `always`-durability guarantee through
//! [`GroupCommitWal`]: a producer enqueues `batch` rounds of records,
//! then waits for the durable watermark to cover the last one — the
//! syncer fsyncs whole batches, so the per-round cost falls as the
//! batch grows while every waited-on record is still on disk before
//! the wait returns.
//!
//! Records mimic a realistic round: a Propose with a |V|×d context
//! block plus its matching Feedback.
//!
//! Output: one line per cell on stdout. When `FASEA_BENCH_JSON` names a
//! file, the measured table is also written there as JSON — that is how
//! the committed `BENCH_wal.json` is produced:
//!
//! ```text
//! FASEA_BENCH_JSON=BENCH_wal.json cargo bench --bench wal_append
//! ```
//!
//! `FASEA_BENCH_MS` bounds the per-measurement budget (default 300 ms)
//! so CI can smoke-run the file without touching committed numbers.

use fasea_store::{FsyncPolicy, GroupCommitWal, Record, Wal, WalOptions};
use std::hint::black_box;
use std::time::{Duration, Instant};

const NUM_EVENTS: u32 = 100;
const DIM: u32 = 10;
const FINGERPRINT: u64 = 0xBEEF;

fn propose_record(t: u64) -> Record {
    let contexts: Vec<f64> = (0..(NUM_EVENTS * DIM) as usize)
        .map(|i| ((i as f64) * 0.137 + t as f64).sin())
        .collect();
    Record::Propose {
        t,
        user_capacity: 5,
        num_events: NUM_EVENTS,
        dim: DIM,
        context_hash: fasea_store::context_hash(&contexts),
        contexts,
        arrangement: vec![1, 7, 12, 40, 99],
    }
}

fn feedback_record(t: u64) -> Record {
    Record::Feedback {
        t,
        accepts: vec![true, false, true, true, false],
    }
}

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

/// Mean ns per call of `f`, measured in ~1 ms batches until the budget
/// is spent (same scheme as the workspace's other custom-main benches).
fn time_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let warm_start = Instant::now();
    while warm_start.elapsed() < budget / 10 {
        f();
    }
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().max(Duration::from_nanos(20));
    let batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let run_start = Instant::now();
    while run_start.elapsed() < budget {
        let batch_start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += batch_start.elapsed();
        iters += batch;
    }
    total.as_nanos() as f64 / iters.max(1) as f64
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fasea-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_wal(dir: &std::path::Path, policy: FsyncPolicy) -> Wal {
    let options = WalOptions {
        segment_bytes: 64 << 20,
        fsync: policy,
    };
    Wal::open(dir, FINGERPRINT, options).unwrap().0
}

/// ns per round (Propose + Feedback appends) through the synchronous
/// WAL under `policy`.
fn direct_round_ns(policy: FsyncPolicy, budget: Duration) -> f64 {
    let dir = bench_dir(&format!("direct-{}", policy.label()));
    let mut wal = open_wal(&dir, policy);
    let mut t = 0u64;
    let ns = time_ns(budget, || {
        wal.append(black_box(&propose_record(t))).unwrap();
        let seq = wal.append(black_box(&feedback_record(t))).unwrap();
        t += 1;
        black_box(seq);
    });
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    ns
}

/// ns per round through the group-commit pipeline: `batch` rounds are
/// enqueued back-to-back, then the producer waits for the durable
/// watermark to cover the last record — the syncer shares each fsync
/// across the whole in-flight batch.
fn group_round_ns(batch: u64, budget: Duration) -> f64 {
    let dir = bench_dir(&format!("group-{batch}"));
    let group = GroupCommitWal::spawn(open_wal(&dir, FsyncPolicy::Always));
    let mut t = 0u64;
    let iter_ns = time_ns(budget, || {
        let mut last = 0u64;
        for _ in 0..batch {
            group.append(black_box(propose_record(t))).unwrap();
            last = group.append(black_box(feedback_record(t))).unwrap();
            t += 1;
        }
        black_box(group.wait_durable(last).unwrap());
    });
    group.close().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    iter_ns / batch as f64
}

struct Cell {
    mode: &'static str,
    policy: String,
    batch: Option<u64>,
    round_ns: f64,
}

fn main() {
    let budget = budget();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut cells = Vec::new();
    for policy in [
        FsyncPolicy::Never,
        FsyncPolicy::EveryN(8),
        FsyncPolicy::Always,
    ] {
        cells.push(Cell {
            mode: "direct",
            policy: policy.label(),
            batch: None,
            round_ns: direct_round_ns(policy, budget),
        });
    }
    for batch in [1u64, 8, 64] {
        cells.push(Cell {
            mode: "group",
            policy: FsyncPolicy::Always.label(),
            batch: Some(batch),
            round_ns: group_round_ns(batch, budget),
        });
    }

    let direct_always = cells
        .iter()
        .find(|c| c.mode == "direct" && c.policy == "always")
        .map(|c| c.round_ns)
        .expect("direct/always cell measured");

    for c in &cells {
        let batch = c
            .batch
            .map_or_else(|| "    -".into(), |b| format!("{b:>5}"));
        let speedup = if c.mode == "group" {
            format!("   vs direct/always: {:.2}x", direct_always / c.round_ns)
        } else {
            String::new()
        };
        println!(
            "wal_append/{}/{:<7} batch: {batch}   {:>12.1} ns/round{speedup}",
            c.mode, c.policy, c.round_ns,
        );
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        // `check-bench` rejects >1x speedups on a single-core host
        // unless the table says where they come from.
        let caveat = if host_cores == 1 {
            "\n  \"caveat\": \"single-core host: group-commit speedups come from batching fsyncs, not parallel execution\","
        } else {
            ""
        };
        let mut json = format!(
            "{{\n  \"bench\": \"wal_append\",\n  \"units\": \"ns_per_round\",\n  \"host_cores\": {host_cores},{caveat}\n  \"cells\": [\n",
        );
        for (i, c) in cells.iter().enumerate() {
            let batch = c.batch.map_or("null".into(), |b| b.to_string());
            let speedup = if c.mode == "group" {
                format!("{:.2}", direct_always / c.round_ns)
            } else {
                "null".into()
            };
            json.push_str(&format!(
                "    {{\"mode\": \"{}\", \"policy\": \"{}\", \"batch\": {batch}, \"round_ns\": {:.1}, \"speedup_vs_direct_always\": {speedup}}}{}\n",
                c.mode,
                c.policy,
                c.round_ns,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

//! Write-ahead log append cost per fsync policy.
//!
//! The interesting number is the per-round durability tax the FASEA
//! service pays for crash safety: `Never` measures pure serialisation
//! (CRC + framing + buffered write), `EveryN` amortises the fsync over
//! a batch, and `Always` is the full synchronous-commit price. Records
//! mimic a realistic round: a Propose with a |V|×d context block plus
//! its matching Feedback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fasea_store::{FsyncPolicy, Record, Wal, WalOptions};
use std::hint::black_box;

const NUM_EVENTS: u32 = 100;
const DIM: u32 = 10;

fn propose_record(t: u64) -> Record {
    let contexts: Vec<f64> = (0..(NUM_EVENTS * DIM) as usize)
        .map(|i| ((i as f64) * 0.137 + t as f64).sin())
        .collect();
    Record::Propose {
        t,
        user_capacity: 5,
        num_events: NUM_EVENTS,
        dim: DIM,
        context_hash: fasea_store::context_hash(&contexts),
        contexts,
        arrangement: vec![1, 7, 12, 40, 99],
    }
}

fn feedback_record(t: u64) -> Record {
    Record::Feedback {
        t,
        accepts: vec![true, false, true, true, false],
    }
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    let policies = [
        FsyncPolicy::Never,
        FsyncPolicy::EveryN(32),
        FsyncPolicy::EveryN(8),
        FsyncPolicy::Always,
    ];
    for policy in policies {
        let dir = std::env::temp_dir().join(format!(
            "fasea-bench-wal-{}-{}",
            policy.label(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let options = WalOptions {
            segment_bytes: 64 << 20,
            fsync: policy,
        };
        let (mut wal, _) = Wal::open(&dir, 0xBEEF, options).unwrap();
        let mut t = 0u64;
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, _| {
                b.iter(|| {
                    let seq = wal.append(black_box(&propose_record(t))).unwrap();
                    wal.append(black_box(&feedback_record(t))).unwrap();
                    t += 1;
                    black_box(seq)
                })
            },
        );
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_append);
criterion_main!(benches);

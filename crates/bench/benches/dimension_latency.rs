//! Table 6 (time column): per-round latency at d ∈ {1, 5, 10, 15, 20},
//! default |V| = 500.
//!
//! Expected shape (paper): every algorithm slows as d grows; TS pays an
//! extra O(d³) posterior sample, UCB an O(d²)-per-event bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fasea_bandit::SelectionView;
use fasea_bench::{policy_by_name, RoundFixture, POLICY_NAMES};
use fasea_core::Feedback;
use std::hint::black_box;

fn bench_dimension_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("dimension_latency");
    group.sample_size(20);
    for &dim in &[1usize, 5, 10, 15, 20] {
        let fixture = RoundFixture::new(500, dim);
        let remaining: Vec<u32> = vec![u32::MAX; 500];
        for name in POLICY_NAMES {
            let mut policy = policy_by_name(name, dim);
            let mut t = 0u64;
            group.bench_with_input(BenchmarkId::new(name, dim), &dim, |b, _| {
                b.iter(|| {
                    let view = SelectionView {
                        t,
                        user_capacity: 3,
                        contexts: &fixture.arrival.contexts,
                        conflicts: fixture.workload.instance.conflicts(),
                        remaining: &remaining,
                    };
                    let arrangement = policy.select(&view);
                    let fb = Feedback::new(vec![true; arrangement.len()]);
                    policy.observe(t, &fixture.arrival.contexts, &arrangement, &fb);
                    t += 1;
                    black_box(arrangement.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dimension_latency);
criterion_main!(benches);

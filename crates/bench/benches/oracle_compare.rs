//! Greedy vs tabu arrangement oracles: fitness and latency, side by
//! side, through the [`Oracle`] trait both run in production.
//!
//! For each `|V|` cell the same score vector, conflict graph and
//! capacities are arranged by:
//!
//! * `greedy`        — [`GreedyOracle`] (Algorithm 2, the default);
//! * `tabu-max`      — [`TabuOracle`] maximising expected attendance;
//! * `tabu-balanced` — [`TabuOracle`] with the balanced-fill objective.
//!
//! Two numbers per cell: `rounds_per_sec` (arrange calls per second on
//! a warm workspace) and `attendance` (the sum of positive scores of
//! the arranged events — the MaxAttendance objective, so the greedy row
//! is the baseline the tabu rows must not undercut).
//!
//! Output: one line per cell on stdout. When `FASEA_BENCH_JSON` names a
//! file, the table is also written there as JSON — that is how the
//! committed `BENCH_oracle.json` is produced:
//!
//! ```text
//! FASEA_BENCH_JSON=BENCH_oracle.json cargo bench --bench oracle_compare
//! ```
//!
//! `FASEA_BENCH_MS` bounds the per-measurement budget (default 300 ms)
//! as in the other benches.

use fasea_bandit::{OracleOptions, TabuFitness};
use fasea_core::Arrangement;
use fasea_datagen::synthetic::generate_conflicts;
use fasea_stats::rng_from_seed;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn scores_for(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64 * 0.7311).sin() + 1.0) / 2.0)
        .collect()
}

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

/// Mean ns per call of `f`, measured in ~1 ms batches until the budget
/// is spent (same scheme as `scoring_hot_path`).
fn time_ns(budget: Duration, mut f: impl FnMut()) -> f64 {
    let warm_start = Instant::now();
    while warm_start.elapsed() < budget / 10 {
        f();
    }
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().max(Duration::from_nanos(20));
    let batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;

    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    let run_start = Instant::now();
    while run_start.elapsed() < budget {
        let batch_start = Instant::now();
        for _ in 0..batch {
            f();
        }
        total += batch_start.elapsed();
        iters += batch;
    }
    total.as_nanos() as f64 / iters.max(1) as f64
}

struct Cell {
    oracle: &'static str,
    num_events: usize,
    rounds_per_sec: f64,
    attendance: f64,
    arranged: usize,
}

fn bench_cell(opts: &OracleOptions, num_events: usize, budget: Duration) -> Cell {
    let mut rng = rng_from_seed(0x0AC1_E000 ^ num_events as u64);
    let conflicts = generate_conflicts(num_events, 0.25, &mut rng);
    let scores = scores_for(num_events);
    let remaining: Vec<u32> = (0..num_events).map(|v| 1 + (v % 7) as u32).collect();
    let cu = 5u32;

    let oracle = opts.build();
    let mut ws = fasea_bandit::OracleWorkspace::new();
    let mut out = Arrangement::empty();
    oracle.arrange_into(&scores, &conflicts, &remaining, cu, &mut ws, &mut out);
    let attendance: f64 = out
        .events()
        .iter()
        .map(|v| scores[v.index()].max(0.0))
        .sum();
    let arranged = out.len();

    let ns = time_ns(budget, || {
        oracle.arrange_into(&scores, &conflicts, &remaining, cu, &mut ws, &mut out);
        black_box(out.len());
    });
    Cell {
        oracle: opts.name(),
        num_events,
        rounds_per_sec: 1e9 / ns,
        attendance,
        arranged,
    }
}

fn main() {
    let budget = budget();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let variants: &[(&'static str, OracleOptions)] = &[
        ("greedy", OracleOptions::greedy()),
        (
            "tabu-max",
            OracleOptions::tabu().with_tabu_fitness(TabuFitness::MaxAttendance),
        ),
        (
            "tabu-balanced",
            OracleOptions::tabu().with_tabu_fitness(TabuFitness::BalancedFill),
        ),
    ];

    let mut cells = Vec::new();
    for &n in &[500usize, 5000] {
        for (label, opts) in variants {
            let mut cell = bench_cell(opts, n, budget);
            cell.oracle = label;
            println!(
                "oracle_compare/{}/{n:<8} {:>12.0} rounds/s   attendance: {:>8.3}   arranged: {}",
                cell.oracle, cell.rounds_per_sec, cell.attendance, cell.arranged,
            );
            cells.push(cell);
        }
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        let mut json = format!(
            "{{\n  \"bench\": \"oracle_compare\",\n  \"units\": \"rounds_per_sec\",\n  \"host_cores\": {host_cores},\n  \"cells\": [\n",
        );
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"oracle\": \"{}\", \"num_events\": {}, \"rounds_per_sec\": {:.1}, \"attendance\": {:.3}, \"arranged\": {}}}{}\n",
                c.oracle,
                c.num_events,
                c.rounds_per_sec,
                c.attendance,
                c.arranged,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

//! Million-user estimator store: residency accounting, COW
//! materialization rate, and the steady-state cost of running a
//! personalized round mix under a memory budget.
//!
//! Two phases per cell:
//!
//! * **seed** — every user in the population observes one reward
//!   through [`EstimatorStore::observe`]. In flat mode the store
//!   materializes `U` distinct private models (and, under a budget,
//!   demotes/spills the overflow as it goes) — the store's worst case.
//!   In cohort mode the same observation *folds* into the user's
//!   cohort prior instead, so the seed phase prices the fold path at
//!   zero private bytes per user.
//! * **steady** — the hash schedule of the multi-user workload replays
//!   a select + observe round mix for a fixed time budget. Warm/spilled
//!   users fault exact bits (or, in sketched mode, reconstruct from
//!   rank-r sketch records) back in, so this prices the fault path at
//!   the cell's residency ratio.
//!
//! Four cells per population: unbounded-exact-flat (the memory
//! ceiling), bounded-exact-flat (the PR-9 baseline), bounded-exact
//! with a cohort prior chain, and bounded-sketched with cohorts — the
//! last two document what the three-level chain and the sublinear
//! warm tier buy at the same budget.
//!
//! ```text
//! FASEA_BENCH_JSON=BENCH_models.json cargo bench --bench models_residency
//! ```
//!
//! `FASEA_BENCH_USERS` scales the full population (default 1 000 000);
//! `FASEA_BENCH_MS` bounds the steady-phase budget per cell (default
//! 300 ms) so CI can smoke-run the file without touching committed
//! numbers; `FASEA_BENCH_COHORTS` overrides the cohort count of the
//! cohort cells (default 256).

use fasea_models::{EstimatorStore, StoreConfig, UserId, UserSchedule};
use fasea_stats::crn::mix64;
use std::hint::black_box;
use std::time::{Duration, Instant};

const DIM: usize = 8;
const LAMBDA: f64 = 1.0;
const HOT_BUDGET: usize = 64 << 20;
const WARM_BUDGET: usize = 16 << 20;
/// Observations a cold user folds into its cohort prior before
/// materializing — matches the `fasea-exp multi-user` default.
const COHORT_FOLDS: u64 = 8;
const SKETCH_RANK: usize = 4;

fn budget() -> Duration {
    let ms = std::env::var("FASEA_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

fn full_population() -> usize {
    std::env::var("FASEA_BENCH_USERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1_000_000)
        .max(100)
}

fn cohort_count() -> usize {
    std::env::var("FASEA_BENCH_COHORTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(256)
        .max(1)
}

fn bench_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fasea-bench-models-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cheap deterministic context vector for round `t` (unit-scale
/// entries; the store does not care about its statistics).
fn context(t: u64, x: &mut [f64]) {
    let mut h = mix64(t ^ 0xC0DE);
    for v in x.iter_mut() {
        h = mix64(h);
        *v = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

/// One bench configuration: tier budget × prior chain × state
/// representation.
#[derive(Clone, Copy)]
struct Mode {
    bounded: bool,
    cohorts: usize,
    sketched: bool,
}

impl Mode {
    fn state(&self) -> &'static str {
        if self.sketched {
            "sketched"
        } else {
            "exact"
        }
    }

    fn tag(&self) -> String {
        format!(
            "{}-{}-c{}",
            if self.bounded { "bounded" } else { "unbounded" },
            self.state(),
            self.cohorts
        )
    }
}

struct CellResult {
    population: usize,
    bounded: bool,
    cohorts: usize,
    state: &'static str,
    sketch_rank: usize,
    seed_users_per_sec: f64,
    steady_rounds_per_sec: f64,
    steady_rounds: u64,
    resident_mb: f64,
    spill_file_mb: f64,
    hot: usize,
    warm: usize,
    spilled: usize,
    cold: usize,
    faults: u64,
    demotions: u64,
    evictions: u64,
    cohort_hits: u64,
}

fn run_cell(population: usize, mode: Mode, steady_budget: Duration) -> CellResult {
    let dir = bench_dir(&format!("{population}-{}", mode.tag()));
    let mut config = if mode.bounded {
        StoreConfig::bounded(DIM, LAMBDA, HOT_BUDGET, WARM_BUDGET, &dir)
    } else {
        StoreConfig::unbounded(DIM, LAMBDA)
    };
    if mode.cohorts > 0 {
        config = config.with_cohorts(mode.cohorts, mix64(0xC040_0947), COHORT_FOLDS);
    }
    if mode.sketched {
        config = config.with_sketched(SKETCH_RANK);
    }
    let mut store = EstimatorStore::new(config).expect("open store");
    let mut x = vec![0.0f64; DIM];

    // Seed: one observation per user — a COW materialization in flat
    // mode, a cohort fold in cohort mode. Budget enforced as the
    // runner does after every observe.
    let seed_start = Instant::now();
    for u in 0..population as u64 {
        context(u, &mut x);
        let h = store.resolve(UserId(u));
        store.observe(h, &x, (u % 2) as f64, u).expect("observe");
        store.enforce_budget(u).expect("budget enforcement");
    }
    let seed_secs = seed_start.elapsed().as_secs_f64().max(1e-9);

    // Steady state: the multi-user hash schedule, one select + one
    // observe per round, until the time budget is spent.
    let schedule = UserSchedule::new(mix64(0x5EED ^ population as u64), population);
    let mut t = population as u64;
    let steady_start = Instant::now();
    let mut steady_rounds = 0u64;
    while steady_start.elapsed() < steady_budget {
        for _ in 0..256 {
            let user = UserId(schedule.user_at(t));
            context(t, &mut x);
            let h = store.resolve(user);
            let est = store.estimator_for_select(h, t).expect("select access");
            black_box(est.point_estimate(&x));
            store.observe(h, &x, (t % 2) as f64, t).expect("observe");
            store.enforce_budget(t).expect("budget enforcement");
            t += 1;
            steady_rounds += 1;
        }
    }
    let steady_secs = steady_start.elapsed().as_secs_f64().max(1e-9);

    let stats = store.stats();
    assert_eq!(stats.users, population, "every user must be interned");
    if mode.cohorts == 0 {
        // Flat chain: the seed phase COW-materializes everybody.
        assert_eq!(stats.cold, 0, "seed phase leaves no cold users");
    } else {
        // Cohort chain: one seed observation < COHORT_FOLDS, so users
        // stay cold until the steady mix pushes them past the
        // threshold — the fold and hit counters must show the cohort
        // tier actually carried traffic.
        assert!(stats.cohorts_materialized > 0, "no cohort materialized");
        assert!(stats.cohort_folds > 0, "no observations folded");
        assert!(stats.cohort_hits > 0, "no selects served by a cohort");
    }
    if mode.bounded {
        assert!(
            stats.hot_bytes <= HOT_BUDGET && stats.warm_bytes <= WARM_BUDGET,
            "tier accounting over budget: hot {}B/{}B warm {}B/{}B",
            stats.hot_bytes,
            HOT_BUDGET,
            stats.warm_bytes,
            WARM_BUDGET
        );
    }
    if mode.sketched && stats.faults > 0 {
        assert!(
            stats.sketch_promotions > 0,
            "sketched cell faulted {} times without a sketch promotion",
            stats.faults
        );
    }
    let result = CellResult {
        population,
        bounded: mode.bounded,
        cohorts: mode.cohorts,
        state: mode.state(),
        sketch_rank: if mode.sketched { SKETCH_RANK } else { 0 },
        seed_users_per_sec: population as f64 / seed_secs,
        steady_rounds_per_sec: steady_rounds as f64 / steady_secs,
        steady_rounds,
        resident_mb: store.resident_bytes() as f64 / (1 << 20) as f64,
        spill_file_mb: stats.spill_file_bytes as f64 / (1 << 20) as f64,
        hot: stats.hot,
        warm: stats.warm,
        spilled: stats.spilled,
        cold: stats.cold,
        faults: stats.faults,
        demotions: stats.demotions,
        evictions: stats.evictions,
        cohort_hits: stats.cohort_hits,
    };
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn main() {
    let steady_budget = budget();
    let full = full_population();
    let cohorts = cohort_count();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let modes = [
        Mode {
            bounded: false,
            cohorts: 0,
            sketched: false,
        },
        Mode {
            bounded: true,
            cohorts: 0,
            sketched: false,
        },
        Mode {
            bounded: true,
            cohorts,
            sketched: false,
        },
        Mode {
            bounded: true,
            cohorts,
            sketched: true,
        },
    ];
    let mut cells = Vec::new();
    for population in [(full / 10).max(100), full] {
        for mode in modes {
            cells.push(run_cell(population, mode, steady_budget));
        }
    }

    for c in &cells {
        println!(
            "models_residency/u{}/{:<9}/{:<8}/c{:<4} seed: {:>10.0} users/s   \
             steady: {:>9.0} rounds/s   resident: {:>8.1} MiB   \
             cold/hot/warm/spilled: {}/{}/{}/{}   spill file: {:.1} MiB   \
             cohort hits: {}",
            c.population,
            if c.bounded { "bounded" } else { "unbounded" },
            c.state,
            c.cohorts,
            c.seed_users_per_sec,
            c.steady_rounds_per_sec,
            c.resident_mb,
            c.cold,
            c.hot,
            c.warm,
            c.spilled,
            c.spill_file_mb,
            c.cohort_hits,
        );
    }

    if let Ok(path) = std::env::var("FASEA_BENCH_JSON") {
        let mut json = format!(
            "{{\n  \"bench\": \"models_residency\",\n  \"units\": \"users_or_rounds_per_sec\",\n  \"dim\": {DIM},\n  \
             \"hot_budget_mb\": {},\n  \"warm_budget_mb\": {},\n  \
             \"host_cores\": {host_cores},\n  \"cells\": [\n",
            HOT_BUDGET >> 20,
            WARM_BUDGET >> 20,
        );
        for (i, c) in cells.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"population\": {}, \"bounded\": {}, \
                 \"cohorts\": {}, \"state\": \"{}\", \"sketch_rank\": {}, \
                 \"seed_users_per_sec\": {:.0}, \"steady_rounds_per_sec\": {:.0}, \
                 \"steady_rounds\": {}, \"resident_mb\": {:.1}, \"spill_file_mb\": {:.1}, \
                 \"cold\": {}, \"hot\": {}, \"warm\": {}, \"spilled\": {}, \
                 \"faults\": {}, \"demotions\": {}, \"evictions\": {}, \
                 \"cohort_hits\": {}}}{}\n",
                c.population,
                c.bounded,
                c.cohorts,
                c.state,
                c.sketch_rank,
                c.seed_users_per_sec,
                c.steady_rounds_per_sec,
                c.steady_rounds,
                c.resident_mb,
                c.spill_file_mb,
                c.cold,
                c.hot,
                c.warm,
                c.spilled,
                c.faults,
                c.demotions,
                c.evictions,
                c.cohort_hits,
                if i + 1 == cells.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write FASEA_BENCH_JSON");
        println!("wrote {path}");
    }
}

//! Linear-algebra micro-benchmarks at bandit-relevant dimensions
//! (d ≤ 20 in the paper; 64 included as headroom).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fasea_linalg::{Cholesky, Matrix, ShermanMorrisonInverse, Vector};
use std::hint::black_box;

fn spd(d: usize) -> Matrix {
    let mut y = Matrix::scaled_identity(d, 1.0);
    for k in 0..2 * d {
        let x = Vector::from_fn(d, |i| ((i * 7 + k * 13) % 17) as f64 / 17.0 - 0.4);
        y.add_outer(&x, 1.0);
    }
    y
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky_factor");
    for &d in &[5usize, 10, 20, 64] {
        let y = spd(d);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(Cholesky::factor(&y).unwrap()))
        });
    }
    group.finish();
}

fn bench_sherman_morrison_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("sherman_morrison_update");
    for &d in &[5usize, 10, 20, 64] {
        let x = Vector::from_fn(d, |i| (i as f64 * 0.37).sin() / (d as f64).sqrt());
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            let mut sm = ShermanMorrisonInverse::new(d, 1.0);
            b.iter(|| {
                sm.rank1_update(&x).unwrap();
                black_box(sm.update_count())
            })
        });
    }
    group.finish();
}

fn bench_quadratic_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("inv_quadratic_form");
    for &d in &[5usize, 10, 20, 64] {
        let mut sm = ShermanMorrisonInverse::new(d, 1.0);
        for k in 0..d {
            let x = Vector::from_fn(d, |i| ((i + k) % 5) as f64 / 5.0);
            sm.rank1_update(&x).unwrap();
        }
        let probe = Vector::from_fn(d, |i| (i as f64 * 0.61).cos() / (d as f64).sqrt());
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| black_box(sm.inv_quadratic_form(&probe)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_sherman_morrison_update,
    bench_quadratic_form
);
criterion_main!(benches);
